//! Inspect the Theorem 5 compiler's output, instruction by instruction.
//!
//! Disassembles process 0's program before and after register
//! elimination on the TAS+registers consensus protocol: the single
//! `write` to the announce register becomes the Section 4.3 row-flipping
//! loop; the loser-side `read` becomes the column walk; and with a
//! `Recipe` substrate the one-use-bit accesses are themselves inlined
//! invocations on objects of the substrate type.
//!
//! Run with: `cargo run --example inspect_compiler`

use std::error::Error;
use std::sync::Arc;

use wait_free_consensus::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let build = |i: &[bool]| consensus::tas_consensus_system([i[0], i[1]]);
    let opts = explorer::ExploreOptions::default();
    let bounds = core::access_bounds(2, build, &opts)?;
    let cs = build(&[true, false]);

    println!("═══ original program, process 0 (uses registers) ═══");
    println!("{}", cs.system.programs()[0]);
    println!("objects: ");
    for (k, o) in cs.system.objects().iter().enumerate() {
        println!("  obj[{k}] = {}", o.ty().name());
    }

    println!("\n═══ after Section 4.3 (one-use bits) ═══");
    let elim = core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::OneUseBits)?;
    println!("{}", elim.system.programs()[0]);
    println!("objects:");
    for (k, o) in elim.system.objects().iter().enumerate() {
        println!("  obj[{k}] = {}", o.ty().name());
    }

    println!("\n═══ after full Theorem 5 (bits from test_and_set) ═══");
    let tas = Arc::new(spec::canonical::test_and_set(2));
    let recipe = core::OneUseRecipe::from_type(&tas)?;
    let elim2 =
        core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::Recipe(recipe))?;
    println!("{}", elim2.system.programs()[0]);
    println!("objects:");
    for (k, o) in elim2.system.objects().iter().enumerate() {
        println!("  obj[{k}] = {}", o.ty().name());
    }

    // And confirm the rewritten system still works on this input vector.
    let e = explorer::explore(&elim2.system, &opts)?;
    assert!(e.decisions_agree() && e.decisions_within(&[0, 1]));
    println!("rewritten system re-verified: agreement + validity on all schedules ✓");
    Ok(())
}
