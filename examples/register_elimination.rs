//! Register elimination across the protocol/type grid (experiment E8).
//!
//! For each register-using consensus protocol and each choice of one-use
//! bit substrate, run the full Theorem 5 pipeline and report:
//! access bounds, bit counts, object inventories, execution-tree depths
//! before and after, and the re-verification verdict.
//!
//! Run with: `cargo run --example register_elimination`

use std::collections::BTreeMap;
use std::error::Error;
use std::sync::Arc;

use wait_free_consensus::prelude::*;
use wfc_consensus::ConsensusSystem;

fn inventory(system: &explorer::System) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for o in system.objects() {
        *map.entry(o.ty().name().to_owned()).or_insert(0) += 1;
    }
    map
}

fn run_case(
    label: &str,
    build: impl Fn(&[bool]) -> ConsensusSystem + Sync,
    source: &core::OneUseSource,
    source_label: &str,
) -> Result<(), Box<dyn Error>> {
    let opts = explorer::ExploreOptions::default();
    let cert = core::check_theorem5(2, &build, source, &opts)?;
    let sample = build(&[true, false]);
    let eliminated = core::eliminate_registers(&sample, &cert.bounds.registers, source)?;
    println!("── {label} × bits-from-{source_label} ─────────────────────");
    println!(
        "  access bounds: D = {}, per-register (r_b, w_b) = {:?}",
        cert.bounds.d_max,
        cert.bounds
            .registers
            .iter()
            .map(|r| (r.reads, r.writes))
            .collect::<Vec<_>>(),
    );
    println!(
        "  one-use bits allocated: {} (Σ r_b·(w_b+1))",
        cert.one_use_bits
    );
    println!("  objects before: {:?}", inventory(&sample.system));
    println!("  objects after:  {:?}", inventory(&eliminated.system));
    println!(
        "  depth D: {} → {}   correct: {} → {}",
        cert.before.d_max,
        cert.after.d_max,
        cert.before.holds(),
        cert.after.holds(),
    );
    assert!(cert.holds(), "elimination must preserve correctness");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Theorem 5 register elimination — protocol × substrate grid\n");

    let tas_ty = Arc::new(spec::canonical::test_and_set(2));
    let queue_ty = Arc::new(spec::canonical::queue(1, 1, 2));
    let fa_ty = Arc::new(spec::canonical::fetch_and_add(2, 2));

    let sources: Vec<(&str, core::OneUseSource)> = vec![
        ("T_1u", core::OneUseSource::OneUseBits),
        (
            "test_and_set",
            core::OneUseSource::Recipe(core::OneUseRecipe::from_type(&tas_ty)?),
        ),
        (
            "queue",
            core::OneUseSource::Recipe(core::OneUseRecipe::from_type(&queue_ty)?),
        ),
        (
            "fetch_and_add",
            core::OneUseSource::Recipe(core::OneUseRecipe::from_type(&fa_ty)?),
        ),
    ];

    for (source_label, source) in &sources {
        run_case(
            "TAS+registers consensus",
            |i| consensus::tas_consensus_system([i[0], i[1]]),
            source,
            source_label,
        )?;
        run_case(
            "queue+registers consensus",
            |i| consensus::queue_consensus_system([i[0], i[1]]),
            source,
            source_label,
        )?;
        run_case(
            "fetch&add+registers consensus",
            |i| consensus::fetch_add_consensus_system([i[0], i[1]]),
            source,
            source_label,
        )?;
    }

    println!("all grid cells verified: registers are dispensable (Theorem 5)");
    Ok(())
}
