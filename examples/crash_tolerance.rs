//! Crash tolerance: the paper's motivation for wait-freedom (Section 1).
//!
//! "Wait-free implementations … tolerate any number of stopping
//! failures." This example makes the claim concrete three ways:
//!
//! 1. the TAS+registers consensus protocol survives every crash scenario
//!    — any subset of processes stopping at any reachable configuration;
//! 2. so does the register-free protocol the Theorem 5 compiler produces
//!    from it;
//! 3. a *blocking* protocol (reader spins on a flag) is caught: crash the
//!    flagger and the survivor spins forever.
//!
//! Run with: `cargo run --example crash_tolerance`

use std::error::Error;
use std::sync::Arc;

use wait_free_consensus::prelude::*;
use wfc_explorer::crash::check_crash_tolerance;
use wfc_explorer::program::{BinOp, ProgramBuilder};
use wfc_explorer::{ObjectInstance, System};
use wfc_spec::canonical;

fn main() -> Result<(), Box<dyn Error>> {
    let opts = explorer::ExploreOptions::default();

    // ── 1. The wait-free consensus protocol ─────────────────────────────
    let cs = consensus::tas_consensus_system([false, true]);
    let report = check_crash_tolerance(&cs.system, &[0, 1], &opts)?;
    println!("TAS+registers consensus, inputs (0, 1):");
    println!(
        "  {} configurations × survivor subsets = {} crash scenarios",
        report.configs, report.scenarios
    );
    println!(
        "  stuck: {}, disagreements: {}, invalid: {} → tolerant: {}",
        report.stuck_scenarios,
        report.disagreements,
        report.invalid,
        report.holds()
    );
    assert!(report.holds());

    // ── 2. After register elimination ───────────────────────────────────
    let bounds = core::access_bounds(2, |i| consensus::tas_consensus_system([i[0], i[1]]), &opts)?;
    let elim = core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::OneUseBits)?;
    let report = check_crash_tolerance(&elim.system, &[0, 1], &opts)?;
    println!("\nafter Theorem 5 elimination (one-use bits):");
    println!(
        "  {} scenarios, stuck: {}, disagreements: {} → tolerant: {}",
        report.scenarios,
        report.stuck_scenarios,
        report.disagreements,
        report.holds()
    );
    assert!(report.holds());

    // ── 3. A blocking protocol is caught ────────────────────────────────
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write1 = reg.invocation_id("write1").unwrap().index() as i64;
    let r1 = reg.response_id("1").unwrap().index() as i64;
    let obj = ObjectInstance::identity_ports(reg, v0, 2);
    let flagger = {
        let mut b = ProgramBuilder::new();
        b.invoke(0_i64, write1, None);
        b.ret(0_i64);
        b.build()?
    };
    let spinner = {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, read, Some(r));
        b.compute(t, r, BinOp::Eq, r1);
        b.jump_if_zero(t, top);
        b.ret(0_i64);
        b.build()?
    };
    let blocking = System::new(vec![obj], vec![flagger, spinner]);
    let report = check_crash_tolerance(&blocking, &[0], &opts)?;
    println!("\nblocking flag/spin protocol:");
    println!(
        "  stuck scenarios: {} (crash the flagger and the spinner hangs) → tolerant: {}",
        report.stuck_scenarios,
        report.holds()
    );
    assert!(!report.holds());

    println!("\nwait-freedom ⇒ fault tolerance, and the compiler preserves it");
    Ok(())
}
