//! Quickstart: the paper's pipeline in five minutes.
//!
//! 1. Build a concurrent data type as a finite 5-tuple ⟨n, Q, I, R, δ⟩.
//! 2. Classify it per Theorem 5 (trivial / non-trivial deterministic).
//! 3. Derive a one-use bit from it (Section 5).
//! 4. Eliminate the registers from a consensus protocol that uses it
//!    (Sections 4.2 + 4.3 + 5), and re-model-check the result.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use wait_free_consensus::core::{OneUseRead, OneUseWrite};
use wait_free_consensus::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // ── 1. A type: the classic test-and-set bit ─────────────────────────
    let tas = Arc::new(spec::canonical::test_and_set(2));
    println!("type: {tas}");
    println!("  deterministic: {}", tas.is_deterministic());
    println!("  oblivious:     {}", tas.is_oblivious());
    println!("  trivial:       {}", spec::triviality::is_trivial(&tas)?);

    // ── 2. Theorem 5 classification ─────────────────────────────────────
    match core::classify_deterministic(&tas)? {
        core::Theorem5Classification::Trivial => {
            println!("  Theorem 5 case 1: trivial, h_m = h_m^r = 1");
        }
        core::Theorem5Classification::NonTrivial(recipe) => {
            println!(
                "  Theorem 5 case 2: non-trivial; one-use bit via writer `{}`, reader probes {:?}",
                recipe.ty().invocation_name(recipe.writer_inv()),
                recipe
                    .reader_seq()
                    .iter()
                    .map(|&i| recipe.ty().invocation_name(i))
                    .collect::<Vec<_>>(),
            );
        }
    }

    // ── 3. A one-use bit derived from the type, exercised at runtime ────
    let recipe = core::OneUseRecipe::from_type(&tas)?;
    let (writer, reader) = recipe.instantiate();
    writer.write(); // uses one test_and_set invocation on a fresh object
    println!(
        "  derived one-use bit after write: reads {}",
        u8::from(reader.read())
    );

    // ── 4. Register elimination on a real protocol ──────────────────────
    // The standard 2-process consensus from TAS + two SRSW announce
    // registers …
    let verdict = consensus::verify_consensus_protocol(
        2,
        |i| consensus::tas_consensus_system([i[0], i[1]]),
        &explorer::ExploreOptions::default(),
    )?;
    println!(
        "\nTAS+registers consensus: correct = {}, D = {}",
        verdict.holds(),
        verdict.d_max
    );

    // … compiled to a register-free, TAS-only implementation:
    let cert = core::check_theorem5(
        2,
        |i| consensus::tas_consensus_system([i[0], i[1]]),
        &core::OneUseSource::Recipe(core::OneUseRecipe::from_type(&tas)?),
        &explorer::ExploreOptions::default(),
    )?;
    println!(
        "after elimination:       correct = {}, D = {}, one-use bits = {} (r·(w+1) each)",
        cert.after.holds(),
        cert.after.d_max,
        cert.one_use_bits,
    );
    println!(
        "register bounds (Section 4.2): {:?}",
        cert.bounds
            .registers
            .iter()
            .map(|r| (r.reads, r.writes))
            .collect::<Vec<_>>(),
    );
    assert!(cert.holds());
    println!("\nTheorem 5, witnessed: h_m(test_and_set) = h_m^r(test_and_set) = 2");
    Ok(())
}
