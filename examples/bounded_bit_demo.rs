//! The one-use-bit array of Section 4.3 (experiment E4).
//!
//! A SRSW bit read at most `r` times and written at most `w` times is
//! implemented from exactly `r·(w+1)` one-use bits. This example shows
//! the construction working sequentially and under a real concurrent
//! reader/writer pair (with the recorded history checked for
//! linearizability), and prints the cost surface the paper's formula
//! predicts.
//!
//! Run with: `cargo run --example bounded_bit_demo`

use std::error::Error;

use wait_free_consensus::prelude::*;
use wfc_spec::PortId;

fn main() -> Result<(), Box<dyn Error>> {
    // ── Sequential conversation ─────────────────────────────────────────
    let (mut w, mut r) = core::bounded_bit(false, 4, 3);
    println!(
        "bounded bit (init 0, r_b = 4, w_b = 3), {} one-use bits",
        core::cost(4, 3)
    );
    println!("  read → {}", u8::from(r.read()?));
    w.write(true)?;
    println!("  write 1; read → {}", u8::from(r.read()?));
    w.write(false)?;
    w.write(true)?;
    println!("  write 0; write 1; read → {}", u8::from(r.read()?));
    println!(
        "  budgets used: {} / 3 writes, {} / 4 reads",
        w.writes_used(),
        r.reads_used()
    );

    // Budget exhaustion is a loud, typed error — the paper's bounds are
    // contracts, not suggestions.
    let _ = r.read()?;
    let exhausted = r.read().unwrap_err();
    println!("  one read too many: {exhausted}");

    // ── Cost surface: the paper's r·(w+1) formula ──────────────────────
    println!("\none-use bits required, by (r_b, w_b):");
    print!("        ");
    for wb in 0..6 {
        print!("w={wb:<4}");
    }
    println!();
    for rb in 1..6 {
        print!("  r={rb:<3} ");
        for wb in 0..6 {
            print!("{:<5}", core::cost(rb, wb));
        }
        println!();
    }

    // ── Concurrent reader/writer with linearizability checking ─────────
    println!("\nconcurrent stress (1 writer, 1 reader, 16 ops/side × 50 rounds) …");
    let ty = spec::canonical::boolean_register(2);
    let v0 = ty.state_id("v0").unwrap();
    let ok = ty.response_id("ok").unwrap();
    let read_inv = ty.invocation_id("read").unwrap();
    for round in 0..50 {
        let (mut w, mut r) = core::bounded_bit(false, 16, 16);
        let log = runtime::EventLog::new();
        runtime::run_threads(vec![
            Box::new(|| {
                let mut jitter = runtime::Jitter::new(round + 1);
                for k in 0..16u64 {
                    let v = k % 2 == 0;
                    let inv = ty
                        .invocation_id(if v { "write1" } else { "write0" })
                        .unwrap();
                    let t0 = log.stamp();
                    w.write(v).expect("within budget");
                    let t1 = log.stamp();
                    log.record(PortId::new(0), inv, ok, t0, t1);
                    jitter.stall();
                }
            }) as Box<dyn FnOnce() + Send>,
            Box::new(|| {
                let mut jitter = runtime::Jitter::new(round + 1000);
                for _ in 0..16 {
                    let t0 = log.stamp();
                    let v = r.read().expect("within budget");
                    let t1 = log.stamp();
                    let resp = ty.response_id(if v { "1" } else { "0" }).unwrap();
                    log.record(PortId::new(1), read_inv, resp, t0, t1);
                    jitter.stall();
                }
            }),
        ]);
        let history = log.take_history();
        assert!(
            explorer::linearizability::is_linearizable(&ty, v0, &history),
            "round {round}: not linearizable"
        );
    }
    println!("all 50 recorded histories linearize against the register spec");
    Ok(())
}
