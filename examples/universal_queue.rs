//! The universality of consensus (paper, Section 2.3; Herlihy [7]).
//!
//! Consensus objects plus registers wait-free implement *any* type. Here
//! four real threads hammer a shared FIFO queue that exists only as a
//! `wfc-consensus` universal construction (an agreed log of operations
//! over CAS-consensus slots with helping), while every operation is
//! recorded and the resulting concurrent history is checked for
//! linearizability against the queue's sequential specification.
//!
//! Run with: `cargo run --example universal_queue`

use std::error::Error;
use std::sync::Arc;

use wait_free_consensus::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let ty = Arc::new(spec::canonical::queue(3, 2, 4));
    let init = ty.state_id("⟨⟩").expect("queue has an empty state");
    println!("implementing {ty} from consensus objects + registers\n");

    let object = consensus::UniversalObject::new(Arc::clone(&ty), init, 256);
    let log = runtime::EventLog::new();

    // Each worker enqueues its bit a few times and dequeues twice.
    let results = runtime::run_threads(
        object
            .ports()
            .into_iter()
            .enumerate()
            .take(4)
            .map(|(k, mut handle)| {
                let log = &log;
                let ty = Arc::clone(&ty);
                move || {
                    let mut ops = Vec::new();
                    let enq = ty.invocation_id(&format!("enq{}", k % 2)).unwrap();
                    let deq = ty.invocation_id("deq").unwrap();
                    for inv in [enq, deq, enq, deq] {
                        let t0 = log.stamp();
                        let resp = handle.invoke(inv);
                        let t1 = log.stamp();
                        log.record(handle.port(), inv, resp, t0, t1);
                        ops.push(format!(
                            "{}→{}",
                            ty.invocation_name(inv),
                            ty.response_name(resp)
                        ));
                    }
                    ops
                }
            })
            .collect::<Vec<_>>(),
    );

    for (k, ops) in results.iter().enumerate() {
        println!("worker {k}: {}", ops.join(", "));
    }

    let history = log.take_history();
    println!(
        "\nrecorded {} operations; checking linearizability …",
        history.ops().len()
    );
    let ok = explorer::linearizability::is_linearizable(&ty, init, &history);
    println!("linearizable: {ok}");
    assert!(ok, "universal construction must linearize");
    println!("\nconsensus is universal: the queue existed only as an agreed log");
    Ok(())
}
