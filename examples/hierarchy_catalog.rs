//! Print and re-verify the certified hierarchy catalog (experiment E9).
//!
//! For every canonical type: its position in Jayanti's four hierarchies,
//! with the paper's headline regularity visible in the `h_m` / `h_m^r`
//! columns — they agree on every deterministic type (Theorem 5). Each
//! machine-checkable lower bound is then re-verified by the model
//! checker, and the robustness audit confirms no construction in the
//! repository builds a strong type out of strictly weaker ones.
//!
//! Run with: `cargo run --release --example hierarchy_catalog`

use std::error::Error;

use wait_free_consensus::prelude::*;
use wfc_hierarchy::robustness;

fn main() -> Result<(), Box<dyn Error>> {
    let rows = hierarchy::catalog();
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}  det?",
        "type", "h_1", "h_1^r", "h_m", "h_m^r"
    );
    println!("{}", "─".repeat(60));
    for row in &rows {
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6}  {}",
            row.ty.name(),
            row.value(hierarchy::Hierarchy::H1).to_string(),
            row.value(hierarchy::Hierarchy::H1R).to_string(),
            row.value(hierarchy::Hierarchy::HM).to_string(),
            row.value(hierarchy::Hierarchy::HMR).to_string(),
            if row.ty.is_deterministic() {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!("\nTheorem 5 check: h_m = h_m^r on every deterministic row …");
    for row in &rows {
        if row.ty.is_deterministic() {
            assert_eq!(
                row.value(hierarchy::Hierarchy::HM).exact(),
                row.value(hierarchy::Hierarchy::HMR).exact(),
            );
        }
    }
    println!("  holds.");

    println!("\nre-verifying every `Checked` bound with the model checker …");
    for row in &rows {
        let ok = hierarchy::verify_entry(row);
        println!("  {:<22} {}", row.ty.name(), if ok { "✓" } else { "✗" });
        assert!(ok, "verification failed for {}", row.ty.name());
    }

    println!("\nrobustness audit (h_m, deterministic types) …");
    let violations =
        robustness::check_no_weak_to_strong(&rows, &robustness::implementation_facts());
    println!(
        "  {} implementation facts audited, {} violations",
        robustness::implementation_facts().len(),
        violations.len(),
    );
    assert!(violations.is_empty());
    println!("\ncatalog verified end to end");
    Ok(())
}
