//! Integration tests: each of the paper's claims, machine-checked
//! end-to-end through the public facade.

use std::sync::Arc;

use wait_free_consensus::prelude::*;
use wfc_explorer::linearizability::{check_one_shot_implementation, OpLabel};
use wfc_explorer::program::ProgramBuilder;
use wfc_explorer::{ObjectInstance, System};
use wfc_spec::{canonical, PortId};

/// Section 3 + E1: the one-use bit type is exactly the paper's δ, and a
/// spec-level "identity" implementation linearizes against it under all
/// schedules.
#[test]
fn one_use_bit_identity_implementation_linearizes() {
    let ty = Arc::new(canonical::one_use_bit());
    let unset = ty.state_id("UNSET").unwrap();
    let read = ty.invocation_id("read").unwrap();
    let write = ty.invocation_id("write").unwrap();
    let obj = ObjectInstance::identity_ports(Arc::clone(&ty), unset, 2);
    let mk = |inv: wfc_spec::InvId| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(0_i64, inv.index() as i64, Some(r));
        b.ret(r);
        b.build().unwrap()
    };
    let sys = System::new(vec![obj], vec![mk(write), mk(read)]);
    let labels = [
        OpLabel {
            port: PortId::new(0),
            inv: write,
        },
        OpLabel {
            port: PortId::new(1),
            inv: read,
        },
    ];
    let check = check_one_shot_implementation(&sys, &ty, unset, &labels, 10_000).unwrap();
    assert!(check.holds(), "{:?}", check.counterexamples);
}

/// Sections 5.1–5.2 + E5/E6: every non-trivial deterministic type in the
/// zoo yields a one-use bit whose spec-level implementation (derived
/// reader/writer programs over one object of the type) linearizes against
/// `T_{1u}` under **all** schedules — the formal content of the paper's
/// "it is not hard to see" correctness claims.
#[test]
fn derived_one_use_bits_linearize_for_the_whole_zoo() {
    let target = Arc::new(canonical::one_use_bit());
    let unset = target.state_id("UNSET").unwrap();
    let read = target.invocation_id("read").unwrap();
    let write = target.invocation_id("write").unwrap();
    for ty in canonical::deterministic_zoo(2) {
        if matches!(ty.name(), "mute" | "constant_responder") {
            continue;
        }
        let ty = Arc::new(ty);
        let recipe = core::OneUseRecipe::from_type(&ty).unwrap();
        // Build the 2-process system: process 0 = writer, process 1 = reader.
        let mut ports = vec![None, None];
        ports[0] = Some(recipe.writer_port());
        ports[1] = Some(recipe.reader_port());
        let obj = ObjectInstance::new(Arc::clone(recipe.ty()), recipe.init(), ports);
        let writer_prog = {
            let mut b = ProgramBuilder::new();
            b.invoke(0_i64, recipe.writer_inv().index() as i64, None);
            // Decide T_1u's "ok" response index.
            b.ret(target.response_id("ok").unwrap().index() as i64);
            b.build().unwrap()
        };
        let reader_prog = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            for &inv in recipe.reader_seq() {
                b.invoke(0_i64, inv.index() as i64, Some(r));
            }
            // Bit = (last response ≠ H₁'s return value) — decide 0 or 1,
            // which are T_1u's response indices for "0"/"1".
            let bit = b.var("bit");
            b.compute(
                bit,
                r,
                wfc_explorer::program::BinOp::Eq,
                recipe.unwritten_last().index() as i64,
            );
            b.compute(bit, 1_i64, wfc_explorer::program::BinOp::Sub, bit);
            b.ret(bit);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![writer_prog, reader_prog]);
        let labels = [
            OpLabel {
                port: PortId::new(0),
                inv: write,
            },
            OpLabel {
                port: PortId::new(1),
                inv: read,
            },
        ];
        let check = check_one_shot_implementation(&sys, &target, unset, &labels, 100_000).unwrap();
        assert!(
            check.holds(),
            "{}: derived one-use bit not linearizable: {:?}",
            ty.name(),
            check.counterexamples
        );
    }
}

/// Section 4.3 + E4: the construction's cost is exactly r·(w+1), and the
/// runtime array tracks a reference bit over every sequential schedule.
#[test]
fn bounded_bit_cost_and_semantics() {
    for r in 1..5 {
        for w in 0..5 {
            assert_eq!(core::cost(r, w), r * (w + 1));
        }
    }
    // Alternate writes and reads in every pattern of length 8.
    for mask in 0u32..256 {
        let (mut w, mut r) = core::bounded_bit(true, 8, 8);
        let mut reference = true;
        for k in 0..8 {
            if mask & (1 << k) != 0 {
                reference = !reference;
                w.write(reference).unwrap();
            } else {
                assert_eq!(r.read().unwrap(), reference);
            }
        }
    }
}

/// Section 4.2 + E3: wait-freedom ⟺ finite execution trees; the depth
/// bound D exists for every correct protocol and bounds every object's
/// access count.
#[test]
fn access_bounds_exist_and_dominate_object_accesses() {
    let opts = explorer::ExploreOptions::default();
    let bounds =
        core::access_bounds(2, |i| consensus::tas_consensus_system([i[0], i[1]]), &opts).unwrap();
    assert_eq!(bounds.d_max, 5);
    for reg in &bounds.registers {
        assert!(u32::max(reg.reads, reg.writes) as usize <= bounds.d_max);
    }
    // The paper's choice r_b = w_b = D is always a valid (if loose) bound.
    assert!(bounds.one_use_bits_required() <= 2 * bounds.d_max * (bounds.d_max + 1));
}

/// Theorem 5 + E8: the full grid — each register-using protocol compiled
/// against each substrate type remains correct, register-free.
#[test]
fn theorem5_grid_holds() {
    let opts = explorer::ExploreOptions::default();
    let substrates: Vec<core::OneUseSource> = vec![
        core::OneUseSource::OneUseBits,
        core::OneUseSource::Recipe(
            core::OneUseRecipe::from_type(&Arc::new(canonical::test_and_set(2))).unwrap(),
        ),
        core::OneUseSource::Recipe(
            core::OneUseRecipe::from_type(&Arc::new(canonical::boolean_register(2))).unwrap(),
        ),
    ];
    for source in &substrates {
        let cert = core::check_theorem5(
            2,
            |i| consensus::tas_consensus_system([i[0], i[1]]),
            source,
            &opts,
        )
        .unwrap();
        assert!(cert.holds());
        assert_eq!(cert.one_use_bits, 4);
    }
}

/// Theorem 5 case 1: trivial types derive nothing, and the paper sends
/// them to level 1.
#[test]
fn trivial_types_classify_to_case_one() {
    for name in ["mute", "constant_responder"] {
        let ty = canonical::deterministic_zoo(2)
            .into_iter()
            .find(|t| t.name() == name)
            .unwrap();
        match core::classify_deterministic(&Arc::new(ty)).unwrap() {
            core::Theorem5Classification::Trivial => {}
            other => panic!("{name} misclassified: {other:?}"),
        }
    }
}

/// Section 5.3 + E7: one-use bits from every 2-consensus protocol family.
#[test]
fn one_use_bits_from_consensus_objects() {
    use wait_free_consensus::core::{OneUseRead, OneUseWrite};
    // Sequential semantics across all three protocol families.
    let (w, r) = core::one_use_from_consensus(consensus::tas_consensus_2());
    w.write();
    assert!(r.read());
    let (_w, r) = core::one_use_from_consensus(consensus::queue_consensus_2());
    assert!(!r.read());
    let (w, r) = core::one_use_from_consensus(consensus::fetch_add_consensus_2());
    w.write();
    assert!(r.read());
}

/// E10: register-only candidate protocols are refuted — disagreement or
/// non-wait-freedom, with bivalent initial configurations as the FLP
/// argument predicts.
#[test]
fn register_only_consensus_candidates_fail() {
    use wfc_explorer::bivalence::analyze_valency;
    use wfc_explorer::program::BinOp;
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };

    // Candidate A: write own, read other, decide min(own, other) — a
    // plausible-looking symmetric rule; fails agreement.
    let mk_min = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let w = reg
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        b.invoke(me as i64, w, Some(r));
        b.invoke(1 - me as i64, read, Some(r));
        // decide own AND other (min of bits). Response indices: "0"=0,"1"=1.
        let own = b.var_init("own", i64::from(input));
        let dec = b.var("dec");
        b.compute(dec, r, BinOp::Mul, own);
        b.ret(dec);
        b.build().unwrap()
    };
    let sys = System::new(
        vec![announce(0), announce(1)],
        vec![mk_min(0, false), mk_min(1, true)],
    );
    let e = explorer::explore(&sys, &explorer::ExploreOptions::default()).unwrap();
    // On the mixed vector (0, 1) the min rule actually agrees: p0's own
    // bit is 0, so it decides 0 regardless of what it reads, and p0's
    // register only ever holds 0, so p1's product is 0 too. The genuine
    // failure is on (1, 1): a read can race ahead of the peer's write,
    // see the initial 0, and decide 0 ∉ {1} — a validity violation that
    // the all-vectors verdict below catches.
    assert!(e.decisions_agree(), "min rule agrees on mixed inputs");
    assert_eq!(
        e.decisions.iter().collect::<Vec<_>>(),
        vec![&vec![0, 0]],
        "every mixed-input execution decides 0 for both processes"
    );
    let verdict_violates = {
        // Build as a protocol over all input vectors and find a violation.
        let build = |inputs: &[bool]| wfc_consensus::ConsensusSystem {
            system: System::new(
                vec![announce(0), announce(1)],
                vec![mk_min(0, inputs[0]), mk_min(1, inputs[1])],
            ),
            registers: vec![],
            inputs: inputs.to_vec(),
        };
        let v =
            consensus::verify_consensus_protocol(2, build, &explorer::ExploreOptions::default())
                .unwrap();
        !v.holds()
    };
    assert!(
        verdict_violates,
        "the min-rule register protocol must fail consensus"
    );

    // And the mixed-input instance is bivalent, as FLP's argument begins.
    let sys_mixed = System::new(
        vec![announce(0), announce(1)],
        vec![mk_min(0, false), mk_min(1, true)],
    );
    let a = analyze_valency(&sys_mixed, &explorer::ExploreOptions::default()).unwrap();
    assert!(!a.initial_valency.is_empty());
}

/// Section 1's fault-tolerance motivation: wait-free implementations
/// tolerate any number of stopping failures — before *and after*
/// register elimination.
#[test]
fn elimination_preserves_crash_tolerance() {
    use wfc_explorer::crash::check_crash_tolerance;
    let opts = explorer::ExploreOptions::default();
    let build = |i: &[bool]| consensus::tas_consensus_system([i[0], i[1]]);
    let bounds = core::access_bounds(2, build, &opts).unwrap();
    for inputs in [[false, true], [true, true]] {
        let cs = build(&inputs);
        let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
        let before = check_crash_tolerance(&cs.system, &allowed, &opts).unwrap();
        assert!(before.holds(), "before: {before:?}");
        let elim =
            core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::OneUseBits)
                .unwrap();
        let after = check_crash_tolerance(&elim.system, &allowed, &opts).unwrap();
        assert!(after.holds(), "after: {after:?}");
    }
}

/// The hierarchy catalog's paper-level regularities (E9).
#[test]
fn catalog_regularities() {
    let rows = hierarchy::catalog();
    assert!(rows.len() >= 8, "catalog covers the zoo");
    for row in &rows {
        if row.ty.is_deterministic() {
            assert_eq!(
                row.value(hierarchy::Hierarchy::HM).exact(),
                row.value(hierarchy::Hierarchy::HMR).exact(),
                "Theorem 5 in catalog: {}",
                row.ty.name()
            );
        }
    }
}
