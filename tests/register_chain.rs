//! Integration tests for the Section 4.1 register chain, including the
//! semantic boundary the literature is precise about: Lamport's
//! multi-reader construction is **regular but not atomic**, and the
//! model checker can exhibit the difference.

use std::sync::Arc;

use wfc_explorer::linearizability::{collect_histories, is_linearizable, OpLabel};
use wfc_explorer::program::ProgramBuilder;
use wfc_explorer::{ObjectInstance, System};
use wfc_registers::{
    atomic_bit, mrsw_regular_bit, BitReader, BitWriter, RegReader, RegWriter, Register,
};
use wfc_runtime::{is_regular, run_threads, EventLog};
use wfc_spec::{canonical, PortId};

/// Spec-level Lamport construction: one writer, two readers, per-reader
/// SRSW bit copies. The writer's program writes copy 0 then copy 1; each
/// reader reads only its own copy.
fn lamport_spec_system() -> (System, Vec<OpLabel>, Arc<wfc_spec::FiniteType>) {
    let bit = Arc::new(canonical::boolean_register(2));
    let v0 = bit.state_id("v0").unwrap();
    let read = bit.invocation_id("read").unwrap();
    let write1 = bit.invocation_id("write1").unwrap();
    // copies[k]: written by process 0 (port 0), read by reader k (port 1).
    let copy = |reader_proc: usize| {
        let mut ports = vec![None, None, None];
        ports[0] = Some(PortId::new(0));
        ports[reader_proc] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&bit), v0, ports)
    };
    let writer = {
        let mut b = ProgramBuilder::new();
        b.invoke(0_i64, write1.index() as i64, None);
        b.invoke(1_i64, write1.index() as i64, None);
        b.ret(bit.response_id("ok").unwrap().index() as i64);
        b.build().unwrap()
    };
    let reader = |obj: i64| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(obj, read.index() as i64, Some(r));
        b.ret(r);
        b.build().unwrap()
    };
    let system = System::new(vec![copy(1), copy(2)], vec![writer, reader(0), reader(1)]);
    let labels = vec![
        OpLabel {
            port: PortId::new(0),
            inv: write1,
        },
        OpLabel {
            port: PortId::new(1),
            inv: read,
        },
        OpLabel {
            port: PortId::new(2),
            inv: read,
        },
    ];
    (system, labels, bit)
}

/// The Lamport construction, model-checked: some schedule produces a
/// non-linearizable history (the classic new/old inversion across
/// readers), yet **every** schedule is regular. This is exactly why the
/// chain needs the atomic constructions above it.
#[test]
fn lamport_mrsw_is_regular_but_not_atomic() {
    let (system, labels, _bit) = lamport_spec_system();
    // The target for linearizability is a 3-port boolean register.
    let target = canonical::boolean_register(3);
    let init = target.state_id("v0").unwrap();
    let read = target.invocation_id("read").unwrap();
    let write1 = target.invocation_id("write1").unwrap();
    let target_labels: Vec<OpLabel> = labels
        .iter()
        .enumerate()
        .map(|(k, _l)| OpLabel {
            port: PortId::new(k),
            inv: if k == 0 { write1 } else { read },
        })
        .collect();
    let _ = (labels, read);

    let histories = collect_histories(&system, &target_labels, 100_000).unwrap();
    assert!(!histories.is_empty());

    let mut inversion_found = false;
    let w1_resp_is_one = |resp: wfc_spec::RespId| target.response_name(resp) == "1";
    for (_, h) in &histories {
        if !is_linearizable(&target, init, h) {
            inversion_found = true;
        }
        // Regularity must hold on every schedule.
        let ops = h.ops().to_vec();
        assert!(
            is_regular(
                &ops,
                read,
                |inv| (inv == write1).then_some(true),
                w1_resp_is_one,
                false,
            ),
            "regularity violated: {ops:?}"
        );
    }
    assert!(
        inversion_found,
        "the new/old inversion schedule must exist — Lamport's bit is not atomic"
    );
}

/// The full runtime chain under concurrency: MRMW register histories
/// always linearize (the atomic layers repair what Lamport's layer
/// cannot provide).
#[test]
fn full_chain_register_is_atomic_under_stress() {
    let values = 3usize;
    let ty = canonical::register(values, 8);
    let init = ty.state_id("v0").unwrap();
    let read_inv = ty.invocation_id("read").unwrap();
    let ok = ty.response_id("ok").unwrap();
    for round in 0..10 {
        let (ws, rs) = Register::new(0usize, 2, 2);
        let log = EventLog::new();
        let mut workers: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (k, mut w) in ws.into_iter().enumerate() {
            let log = &log;
            let ty = &ty;
            workers.push(Box::new(move || {
                for j in 0..4usize {
                    let v = (round + j + k) % values;
                    let inv = ty.invocation_id(&format!("write{v}")).unwrap();
                    let t0 = log.stamp();
                    w.write(v);
                    let t1 = log.stamp();
                    log.record(PortId::new(k), inv, ok, t0, t1);
                }
            }));
        }
        for (k, mut r) in rs.into_iter().enumerate() {
            let log = &log;
            let ty = &ty;
            workers.push(Box::new(move || {
                for _ in 0..4 {
                    let t0 = log.stamp();
                    let v = r.read();
                    let t1 = log.stamp();
                    let resp = ty.response_id(&v.to_string()).unwrap();
                    log.record(PortId::new(2 + k), read_inv, resp, t0, t1);
                }
            }));
        }
        run_threads(workers);
        let h = log.take_history();
        assert!(
            is_linearizable(&ty, init, &h),
            "round {round}: chain register not linearizable: {h:?}"
        );
    }
}

/// MRSW regular bit at runtime: per-reader monotonic visibility when the
/// writer performs a single one-way transition.
#[test]
fn runtime_lamport_bit_one_way_flag() {
    for _ in 0..50 {
        let (mut w, rs) = mrsw_regular_bit(false, 4, |init| {
            let (w, r) = atomic_bit(init);
            (
                Box::new(w) as Box<dyn BitWriter>,
                Box::new(r) as Box<dyn BitReader>,
            )
        });
        let mut workers: Vec<Box<dyn FnOnce() -> Vec<bool> + Send>> = Vec::new();
        workers.push(Box::new(move || {
            w.write(true);
            Vec::new()
        }));
        for mut r in rs {
            workers.push(Box::new(move || (0..8).map(|_| r.read()).collect()));
        }
        let results = run_threads(workers);
        for reads in &results[1..] {
            // One-way flag: once seen true, stays true for that reader.
            let first_true = reads.iter().position(|&b| b);
            if let Some(k) = first_true {
                assert!(reads[k..].iter().all(|&b| b), "flag regressed: {reads:?}");
            }
        }
    }
}
