//! Differential tests for the parallel explorer: every quantity computed
//! with `threads > 1` must be **bit-identical** to the sequential
//! (`threads = 1`) run — depths, configuration counts, access bounds,
//! decision sets, verdicts, and even which budget error surfaces.
//!
//! Comparison is by `Debug` rendering of the full result structs, so any
//! field that drifts under parallel scheduling fails the test.

use wait_free_consensus::prelude::*;

use consensus::{
    cas_announce_consensus_system, cas_consensus_system, queue_consensus_system,
    tas_consensus_system,
};
use explorer::{ExploreOptions, ObsOptions};

const THREADS: [usize; 3] = [2, 4, 8];

fn opts(threads: usize) -> ExploreOptions {
    ExploreOptions::default().with_threads(threads)
}

/// `explore` itself: one mixed-input system per protocol family.
#[test]
fn exploration_is_identical_across_thread_counts() {
    let families: Vec<(&str, explorer::System)> = vec![
        ("tas", tas_consensus_system([false, true]).system),
        ("queue", queue_consensus_system([false, true]).system),
        ("cas", cas_consensus_system(&[false, true, true]).system),
        (
            "cas_announce",
            cas_announce_consensus_system(&[true, false]).system,
        ),
    ];
    for (name, sys) in &families {
        let seq = format!("{:?}", explorer::explore(sys, &opts(1)).unwrap());
        for t in THREADS {
            let par = format!("{:?}", explorer::explore(sys, &opts(t)).unwrap());
            assert_eq!(seq, par, "{name}: explore differs at threads={t}");
        }
    }
}

/// The Section 4.2 analysis: 2^n trees fanned across the pool must merge
/// to the same depths, register bounds, and totals.
#[test]
fn access_bounds_are_identical_across_thread_counts() {
    type Builder = Box<dyn Fn(&[bool]) -> consensus::ConsensusSystem + Sync>;
    let families: Vec<(&str, usize, Builder)> = vec![
        (
            "tas",
            2,
            Box::new(|i: &[bool]| tas_consensus_system([i[0], i[1]])),
        ),
        ("cas", 3, Box::new(cas_consensus_system)),
        ("cas_announce", 2, Box::new(cas_announce_consensus_system)),
    ];
    for (name, n, build) in &families {
        let seq = format!("{:?}", core::access_bounds(*n, build, &opts(1)).unwrap());
        for t in THREADS {
            let par = format!("{:?}", core::access_bounds(*n, build, &opts(t)).unwrap());
            assert_eq!(seq, par, "{name}: access_bounds differs at threads={t}");
        }
    }
}

/// Full protocol verification (agreement + validity over all vectors).
#[test]
fn protocol_verdicts_are_identical_across_thread_counts() {
    let seq = format!(
        "{:?}",
        consensus::verify_consensus_protocol(2, |i| tas_consensus_system([i[0], i[1]]), &opts(1))
            .unwrap()
    );
    for t in THREADS {
        let par = format!(
            "{:?}",
            consensus::verify_consensus_protocol(
                2,
                |i| tas_consensus_system([i[0], i[1]]),
                &opts(t)
            )
            .unwrap()
        );
        assert_eq!(seq, par, "verify_consensus_protocol differs at threads={t}");
    }
}

/// The end-to-end Theorem 5 certificate (bounds, elimination, re-check).
#[test]
fn theorem5_certificates_are_identical_across_thread_counts() {
    let source = core::OneUseSource::OneUseBits;
    let seq = format!(
        "{:?}",
        core::check_theorem5(2, |i| tas_consensus_system([i[0], i[1]]), &source, &opts(1)).unwrap()
    );
    for t in THREADS {
        let par = format!(
            "{:?}",
            core::check_theorem5(2, |i| tas_consensus_system([i[0], i[1]]), &source, &opts(t))
                .unwrap()
        );
        assert_eq!(seq, par, "check_theorem5 differs at threads={t}");
    }
}

/// Serialises the obs-instrumented tests: they share the process-global
/// metrics registry and span collector, which `RunReport::collect`
/// resets.
static OBS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Observability must not perturb results: instrumented runs (metrics
/// and spans on) are bit-identical to uninstrumented runs at every
/// thread count, for both `explore` and the 2^n-tree analysis (which
/// also exercises the report-emission path).
#[test]
fn instrumented_runs_are_identical_across_thread_counts() {
    let _g = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = tas_consensus_system([false, true]).system;
    let baseline = format!("{:?}", explorer::explore(&sys, &opts(1)).unwrap());
    let build = |i: &[bool]| tas_consensus_system([i[0], i[1]]);
    let bounds_baseline = format!("{:?}", core::access_bounds(2, build, &opts(1)).unwrap());
    for t in [1, 2, 4, 8] {
        for obs in [ObsOptions::off(), ObsOptions::on()] {
            let o = opts(t).with_obs(obs);
            let run = format!("{:?}", explorer::explore(&sys, &o).unwrap());
            assert_eq!(baseline, run, "explore differs at threads={t}, obs={obs:?}");
            let run = format!("{:?}", core::access_bounds(2, build, &o).unwrap());
            assert_eq!(
                bounds_baseline, run,
                "access_bounds differs at threads={t}, obs={obs:?}"
            );
        }
    }
}

/// The deterministic measurements themselves — counters, gauges, and
/// the structural (non-timing) histograms and span shapes — must also
/// be bit-identical across thread counts. Timing histograms (`*_ns`)
/// are the only quantities allowed to vary.
#[test]
fn instrumented_measurements_are_identical_across_thread_counts() {
    let _g = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = cas_announce_consensus_system(&[true, false]).system;
    let mut fingerprints = Vec::new();
    for t in [1, 2, 4, 8] {
        wfc_obs::metrics::Registry::global().reset();
        let _ = wfc_obs::span::drain();
        let o = opts(t).with_obs(ObsOptions::on());
        explorer::explore(&sys, &o).unwrap();
        let snap = wfc_obs::metrics::Registry::global().snapshot();
        let histograms: Vec<_> = snap
            .histograms
            .iter()
            .filter(|(k, _)| !k.ends_with("_ns"))
            .collect();
        let spans: Vec<_> = wfc_obs::span::drain()
            .into_iter()
            .map(|s| (s.name, s.label, s.count))
            .collect();
        fingerprints.push((
            t,
            format!(
                "counters={:?} gauges={:?} histograms={histograms:?} spans={spans:?}",
                snap.counters, snap.gauges
            ),
        ));
    }
    let (_, first) = &fingerprints[0];
    for (t, fp) in &fingerprints[1..] {
        assert_eq!(first, fp, "measurements differ at threads={t}");
    }
    // Sanity: the fingerprint actually contains the paper quantities.
    assert!(first.contains("explorer.configs"), "{first}");
    assert!(first.contains("explorer.interner.hits"), "{first}");
    assert!(first.contains("explorer.bfs.frontier"), "{first}");
}

/// Budgets fire at exactly the same thresholds, with exactly the same
/// error, no matter how many workers discover the graph.
#[test]
fn budget_errors_are_identical_across_thread_counts() {
    let sys = tas_consensus_system([false, true]).system;
    let base = explorer::explore(&sys, &opts(1)).unwrap();
    let cases: Vec<(&str, ExploreOptions)> = vec![
        (
            "configs at threshold",
            opts(1).with_max_configs(base.configs),
        ),
        (
            "configs one below",
            opts(1).with_max_configs(base.configs - 1),
        ),
        ("depth at threshold", opts(1).with_max_depth(base.depth)),
        ("depth one below", opts(1).with_max_depth(base.depth - 1)),
    ];
    for (name, case) in &cases {
        let seq = format!("{:?}", explorer::explore(&sys, case));
        for t in THREADS {
            let par = format!("{:?}", explorer::explore(&sys, &case.with_threads(t)));
            assert_eq!(seq, par, "{name}: outcome differs at threads={t}");
        }
    }
    // Sanity: the one-below cases actually error, at-threshold succeed.
    assert!(explorer::explore(&sys, &cases[0].1).is_ok());
    match explorer::explore(&sys, &cases[1].1) {
        Err(explorer::ExplorerError::Exhausted(e)) => {
            assert_eq!(e.resource, wfc_spec::control::Resource::Configs);
            // Exact accounting: the budget fires at exactly one config
            // over, never at some thread-dependent overshoot.
            assert_eq!(e.used, e.budget + 1);
        }
        other => panic!("expected a configs Exhausted error, got {other:?}"),
    }
    assert!(explorer::explore(&sys, &cases[2].1).is_ok());
    match explorer::explore(&sys, &cases[3].1) {
        Err(explorer::ExplorerError::Exhausted(e)) => {
            assert_eq!(e.resource, wfc_spec::control::Resource::Depth);
            assert_eq!(e.used, e.budget + 1);
        }
        other => panic!("expected a depth Exhausted error, got {other:?}"),
    }
}
