//! Acceptance tests for `wfc-repl` clustering: N `wfc serve` nodes
//! agree on cache contents through the replicated log, recover them
//! from the WAL after a restart, and stay reachable through client
//! failover — all pinned against the byte-identical-results contract
//! of `tests/service_differential.rs`.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use wfc_obs::json::Json;
use wfc_service::{
    serve, Client, QueryKind, QueryOptions, ReplConfig, Response, ServeConfig, ServerHandle,
};
use wfc_spec::text::format_type;

fn tas_text() -> String {
    format_type(&wfc_spec::canonical::test_and_set(2))
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reserves `n` distinct loopback addresses. The listeners are dropped
/// before the servers bind them — a tiny race, standard for tests that
/// must know peer addresses before any peer exists.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// A running N-node cluster over per-node temp data directories.
struct Cluster {
    addrs: Vec<String>,
    handles: Vec<Option<ServerHandle>>,
    base: PathBuf,
}

impl Cluster {
    fn start(tag: &str, n: usize, cache_dirs: bool) -> Cluster {
        let base = std::env::temp_dir().join(format!("wfc-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let addrs = reserve_addrs(n);
        let handles = (0..n)
            .map(|i| Some(Self::spawn_node(&base, &addrs, i, cache_dirs)))
            .collect();
        Cluster {
            addrs,
            handles,
            base,
        }
    }

    fn node_config(base: &Path, addrs: &[String], i: usize, cache_dirs: bool) -> ServeConfig {
        let peers = addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, addr)| (j as u64 + 1, addr.clone()))
            .collect();
        ServeConfig {
            addr: addrs[i].clone(),
            workers: 2,
            cache_dir: cache_dirs.then(|| base.join(format!("cache{i}"))),
            repl: Some(ReplConfig {
                node_id: i as u64 + 1,
                peers,
                data_dir: base.join(format!("node{i}")),
                compact_threshold: 1024,
            }),
            ..ServeConfig::default()
        }
    }

    fn spawn_node(base: &Path, addrs: &[String], i: usize, cache_dirs: bool) -> ServerHandle {
        serve(Self::node_config(base, addrs, i, cache_dirs)).unwrap()
    }

    fn client(&self, i: usize) -> Client {
        Client::connect_retry(self.addrs[i].as_str(), Duration::from_secs(10)).unwrap()
    }

    /// One node's `repl` stats section (from the `wfc-stats/v1` frame).
    fn repl_stats(&self, i: usize) -> Json {
        let mut client = self.client(i);
        match client
            .query(QueryKind::Stats, "", &QueryOptions::default())
            .unwrap()
        {
            Response::Ok { result, .. } => {
                wfc_service::validate_stats_json(&result).expect("stats frame validates");
                result
                    .get("repl")
                    .expect("clustered stats carry repl")
                    .clone()
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
    }

    fn applied(&self, i: usize) -> u64 {
        self.repl_stats(i)
            .get("applied")
            .and_then(Json::as_u64)
            .unwrap_or(0)
    }

    fn stop(&mut self, i: usize) {
        if let Some(handle) = self.handles[i].take() {
            handle.shutdown();
        }
    }

    fn restart(&mut self, i: usize, cache_dirs: bool) {
        assert!(self.handles[i].is_none(), "stop node {i} before restart");
        self.handles[i] = Some(Self::spawn_node(&self.base, &self.addrs, i, cache_dirs));
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for handle in self.handles.iter_mut() {
            if let Some(handle) = handle.take() {
                handle.shutdown();
            }
        }
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn query_ok(client: &mut Client, kind: QueryKind, text: &str) -> (bool, String) {
    match client.query(kind, text, &QueryOptions::default()).unwrap() {
        Response::Ok { cached, result, .. } => (cached, result.render()),
        other => panic!("unexpected response {other:?}"),
    }
}

/// The tentpole's acceptance criterion: an entry committed on one node
/// is readable from every node — a query answered anywhere warms all
/// replicas, and the replicated bytes are identical to the direct
/// engine result.
#[test]
fn entry_committed_on_one_node_is_readable_from_all() {
    let mut cluster = Cluster::start("warm", 3, false);
    let tas = tas_text();
    let direct =
        wfc_service::run_query_text(QueryKind::AccessBounds, &tas, &QueryOptions::default())
            .unwrap()
            .render();

    let mut c0 = cluster.client(0);
    let (cached, bytes) = query_ok(&mut c0, QueryKind::AccessBounds, &tas);
    assert!(!cached, "first query computes fresh");
    assert_eq!(bytes, direct, "served bytes must match the direct call");

    // The commit pipeline needs every link up and a majority of acks;
    // wait for the entry to be applied everywhere.
    for i in 0..3 {
        wait_until("replication to all nodes", || cluster.applied(i) >= 1);
    }
    for i in 1..3 {
        let mut c = cluster.client(i);
        let (cached, bytes) = query_ok(&mut c, QueryKind::AccessBounds, &tas);
        assert!(
            cached,
            "node {i} must serve the replicated entry from cache"
        );
        assert_eq!(bytes, direct, "node {i} replicated different bytes");
    }
    cluster.stop(0);
}

/// Crash recovery: a node with *no* disk cache tier rebuilds its cache
/// from the WAL alone — restart it and the committed entry is still
/// served cached, byte-identical.
#[test]
fn restarted_node_recovers_committed_entries_from_wal() {
    let mut cluster = Cluster::start("recover", 3, false);
    let tas = tas_text();
    let mut c0 = cluster.client(0);
    let (_, bytes) = query_ok(&mut c0, QueryKind::Classify, &tas);
    for i in 0..3 {
        wait_until("replication to all nodes", || cluster.applied(i) >= 1);
    }
    drop(c0);

    // Bounce node 2 (a follower). Its memory cache dies with it; only
    // the WAL survives.
    cluster.stop(2);
    cluster.restart(2, false);
    let mut c2 = cluster.client(2);
    let (cached, recovered) = query_ok(&mut c2, QueryKind::Classify, &tas);
    assert!(cached, "the entry must come back from WAL recovery");
    assert_eq!(recovered, bytes, "recovery changed the bytes");

    // And the restarted node reports its recovered log in its status.
    let stats = cluster.repl_stats(2);
    assert!(stats.get("applied").and_then(Json::as_u64).unwrap_or(0) >= 1);
}

/// Restarting the *sequencer* (lowest id) recovers too, and the cluster
/// commits new entries again once it is back.
#[test]
fn restarted_sequencer_resumes_committing() {
    let mut cluster = Cluster::start("seq", 3, false);
    let tas = tas_text();
    let mut c0 = cluster.client(0);
    let (_, first) = query_ok(&mut c0, QueryKind::Classify, &tas);
    for i in 0..3 {
        wait_until("replication of the first entry", || cluster.applied(i) >= 1);
    }
    drop(c0);
    cluster.stop(0);
    cluster.restart(0, false);

    // The recovered sequencer still serves the old entry...
    let mut c0 = cluster.client(0);
    let (cached, recovered) = query_ok(&mut c0, QueryKind::Classify, &tas);
    assert!(cached && recovered == first, "sequencer lost the entry");

    // ...and commits new ones proposed via a follower.
    let mut c1 = cluster.client(1);
    let (cached, _) = query_ok(&mut c1, QueryKind::AccessBounds, &tas);
    assert!(!cached, "new entry computes fresh on the follower");
    for i in 0..3 {
        wait_until("replication of the second entry", || {
            cluster.applied(i) >= 2
        });
    }
}

/// `Client::connect_failover` rotates past a dead address to a live
/// node — the client half of crash tolerance.
#[test]
fn client_failover_skips_dead_nodes() {
    // A reserved-then-dropped address refuses connections.
    let dead = reserve_addrs(1).remove(0);
    let handle = serve(ServeConfig::default()).unwrap();
    let live = handle.addr().to_string();

    let addrs = vec![dead.clone(), live];
    let mut client = Client::connect_failover(&addrs, 2).unwrap();
    let (_, bytes) = query_ok(&mut client, QueryKind::Classify, &tas_text());
    assert!(!bytes.is_empty());

    // All-dead fails with the underlying error after the retries.
    let err = Client::connect_failover(&[dead], 0);
    assert!(err.is_err(), "a dead address must fail");
    handle.shutdown();
}

/// The `wfc-repl/v1` status exchange: a clustered node answers a
/// `status` frame with a validating `status-reply`; a standalone server
/// answers `enabled: false`.
#[test]
fn status_frames_validate_on_and_off_cluster() {
    let mut cluster = Cluster::start("status", 3, false);
    let mut client = cluster.client(1);
    client.send_doc(&wfc_repl::msg::status_request(7)).unwrap();
    let reply = client.recv_doc().unwrap();
    wfc_repl::msg::validate_status_json(&reply).expect("clustered status validates");
    assert_eq!(reply.get("node_id").and_then(Json::as_u64), Some(2));
    assert_eq!(reply.get("sequencer").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(7));
    cluster.stop(0);

    let handle = serve(ServeConfig::default()).unwrap();
    let mut solo = Client::connect(handle.addr()).unwrap();
    solo.send_doc(&wfc_repl::msg::status_request(1)).unwrap();
    let reply = solo.recv_doc().unwrap();
    wfc_repl::msg::validate_status_json(&reply).expect("disabled status validates");
    assert_eq!(reply.get("enabled"), Some(&Json::Bool(false)));
    handle.shutdown();
}

/// With observability off, replication must add **zero** registry
/// entries — the obs contract every subsystem in this repo keeps.
#[test]
fn repl_adds_no_registry_entries_when_obs_is_off() {
    if wfc_obs::enabled() {
        return; // an obs-enabled environment invalidates the premise
    }
    let cluster = Cluster::start("obs-off", 3, false);
    let tas = tas_text();
    let mut c0 = cluster.client(0);
    let _ = query_ok(&mut c0, QueryKind::Classify, &tas);
    for i in 0..3 {
        wait_until("replication to all nodes", || cluster.applied(i) >= 1);
    }
    drop(c0);
    drop(cluster);
    let snapshot = wfc_obs::metrics::Registry::global().snapshot();
    let repl_counters: Vec<&String> = snapshot
        .counters
        .iter()
        .map(|(name, _)| name)
        .filter(|name| name.starts_with("repl."))
        .collect();
    assert!(
        repl_counters.is_empty(),
        "obs off, yet repl registered: {repl_counters:?}"
    );
    let repl_gauges: Vec<&String> = snapshot
        .gauges
        .iter()
        .map(|(name, _)| name)
        .filter(|name| name.starts_with("repl."))
        .collect();
    assert!(
        repl_gauges.is_empty(),
        "obs off, yet repl registered: {repl_gauges:?}"
    );
}
