//! Cache-effectiveness test, proven through `wfc-obs` counters rather
//! than timing: a repeated identical query must be answered with **zero
//! new explorer work** — no configurations interned, no interner
//! traffic, no witness searches.
//!
//! This lives in its own integration-test binary because it flips the
//! process-global observability switch and snapshots/resets the global
//! metrics registry; sharing a process with the other service tests
//! would let their servers write into the registry mid-assertion.

use wait_free_consensus::prelude::*;
use wfc_service::{serve, Client, QueryKind, QueryOptions, Response, ServeConfig};
use wfc_spec::text::format_type;

fn counter(snapshot: &wfc_obs::metrics::Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn repeated_query_does_zero_explorer_work() {
    wfc_obs::set_enabled(true);
    let registry = wfc_obs::metrics::Registry::global();
    registry.reset();

    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = format_type(&spec::canonical::test_and_set(2));
    let options = QueryOptions::default();

    let fresh = match client
        .query(QueryKind::VerifyConsensus, &tas, &options)
        .unwrap()
    {
        Response::Ok { cached, result, .. } => {
            assert!(!cached);
            result.render()
        }
        other => panic!("unexpected {other:?}"),
    };
    let after_first = registry.snapshot();
    assert!(
        counter(&after_first, "explorer.configs") > 0,
        "the fresh query must actually explore: {after_first:?}"
    );
    assert_eq!(counter(&after_first, "service.cache.mem.misses"), 1);

    // Clean slate, then repeat the identical query.
    registry.reset();
    let cached = match client
        .query(QueryKind::VerifyConsensus, &tas, &options)
        .unwrap()
    {
        Response::Ok { cached, result, .. } => {
            assert!(cached, "repeat must be served from cache");
            result.render()
        }
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(cached, fresh, "cached bytes differ from fresh computation");

    let after_second = registry.snapshot();
    for name in [
        "explorer.configs",
        "explorer.edges",
        "explorer.terminals",
        "explorer.interner.hits",
        "explorer.interner.misses",
        "spec.witness_searches",
        "pool.runs",
    ] {
        assert_eq!(
            counter(&after_second, name),
            0,
            "cached query performed explorer work ({name}): {after_second:?}"
        );
    }
    assert_eq!(counter(&after_second, "service.cache.mem.hits"), 1);
    assert_eq!(counter(&after_second, "service.cache.mem.misses"), 0);

    handle.shutdown();
    registry.reset();
    wfc_obs::set_enabled(false);
}
