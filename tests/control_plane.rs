//! Acceptance tests for the unified control plane (`wfc_spec::control`):
//! one `Budget`/`CancelToken`/`Progress` triple threads through the
//! explorer BFS, the sched model checker, and the witness search, with
//! two guarantees at every poll point:
//!
//! 1. **Latency** — a set token or an expired wall stops the engine
//!    within one sync interval (one BFS level, one schedule), returning
//!    a `Progress` snapshot of the work already done, so a caller can
//!    resize its budgets and resume.
//! 2. **Transparency** — an armed-but-never-set token changes nothing:
//!    completed runs are bit-identical with and without control signals,
//!    at any thread count.

use std::sync::atomic::AtomicBool;
use std::time::Duration;

use wait_free_consensus::prelude::*;

use consensus::tas_consensus_system;
use explorer::{ExploreOptions, ExplorerError};
use wfc_sched::{fixtures, Mode, SchedError, SchedOptions};
use wfc_spec::control::{CancelToken, Resource, Wall};

/// A pre-set token cancels the explorer at its *first* sync point — the
/// top of the first BFS level — after the root is already interned, so
/// the returned progress shows exactly the resumable work done.
#[test]
fn explorer_cancellation_stops_within_one_sync_interval() {
    static FLAG: AtomicBool = AtomicBool::new(true);
    let sys = tas_consensus_system([false, true]).system;
    let opts = ExploreOptions::default().with_cancel(CancelToken::new(&FLAG));
    match explorer::explore(&sys, &opts) {
        Err(ExplorerError::Cancelled { progress }) => {
            assert_eq!(progress.configs, 1, "only the root was interned");
            assert_eq!(progress.depth, 0, "no level was expanded");
        }
        other => panic!("expected Cancelled at the first level, got {other:?}"),
    }
}

/// An already-expired wall deadline surfaces as a wall-clock `Exhausted`
/// at the same first sync point, with the deadline's allowance as the
/// budget — the same shape a served `deadline-exceeded` error carries.
#[test]
fn explorer_expired_wall_is_a_wall_exhausted_error() {
    let sys = tas_consensus_system([false, true]).system;
    let mut opts = ExploreOptions::default();
    opts.budget.wall = Some(Wall::expires_in(Duration::ZERO));
    match explorer::explore(&sys, &opts) {
        Err(ExplorerError::Exhausted(e)) => {
            assert_eq!(e.resource, Resource::WallMs);
            assert_eq!(e.budget, 0, "the allowance was zero ms");
            assert!(e.progress.configs >= 1, "the root was interned first");
        }
        other => panic!("expected a wall Exhausted error, got {other:?}"),
    }
}

/// The sched checker polls at schedule boundaries, with the cancel check
/// gated on having finished at least one schedule — so a pre-set token
/// stops the DFS after **exactly one** schedule, and the progress
/// snapshot proves real, resumable work (nonzero steps).
#[test]
fn sched_cancellation_stops_after_exactly_one_schedule() {
    static FLAG: AtomicBool = AtomicBool::new(true);
    let mut build = fixtures::build("srsw").unwrap();
    let options = SchedOptions::default()
        .with_mode(Mode::Exhaustive { sleep_sets: false })
        .with_cancel(CancelToken::new(&FLAG));
    match wfc_sched::explore(&options, &mut build) {
        Err(SchedError::Cancelled { progress }) => {
            assert_eq!(progress.schedules, 1, "the cut lands at the next boundary");
            assert!(progress.steps > 0, "the completed schedule took steps");
        }
        other => panic!("expected Cancelled after one schedule, got {other:?}"),
    }
}

/// Same latency bound for the wall clock: an expired deadline stops the
/// sched DFS at the first boundary after one schedule has run.
#[test]
fn sched_expired_wall_stops_after_exactly_one_schedule() {
    let mut build = fixtures::build("srsw").unwrap();
    let mut options = SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets: false });
    options.budget.wall = Some(Wall::expires_in(Duration::ZERO));
    match wfc_sched::explore(&options, &mut build) {
        Err(SchedError::Exhausted(e)) => {
            assert_eq!(e.resource, Resource::WallMs);
            assert_eq!(e.progress.schedules, 1);
            assert!(e.progress.steps > 0);
        }
        other => panic!("expected a wall Exhausted error, got {other:?}"),
    }
}

/// The witness search polls the same plane: a pre-set token cancels it
/// before any candidate pair is certified.
#[test]
fn witness_search_is_cancellable() {
    static FLAG: AtomicBool = AtomicBool::new(true);
    let ty = std::sync::Arc::new(spec::canonical::test_and_set(2));
    let budget = wfc_spec::control::Budget::default();
    match spec::witness::find_witness_with(&ty, CancelToken::new(&FLAG), &budget) {
        Err(wfc_spec::AnalysisError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

/// Transparency: an armed token that never fires must not perturb a
/// completed exploration in any field, at any thread count — control
/// polling is observationally free.
#[test]
fn armed_but_unset_token_changes_nothing() {
    static FLAG: AtomicBool = AtomicBool::new(false);
    let sys = tas_consensus_system([false, true]).system;
    let plain = format!("{:?}", explorer::explore(&sys, &ExploreOptions::default()));
    for threads in [1usize, 2, 4, 8] {
        let mut opts = ExploreOptions::default()
            .with_threads(threads)
            .with_cancel(CancelToken::new(&FLAG));
        // A far-future wall exercises the wall poll without firing.
        opts.budget.wall = Some(Wall::expires_in(Duration::from_secs(3600)));
        let armed = format!("{:?}", explorer::explore(&sys, &opts));
        assert_eq!(
            plain, armed,
            "armed token perturbed run at threads={threads}"
        );
    }

    let mut build = fixtures::build("srsw").unwrap();
    let base = SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets: true });
    let plain = format!("{:?}", wfc_sched::explore(&base, &mut build));
    let mut armed_opts = base.with_cancel(CancelToken::new(&FLAG));
    armed_opts.budget.wall = Some(Wall::expires_in(Duration::from_secs(3600)));
    let armed = format!("{:?}", wfc_sched::explore(&armed_opts, &mut build));
    assert_eq!(plain, armed, "armed token perturbed the sched run");
}
