//! Acceptance tests for the readiness-driven `wfc-service` frontend:
//! connection lifecycles must leak nothing (no per-connection threads,
//! no stale handles), partial frames and stalled peers must not starve
//! real clients, overflow connections must be told `busy` before they
//! are closed, and identical pipelined requests must coalesce onto one
//! computation.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use wait_free_consensus::prelude::*;
use wfc_service::wire::write_frame;
use wfc_service::{
    serve, Client, FrameBuffer, QueryKind, QueryOptions, Request, Response, ServeConfig, WorkerGate,
};
use wfc_spec::text::format_type;

fn tas_text() -> String {
    format_type(&spec::canonical::test_and_set(2))
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Reads one response frame off a raw stream, using the same
/// incremental decoder the server does.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "peer closed before a full response frame arrived");
        fb.extend_from_slice(&buf[..n]);
        if let Some(doc) = fb.next_frame().expect("well-formed frame") {
            assert_eq!(fb.buffered(), 0, "no trailing bytes after the frame");
            return Response::from_json(&doc).expect("valid response");
        }
    }
}

/// OS-visible thread count of this test process, where the platform
/// exposes one.
fn os_thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

/// The tentpole claim: a thousand concurrent idle connections cost the
/// server zero additional threads. The thread total is fixed at startup
/// (IO loop + workers + optional reaper) and stays there no matter how
/// many sockets are parked on the poller.
#[test]
fn a_thousand_idle_connections_cost_no_extra_threads() {
    let handle = serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let fixed_threads = handle.thread_count();
    assert_eq!(fixed_threads, 3, "one IO thread + two workers, no reaper");
    let before = os_thread_count();

    let mut idle = Vec::with_capacity(1000);
    for i in 0..1000 {
        idle.push(TcpStream::connect(handle.addr()).unwrap());
        // Pace the dial loop against the accept loop so the listener
        // backlog never overflows into kernel SYN retries.
        if i % 100 == 99 {
            let floor = idle.len().saturating_sub(150);
            wait_until("accept loop to keep pace", || handle.connections() >= floor);
        }
    }
    wait_until("all 1000 connections accepted", || {
        handle.connections() >= 1000
    });

    assert_eq!(
        handle.thread_count(),
        fixed_threads,
        "thread total must be connection-count-independent"
    );
    if let (Some(before), Some(after)) = (before, os_thread_count()) {
        assert!(
            after <= before + 50,
            "1000 idle connections grew the process from {before} to {after} threads"
        );
    }

    // The server still serves while holding all of them.
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(QueryKind::Classify, &tas_text(), &QueryOptions::default())
        .unwrap()
    {
        Response::Ok { .. } => {}
        other => panic!("query under 1000 idle connections failed: {other:?}"),
    }
    drop(client);

    drop(idle);
    wait_until("connection count to drain to zero", || {
        handle.connections() == 0
    });
    handle.shutdown();
}

/// The original leak, inverted into a regression test: after N
/// connect/disconnect cycles the server's connection count returns to
/// baseline — nothing accumulates per past connection.
#[test]
fn connection_count_returns_to_baseline_after_cycles() {
    let handle = serve(ServeConfig::default()).unwrap();
    let fixed_threads = handle.thread_count();
    let tas = tas_text();
    for round in 0..20 {
        let mut batch: Vec<Client> = (0..5)
            .map(|_| Client::connect(handle.addr()).unwrap())
            .collect();
        wait_until("the round's connections to be accepted", || {
            handle.connections() >= 5
        });
        // Exercise the full request path on one of them each round, so
        // teardown covers connections with served traffic too.
        match batch[round % 5]
            .query(QueryKind::Classify, &tas, &QueryOptions::default())
            .unwrap()
        {
            Response::Ok { .. } => {}
            other => panic!("round {round}: unexpected response {other:?}"),
        }
        drop(batch);
        wait_until("the round's connections to be reaped", || {
            handle.connections() == 0
        });
        assert_eq!(handle.thread_count(), fixed_threads);
    }
    handle.shutdown();
}

/// Frames delivered one byte at a time — worst-case TCP fragmentation —
/// decode into exactly one request each, across consecutive requests on
/// the same connection.
#[test]
fn requests_survive_byte_by_byte_delivery() {
    let handle = serve(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let tas = tas_text();
    for id in [1u64, 2] {
        let request = Request {
            id,
            kind: QueryKind::Classify,
            type_text: tas.clone(),
            options: QueryOptions::default(),
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &request.to_json()).unwrap();
        for byte in bytes {
            stream.write_all(&[byte]).unwrap();
            std::thread::sleep(Duration::from_micros(300));
        }
        match read_response(&mut stream) {
            Response::Ok {
                id: rid, cached, ..
            } => {
                assert_eq!(rid, id);
                assert_eq!(cached, id > 1, "second request repeats the first");
            }
            other => panic!("trickled request {id}: unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

/// Slow-loris peers — connections that send half a header and stall —
/// park on the poller without consuming a worker, so a real client's
/// query still completes promptly even with a single worker.
#[test]
fn slow_loris_connections_do_not_starve_real_clients() {
    let handle = serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let loris: Vec<TcpStream> = (0..6)
        .map(|_| {
            let mut s = TcpStream::connect(handle.addr()).unwrap();
            s.write_all(&[0, 0]).unwrap(); // half a length prefix, then silence
            s
        })
        .collect();
    wait_until("the stalled connections to be accepted", || {
        handle.connections() >= 6
    });

    let mut client = Client::connect(handle.addr()).unwrap();
    let started = Instant::now();
    match client
        .query(QueryKind::Classify, &tas_text(), &QueryOptions::default())
        .unwrap()
    {
        Response::Ok { .. } => {}
        other => panic!("query behind slow-loris peers failed: {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stalled peers must not delay a live request"
    );
    drop(loris);
    drop(client);
    wait_until("stalled connections to be reaped", || {
        handle.connections() == 0
    });
    handle.shutdown();
}

/// A connection beyond `max_connections` is not silently dropped: it
/// receives a structured `busy` frame (id 0 — no request was read) and
/// a clean close.
#[test]
fn overflow_connections_get_a_busy_frame_then_eof() {
    let handle = serve(ServeConfig {
        max_connections: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let held: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(handle.addr()).unwrap())
        .collect();
    wait_until("the two admitted connections", || handle.connections() == 2);

    let mut extra = TcpStream::connect(handle.addr()).unwrap();
    match read_response(&mut extra) {
        Response::Busy { id, used, budget } => {
            assert_eq!(id, 0, "no request id exists yet on a rejected connection");
            assert_eq!(used, 2);
            assert_eq!(budget, 2);
        }
        other => panic!("overflow connection got {other:?}, wanted busy"),
    }
    let mut buf = [0u8; 16];
    assert_eq!(
        extra.read(&mut buf).unwrap(),
        0,
        "rejected connection must be closed after the busy frame"
    );

    // Admitted connections are unaffected, and capacity frees on close.
    drop(held);
    wait_until("capacity to free", || handle.connections() == 0);
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(QueryKind::Classify, &tas_text(), &QueryOptions::default())
        .unwrap()
    {
        Response::Ok { .. } => {}
        other => panic!("post-overflow query failed: {other:?}"),
    }
    handle.shutdown();
}

/// Identical pipelined requests coalesce: six in-flight copies of the
/// same query produce six responses but only one fresh computation.
#[test]
fn pipelined_identical_queries_coalesce_onto_one_computation() {
    let gate = WorkerGate::new();
    gate.close();
    let handle = serve(ServeConfig {
        workers: 1,
        gate: Some(gate.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    let options = QueryOptions::default();
    let ids: Vec<u64> = (0..6)
        .map(|_| {
            client
                .send(QueryKind::AccessBounds, &tas, &options)
                .unwrap()
        })
        .collect();
    gate.open();

    let mut fresh = 0usize;
    let mut renders = Vec::new();
    let mut seen = Vec::new();
    for _ in 0..6 {
        match client.recv().unwrap() {
            Response::Ok {
                id, cached, result, ..
            } => {
                seen.push(id);
                renders.push(result.render());
                if !cached {
                    fresh += 1;
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    seen.sort_unstable();
    let mut expected = ids;
    expected.sort_unstable();
    assert_eq!(
        seen, expected,
        "every pipelined id is answered exactly once"
    );
    assert_eq!(fresh, 1, "exactly one response may be a fresh computation");
    assert!(
        renders.windows(2).all(|w| w[0] == w[1]),
        "coalesced responses must be byte-identical"
    );
    handle.shutdown();
}
