//! Integration tests for the `wfc` command-line tool.

use std::io::Write;
use std::process::Command;

fn wfc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wfc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("wfc-test-{name}-{}.wfc", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const BIT: &str = "
type bit ports 2
states zero one
invocations read set
responses r0 r1 ok
delta zero * read -> zero r0
delta one * read -> one r1
delta zero * set -> one ok
delta one * set -> one ok
";

const MUTE: &str = "
type mute ports 2
states a
invocations poke
responses ok
delta a * poke -> a ok
";

#[test]
fn classify_identifies_non_trivial_types() {
    let path = write_temp("bit", BIT);
    let out = wfc(&["classify", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("case 2: non-trivial"), "{text}");
    assert!(text.contains("one-use bit recipe"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn classify_identifies_trivial_types() {
    let path = write_temp("mute", MUTE);
    let out = wfc(&["classify", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("case 1: trivial"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn witness_prints_the_normal_form() {
    let path = write_temp("bit-w", BIT);
    let out = wfc(&["witness", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Lemma 4 normal form"), "{text}");
    assert!(text.contains("k = 1"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn catalog_prints_the_table() {
    let out = wfc(&["catalog"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("test_and_set"));
    assert!(text.contains("h_m^r"));
}

#[test]
fn zoo_round_trips_through_show() {
    let out = wfc(&["zoo"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // Feed the first type back through `show`.
    let first: String = text
        .lines()
        .take_while(|l| !l.trim().is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    let path = write_temp("roundtrip", &first);
    let out = wfc(&["show", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn type_prints_canonical_text_that_round_trips() {
    let out = wfc(&["type", "test_and_set"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("type test_and_set"), "{text}");
    let path = write_temp("type-rt", &text);
    let out = wfc(&["show", path.to_str().unwrap()]);
    assert!(out.status.success());
    std::fs::remove_file(path).ok();

    let out = wfc(&["type", "no_such_type"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("known:"), "{err}");
}

#[test]
fn access_bounds_subcommand_emits_the_canonical_document() {
    let out = wfc(&["type", "test_and_set"]);
    let path = write_temp("ab", &String::from_utf8(out.stdout).unwrap());
    let out = wfc(&["access-bounds", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Same document the library produces, byte for byte.
    let direct = wfc_service::run_query_text(
        wfc_service::QueryKind::AccessBounds,
        &std::fs::read_to_string(&path).unwrap(),
        &wfc_service::QueryOptions::default(),
    )
    .unwrap()
    .render();
    assert_eq!(text.trim_end(), direct, "CLI bytes differ from library");
    std::fs::remove_file(path).ok();
}

#[test]
fn theorem5_subcommand_reports_a_holding_certificate() {
    let out = wfc(&["type", "test_and_set"]);
    let path = write_temp("t5", &String::from_utf8(out.stdout).unwrap());
    let out = wfc(&["theorem5", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = wfc_obs::json::parse(String::from_utf8(out.stdout).unwrap().trim()).unwrap();
    assert_eq!(doc.get("holds"), Some(&wfc_obs::json::Json::Bool(true)));
    assert!(doc.get("one_use_bits").is_some());
    std::fs::remove_file(path).ok();
}

#[test]
fn query_without_addr_is_an_error() {
    let path = write_temp("noaddr", BIT);
    let out = wfc(&["query", "classify", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--addr"), "{err}");
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_usage_exits_with_two() {
    let out = wfc(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_reports_error() {
    let out = wfc(&["classify", "/nonexistent/definitely-not-here.wfc"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn parse_errors_carry_line_numbers() {
    let path = write_temp("bad", "type t ports 1\nwhatever");
    let out = wfc(&["show", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2"), "{err}");
    std::fs::remove_file(path).ok();
}
