//! Integration tests for the universality of consensus (paper §2.3):
//! the universal construction implements arbitrary types, wait-free and
//! linearizable, across the zoo.

use std::sync::Arc;

use wait_free_consensus::prelude::*;
use wfc_explorer::linearizability::is_linearizable;
use wfc_runtime::{run_threads, EventLog};
use wfc_spec::canonical;

/// Drives a universal object of `ty` with `rounds` operations per port
/// under real concurrency and checks the recorded history.
fn stress_universal(ty: Arc<wfc_spec::FiniteType>, init_name: &str, ops: &[&str], rounds: usize) {
    let init = ty.state_id(init_name).unwrap();
    for _ in 0..5 {
        let object = consensus::UniversalObject::new(Arc::clone(&ty), init, 512);
        let log = EventLog::new();
        run_threads(
            object
                .ports()
                .into_iter()
                .enumerate()
                .map(|(k, mut handle)| {
                    let log = &log;
                    let ty = Arc::clone(&ty);
                    let ops: Vec<String> = ops.iter().map(|s| s.to_string()).collect();
                    move || {
                        for j in 0..rounds {
                            let name = &ops[(k + j) % ops.len()];
                            let inv = ty.invocation_id(name).unwrap();
                            let t0 = log.stamp();
                            let resp = handle.invoke(inv);
                            let t1 = log.stamp();
                            log.record(handle.port(), inv, resp, t0, t1);
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );
        let history = log.take_history();
        assert!(
            is_linearizable(&ty, init, &history),
            "{}: {history:?}",
            ty.name()
        );
    }
}

#[test]
fn universal_stack_linearizes() {
    stress_universal(
        Arc::new(canonical::stack(3, 2, 3)),
        "⟨⟩",
        &["push0", "push1", "pop"],
        3,
    );
}

#[test]
fn universal_swap_linearizes() {
    stress_universal(
        Arc::new(canonical::swap(3, 3)),
        "v0",
        &["swap1", "swap2", "swap0"],
        3,
    );
}

#[test]
fn universal_sticky_bit_linearizes() {
    stress_universal(
        Arc::new(canonical::sticky_bit(4)),
        "⊥",
        &["write0", "write1", "read"],
        2,
    );
}

/// The universal construction accepts nondeterministic types by
/// determinising the replay (first outcome); the result is still
/// linearizable because the spec permits the chosen outcomes.
#[test]
fn universal_one_use_bit_linearizes() {
    stress_universal(
        Arc::new(canonical::one_use_bit()),
        "UNSET",
        &["read", "write"],
        2,
    );
}

/// A universal object of the consensus type *is* a consensus object:
/// agreement across racing proposers, every time.
#[test]
fn universal_consensus_agrees() {
    let ty = Arc::new(canonical::consensus(4));
    let init = ty.state_id("⊥").unwrap();
    for _ in 0..20 {
        let object = consensus::UniversalObject::new(Arc::clone(&ty), init, 64);
        let decisions = run_threads(
            object
                .ports()
                .into_iter()
                .enumerate()
                .map(|(k, mut handle)| {
                    let _ty = Arc::clone(&ty);
                    move || handle.invoke_named(if k % 2 == 0 { "propose0" } else { "propose1" })
                })
                .collect::<Vec<_>>(),
        );
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated: {decisions:?}"
        );
    }
}
