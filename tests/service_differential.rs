//! Acceptance tests for `wfc-service`, in the spirit of
//! `parallel_differential.rs`: a served analysis must be **byte-identical**
//! to the direct library call, at any worker count, from any cache tier —
//! and the server's backpressure, budget and deadline behavior must be
//! structured, not stringly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wait_free_consensus::prelude::*;
use wfc_service::{serve, Client, QueryKind, QueryOptions, Response, ServeConfig, WorkerGate};
use wfc_spec::text::format_type;

fn tas_text() -> String {
    format_type(&spec::canonical::test_and_set(2))
}

fn local_config() -> ServeConfig {
    ServeConfig::default()
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The headline acceptance criterion: for **every** query kind, `wfc
/// query` against a running server returns the same bytes as the direct
/// library call — with 1 worker and with 4.
#[test]
fn served_results_are_byte_identical_to_direct_calls() {
    let tas = tas_text();
    let options = QueryOptions::default();
    for workers in [1usize, 4] {
        let handle = serve(ServeConfig {
            workers,
            ..local_config()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        // `sched` takes a fixture spec and `scenario` a scenario file,
        // not a type text; each gets its own differential test below.
        // `stats` is live introspection with no direct-call counterpart;
        // `tests/service_stats.rs` covers it.
        for kind in QueryKind::ALL
            .into_iter()
            .filter(|k| !matches!(k, QueryKind::Sched | QueryKind::Scenario | QueryKind::Stats))
        {
            let direct = wfc_service::run_query_text(kind, &tas, &options)
                .unwrap_or_else(|e| panic!("direct {kind} failed: {e}"))
                .render();
            match client.query(kind, &tas, &options).unwrap() {
                Response::Ok { cached, result, .. } => {
                    assert!(!cached, "{kind}: first query must compute fresh");
                    assert_eq!(
                        result.render(),
                        direct,
                        "{kind}: served bytes differ from direct call at {workers} workers"
                    );
                }
                other => panic!("{kind}: unexpected response {other:?}"),
            }
            // And again, now from the cache: still the same bytes.
            match client.query(kind, &tas, &options).unwrap() {
                Response::Ok { cached, result, .. } => {
                    assert!(cached, "{kind}: repeat query must hit the cache");
                    assert_eq!(result.render(), direct, "{kind}: cached bytes differ");
                }
                other => panic!("{kind}: unexpected repeat response {other:?}"),
            }
        }
        handle.shutdown();
    }
}

/// Responses are matched by id, so a client may pipeline requests and
/// collect out-of-order completions.
#[test]
fn pipelined_requests_complete_and_match_by_id() {
    let handle = serve(ServeConfig {
        workers: 2,
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    let options = QueryOptions::default();
    let mut expected: Vec<u64> = Vec::new();
    for kind in [
        QueryKind::Classify,
        QueryKind::Witness,
        QueryKind::AccessBounds,
    ] {
        expected.push(client.send(kind, &tas, &options).unwrap());
    }
    let mut seen = Vec::new();
    for _ in 0..expected.len() {
        match client.recv().unwrap() {
            Response::Ok { id, .. } => seen.push(id),
            other => panic!("unexpected response {other:?}"),
        }
    }
    seen.sort_unstable();
    expected.sort_unstable();
    assert_eq!(seen, expected);
    handle.shutdown();
}

/// The bounded queue rejects overflow with an explicit `busy` response
/// carrying the observed depth and the capacity — it never buffers
/// without bound. The worker gate makes the saturation deterministic.
#[test]
fn saturated_queue_returns_busy_with_quantities() {
    let gate = WorkerGate::new();
    gate.close();
    let handle = serve(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        gate: Some(Arc::clone(&gate)),
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    let options = QueryOptions::default();

    // First request: dequeued, then held at the gate.
    let id1 = client.send(QueryKind::Classify, &tas, &options).unwrap();
    wait_until("worker to hold at the gate", || gate.held() == 1);
    // Two more fill the queue; distinct budgets dodge the result cache.
    let id2 = client
        .send(QueryKind::Classify, &tas, &options.with_max_configs(1001))
        .unwrap();
    let id3 = client
        .send(QueryKind::Classify, &tas, &options.with_max_configs(1002))
        .unwrap();
    // Queue enqueues are asynchronous to this thread; the fourth send
    // must observe a full queue, which it does because one reader thread
    // handles this connection's frames strictly in order.
    let id4 = client
        .send(QueryKind::Classify, &tas, &options.with_max_configs(1003))
        .unwrap();

    // The busy rejection is written by the reader thread immediately,
    // while everything else is stuck behind the closed gate.
    match client.recv().unwrap() {
        Response::Busy { id, used, budget } => {
            assert_eq!(id, id4);
            assert_eq!(budget, 2, "capacity must be reported");
            assert_eq!(used, 2, "observed depth must be reported");
        }
        other => panic!("expected busy, got {other:?}"),
    }

    gate.open();
    let mut completed = Vec::new();
    for _ in 0..3 {
        match client.recv().unwrap() {
            Response::Ok { id, .. } => completed.push(id),
            other => panic!("unexpected response {other:?}"),
        }
    }
    completed.sort_unstable();
    let mut expected = vec![id1, id2, id3];
    expected.sort_unstable();
    assert_eq!(completed, expected);
    handle.shutdown();
}

/// Budget failures keep `control::Exhausted`'s quantities all the way
/// across the wire — `budget`, `used`, the exhausted `resource`, and a
/// `partial` progress snapshot as structured data, not prose.
#[test]
fn budget_errors_carry_quantities_on_the_wire() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    let options = QueryOptions::default().with_max_configs(3);
    let direct = wfc_service::run_query_text(QueryKind::VerifyConsensus, &tas, &options)
        .expect_err("a 3-config budget cannot fit the TAS protocol");
    let (direct_budget, direct_used) = direct.budget_used().unwrap();
    match client
        .query(QueryKind::VerifyConsensus, &tas, &options)
        .unwrap()
    {
        Response::Error {
            code,
            budget,
            used,
            resource,
            partial,
            ..
        } => {
            assert_eq!(code, "budget-exceeded");
            assert_eq!(budget, Some(direct_budget));
            assert_eq!(used, Some(direct_used));
            assert_eq!(budget, Some(3));
            // Exact accounting: the budget fires at exactly one config
            // over the limit, not at some batch-shaped overshoot.
            assert_eq!(used, Some(4));
            assert_eq!(resource.as_deref(), Some("configs"));
            let partial = partial.expect("budget errors carry partial progress");
            assert_eq!(partial.configs, 4);
        }
        other => panic!("expected budget error, got {other:?}"),
    }
    handle.shutdown();
}

/// Unsupported and malformed queries come back as structured errors with
/// stable codes.
#[test]
fn structured_errors_for_bad_inputs() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let options = QueryOptions::default();
    match client
        .query(QueryKind::Classify, "not a type", &options)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, "parse-error"),
        other => panic!("unexpected {other:?}"),
    }
    let one_use = format_type(&spec::canonical::one_use_bit());
    match client
        .query(QueryKind::AccessBounds, &one_use, &options)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, "unsupported"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

/// The `sched` query kind: a served model-checking run returns the same
/// bytes as the direct `SchedSpec` call, a repeat is served from cache,
/// and spellings that resolve to the same canonical spec share a cache
/// line.
#[test]
fn served_sched_results_are_byte_identical_to_direct_calls() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let options = QueryOptions::default();
    // The broken fixture exercises the richest document (a
    // counterexample object with a replayable schedule).
    let spec_text = "broken mode=dfs";
    let direct = wfc_service::run_query_text(QueryKind::Sched, spec_text, &options)
        .expect("direct sched query")
        .render();
    assert!(direct.contains("\"verdict\":\"violation\""), "{direct}");
    match client.query(QueryKind::Sched, spec_text, &options).unwrap() {
        Response::Ok { cached, result, .. } => {
            assert!(!cached, "first sched query must compute fresh");
            assert_eq!(result.render(), direct, "served sched bytes differ");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // A different spelling of the same resolved spec hits the cache:
    // the key hashes the canonical text, not the submitted text.
    let respelled = "broken sleep=on mode=dfs";
    match client.query(QueryKind::Sched, respelled, &options).unwrap() {
        Response::Ok { cached, result, .. } => {
            assert!(cached, "equal canonical specs must share a cache line");
            assert_eq!(result.render(), direct, "cached sched bytes differ");
        }
        other => panic!("unexpected repeat response {other:?}"),
    }
    // Spelling the *budgets* out at their defaults resolves to the same
    // canonical text too — budget knobs are part of the spec, and equal
    // resolved budgets must share the line, however they were written.
    let with_budgets = "broken budget=200000 steps=10000 mode=dfs";
    match client
        .query(QueryKind::Sched, with_budgets, &options)
        .unwrap()
    {
        Response::Ok { cached, result, .. } => {
            assert!(cached, "equal resolved budgets must share a cache line");
            assert_eq!(result.render(), direct, "cached sched bytes differ");
        }
        other => panic!("unexpected repeat response {other:?}"),
    }
    handle.shutdown();
}

/// The `scenario` query kind: a served scenario file returns the same
/// bytes as the direct `run_scenario_text` call, a repeat is served
/// from cache, and a respelled-but-canonically-equal file (alias
/// spelling, comments, implicit defaults, reordered words) lands on the
/// same cache line.
#[test]
fn served_scenario_results_are_byte_identical_to_direct_calls() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let options = QueryOptions::default();
    let text = "\
scenario tas-check
type builtin test_and_set
query classify expect=non-trivial
query witness expect=non-trivial
";
    let direct = wfc_service::run_scenario_text(text, &options)
        .expect("direct scenario run")
        .render();
    assert!(
        direct.contains("\"schema\":\"wfc-scenario/v1\""),
        "{direct}"
    );
    assert!(direct.contains("\"pass\":true"), "{direct}");
    match client.query(QueryKind::Scenario, text, &options).unwrap() {
        Response::Ok { cached, result, .. } => {
            assert!(!cached, "first scenario query must compute fresh");
            assert_eq!(result.render(), direct, "served scenario bytes differ");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // A respelled file — alias `tas`, comments, blank lines, the same
    // queries — canonicalizes identically, so it must hit the cache and
    // return the exact same document.
    let respelled = "\
# same scenario, spelled differently
scenario tas-check

type builtin tas
query classify expect=non-trivial
query witness expect=non-trivial
";
    match client
        .query(QueryKind::Scenario, respelled, &options)
        .unwrap()
    {
        Response::Ok { cached, result, .. } => {
            assert!(cached, "equal canonical scenarios must share a cache line");
            assert_eq!(result.render(), direct, "cached scenario bytes differ");
        }
        other => panic!("unexpected repeat response {other:?}"),
    }
    handle.shutdown();
}

/// Malformed scenario files come back as structured `parse-error`
/// frames whose message carries the parser's line/column diagnostic —
/// for each class of error the language rejects: unknown query kinds,
/// bad budget words, non-deterministic FSM transitions, and unreachable
/// FSM states.
#[test]
fn scenario_parse_errors_are_structured_on_the_wire() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let options = QueryOptions::default();
    let cases: &[(&str, &str, &str)] = &[
        (
            "unknown query kind",
            "scenario b\ntype builtin tas\nquery frobnicate\n",
            "unknown query kind",
        ),
        (
            "bad budget word",
            "scenario b\ntype builtin tas\nbudget zoom=3\nquery classify\n",
            "unknown budget key",
        ),
        (
            "non-deterministic fsm",
            "scenario b\ntype fsm\ntype t ports 1\nstates s u\ninvocations i\n\
             responses r\ndelta s 0 i -> u r\ndelta u 0 i -> u r\n\
             delta s * i -> s r\nend\nquery classify\n",
            "non-deterministic",
        ),
        (
            "unreachable fsm state",
            "scenario b\ntype fsm\ntype t ports 1\nstates s orphan\ninvocations i\n\
             responses r\ndelta s 0 i -> s r\ndelta orphan 0 i -> orphan r\n\
             end\nquery classify\n",
            "unreachable",
        ),
    ];
    for (what, text, needle) in cases {
        match client.query(QueryKind::Scenario, text, &options).unwrap() {
            Response::Error { code, message, .. } => {
                assert_eq!(code, "parse-error", "{what}");
                assert!(message.contains(needle), "{what}: {message}");
                assert!(message.contains("line "), "{what} names a line: {message}");
                assert!(
                    message.contains("column "),
                    "{what} names a column: {message}"
                );
            }
            other => panic!("{what}: unexpected {other:?}"),
        }
    }
    handle.shutdown();
}

/// Bad sched specs come back as structured `parse-error`s, and sched
/// budget overruns keep their quantities on the wire like every other
/// budget failure.
#[test]
fn sched_errors_are_structured_on_the_wire() {
    let handle = serve(local_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let options = QueryOptions::default();
    match client
        .query(QueryKind::Sched, "nonesuch mode=dfs", &options)
        .unwrap()
    {
        Response::Error { code, message, .. } => {
            assert_eq!(code, "parse-error");
            assert!(message.contains("nonesuch"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    match client
        .query(QueryKind::Sched, "srsw sleep=off budget=5", &options)
        .unwrap()
    {
        Response::Error {
            code, budget, used, ..
        } => {
            assert_eq!(code, "budget-exceeded");
            assert_eq!(budget, Some(5));
            assert_eq!(used, Some(5));
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

/// The disk tier makes results outlive the server: a fresh instance on
/// the same cache directory serves the same bytes without recomputing.
#[test]
fn disk_cache_survives_server_restart() {
    let dir = std::env::temp_dir().join(format!("wfc-svc-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tas = tas_text();
    let options = QueryOptions::default();

    let first = {
        let handle = serve(ServeConfig {
            cache_dir: Some(dir.clone()),
            ..local_config()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let result = match client
            .query(QueryKind::AccessBounds, &tas, &options)
            .unwrap()
        {
            Response::Ok { cached, result, .. } => {
                assert!(!cached);
                result.render()
            }
            other => panic!("unexpected {other:?}"),
        };
        handle.shutdown();
        result
    };

    let handle = serve(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(QueryKind::AccessBounds, &tas, &options)
        .unwrap()
    {
        Response::Ok { cached, result, .. } => {
            assert!(cached, "restart must serve from disk, not recompute");
            assert_eq!(result.render(), first, "disk tier changed the bytes");
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replication keeps the byte-identity contract across nodes: a query
/// computed on node A and replicated to node B is served from B's
/// cache with exactly the bytes of the direct engine call.
#[test]
fn replicated_results_are_byte_identical_to_direct_calls() {
    use wfc_service::ReplConfig;
    let base = std::env::temp_dir().join(format!("wfc-svc-diff-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // Two nodes on pre-reserved loopback ports.
    let addrs: Vec<String> = {
        let listeners: Vec<std::net::TcpListener> = (0..2)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect()
    };
    let node = |i: usize| ServeConfig {
        addr: addrs[i].clone(),
        repl: Some(ReplConfig {
            node_id: i as u64 + 1,
            peers: vec![(2 - i as u64, addrs[1 - i].clone())],
            data_dir: base.join(format!("node{i}")),
            compact_threshold: 1024,
        }),
        ..local_config()
    };
    let a = serve(node(0)).unwrap();
    let b = serve(node(1)).unwrap();

    let tas = tas_text();
    let options = QueryOptions::default();
    let direct = wfc_service::run_query_text(QueryKind::Theorem5, &tas, &options)
        .unwrap()
        .render();
    let mut client_a = Client::connect_retry(addrs[0].as_str(), Duration::from_secs(10)).unwrap();
    match client_a.query(QueryKind::Theorem5, &tas, &options).unwrap() {
        Response::Ok { cached, result, .. } => {
            assert!(!cached, "node A computes fresh");
            assert_eq!(result.render(), direct, "node A bytes differ from direct");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Wait for node B to *apply* the replicated entry (visible in its
    // stats), then query it: the answer must be a cache hit — the
    // replicated entry, not B recomputing — with the direct bytes.
    let mut client_b = Client::connect_retry(addrs[1].as_str(), Duration::from_secs(10)).unwrap();
    wait_until("replication to node B", || {
        match client_b.query(QueryKind::Stats, "", &options).unwrap() {
            Response::Ok { result, .. } => result
                .get("repl")
                .and_then(|r| r.get("applied"))
                .and_then(|a| a.as_u64())
                .unwrap_or(0)
                .ge(&1),
            other => panic!("unexpected stats reply {other:?}"),
        }
    });
    match client_b.query(QueryKind::Theorem5, &tas, &options).unwrap() {
        Response::Ok { cached, result, .. } => {
            assert!(
                cached,
                "node B must serve the replicated entry, not recompute"
            );
            assert_eq!(result.render(), direct, "node B bytes differ from direct");
        }
        other => panic!("unexpected {other:?}"),
    }
    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// The reaper turns an expired per-request deadline into a structured
/// `deadline-exceeded` error: the deadline as `budget`, the elapsed
/// milliseconds as `used`, `wall-ms` as the resource, and a `partial`
/// progress snapshot of the exploration's work before the cut. The gate
/// holds the worker past its deadline to make the expiry deterministic.
#[test]
fn deadline_expiry_cancels_the_exploration() {
    let gate = WorkerGate::new();
    gate.close();
    let handle = serve(ServeConfig {
        workers: 1,
        request_timeout: Some(Duration::from_millis(50)),
        gate: Some(Arc::clone(&gate)),
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    client
        .send(QueryKind::VerifyConsensus, &tas, &QueryOptions::default())
        .unwrap();
    wait_until("worker to hold at the gate", || gate.held() == 1);
    // The deadline was armed before the gate; let it lapse, give the
    // reaper (10 ms tick) time to flag the worker, then release.
    std::thread::sleep(Duration::from_millis(150));
    gate.open();
    match client.recv().unwrap() {
        Response::Error {
            code,
            budget,
            used,
            resource,
            partial,
            ..
        } => {
            assert_eq!(code, "deadline-exceeded");
            assert_eq!(budget, Some(50), "budget is the deadline in ms");
            assert!(used.unwrap() >= 50, "used is the elapsed ms: {used:?}");
            assert_eq!(resource.as_deref(), Some("wall-ms"));
            assert!(partial.is_some(), "deadline errors carry partial progress");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    handle.shutdown();
}

/// The reaper reaches **sched** explorations too: the model checker
/// polls the same control plane at every schedule boundary, so an
/// in-flight DFS whose deadline lapses stops after the schedule it is
/// on and reports how far it got — the `partial` snapshot shows real,
/// resumable progress (exactly the one schedule that ran before the
/// first boundary poll saw the flag).
#[test]
fn deadline_expiry_cancels_sched_exploration_mid_run() {
    let gate = WorkerGate::new();
    gate.close();
    let handle = serve(ServeConfig {
        workers: 1,
        request_timeout: Some(Duration::from_millis(50)),
        gate: Some(Arc::clone(&gate)),
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .send(QueryKind::Sched, "srsw sleep=off", &QueryOptions::default())
        .unwrap();
    wait_until("worker to hold at the gate", || gate.held() == 1);
    std::thread::sleep(Duration::from_millis(150));
    gate.open();
    match client.recv().unwrap() {
        Response::Error {
            code,
            budget,
            used,
            resource,
            partial,
            ..
        } => {
            assert_eq!(code, "deadline-exceeded");
            assert_eq!(budget, Some(50));
            assert!(used.unwrap() >= 50, "{used:?}");
            assert_eq!(resource.as_deref(), Some("wall-ms"));
            let partial = partial.expect("sched deadline errors carry partial progress");
            assert_eq!(
                partial.schedules, 1,
                "the cut lands at the first boundary after the flag"
            );
            assert!(partial.steps > 0, "the completed schedule took steps");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    handle.shutdown();
}
