//! Acceptance tests for live service introspection: the `stats` query
//! must answer inline (never queued, batched, coalesced, or cached)
//! with a schema-valid `wfc-stats/v1` snapshot; the flight-recorder
//! ring must wrap and keep the newest records; per-request stage
//! stamps must be monotone; and with observability off the whole
//! subsystem must cost nothing (empty registry, no ring allocation).
//!
//! The tests in this binary toggle the process-global observability
//! flag, so they serialize on one mutex and restore the flag on exit.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use wfc_obs::json::Json;
use wfc_service::{
    serve, validate_stats_json, Client, QueryKind, QueryOptions, Response, ServeConfig, WorkerGate,
    STATS_SCHEMA,
};
use wfc_spec::stage::Stage;
use wfc_spec::text::format_type;

static OBS_FLAG: Mutex<()> = Mutex::new(());

/// Holds the obs-flag mutex, forces the flag to `on`, drains the
/// global registry, and restores the previous flag state on drop.
struct ObsSession {
    _guard: MutexGuard<'static, ()>,
    was_on: bool,
}

impl ObsSession {
    fn with_obs(on: bool) -> ObsSession {
        let guard = OBS_FLAG.lock().unwrap_or_else(|e| e.into_inner());
        let was_on = wfc_obs::enabled();
        wfc_obs::set_enabled(true);
        // `collect` resets the registry, isolating this test from
        // whatever counters earlier tests in this process recorded.
        let _ = wfc_obs::report::RunReport::collect("drain");
        wfc_obs::set_enabled(on);
        ObsSession {
            _guard: guard,
            was_on,
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        wfc_obs::set_enabled(self.was_on);
    }
}

fn tas_text() -> String {
    format_type(&wfc_spec::canonical::test_and_set(2))
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One `stats` round trip; asserts the reply is an uncached `Ok`
/// carrying a schema-valid snapshot.
fn fetch_stats(client: &mut Client) -> Json {
    match client
        .query(QueryKind::Stats, "", &QueryOptions::default())
        .expect("stats round trip")
    {
        Response::Ok { cached, result, .. } => {
            assert!(!cached, "stats must never be served from the cache");
            validate_stats_json(&result).expect("schema-valid stats snapshot");
            result
        }
        other => panic!("stats reply was not Ok: {other:?}"),
    }
}

fn u64_at(doc: &Json, path: &[&str]) -> u64 {
    let mut cursor = doc;
    for key in path {
        cursor = cursor.get(key).unwrap_or(&Json::Null);
    }
    cursor.as_u64().unwrap_or_else(|| {
        panic!("expected u64 at {path:?}");
    })
}

#[test]
fn stats_snapshots_are_valid_distinct_and_fill_stage_histograms() {
    let _obs = ObsSession::with_obs(true);
    let handle = serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    for _ in 0..5 {
        let reply = client
            .query(QueryKind::Classify, &tas, &QueryOptions::default())
            .unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
    }

    let first = fetch_stats(&mut client);
    let second = fetch_stats(&mut client);
    assert_eq!(
        first.get("schema").and_then(Json::as_str),
        Some(STATS_SCHEMA)
    );
    // Back-to-back identical stats requests must not coalesce into one
    // answer: each snapshot is taken fresh, so time and the request
    // counter both advance between them.
    assert!(
        u64_at(&second, &["uptime_us"]) > u64_at(&first, &["uptime_us"]),
        "each stats request takes a fresh snapshot"
    );
    assert!(
        u64_at(&second, &["server", "requests_accepted"])
            > u64_at(&first, &["server", "requests_accepted"]),
        "the first stats request itself is counted by the second"
    );

    // The classify round trips above were finalized before the stats
    // frame was even decoded (same IO thread), so every interval
    // histogram has samples and the telescoping identity holds.
    let stages = second.get("stages").and_then(Json::as_obj).unwrap();
    let mut interval_mean_sum = 0;
    let mut total_mean = 0;
    for name in [
        "decode", "admit", "batch", "queue", "engine", "respond", "flush", "total",
    ] {
        let hist = stages
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
            .unwrap_or_else(|| panic!("stage histogram `{name}` missing"));
        assert!(u64_at(hist, &["count"]) >= 5, "stage `{name}` has samples");
        if name == "total" {
            total_mean = u64_at(hist, &["mean"]);
        } else {
            interval_mean_sum += u64_at(hist, &["mean"]);
        }
    }
    // The seven intervals telescope over accepted → bytes-flushed, so
    // their means sum back to the total mean up to integer truncation
    // (≤ 1µs per interval) and the handful of in-flight traces that
    // appear in some histograms but not yet others.
    assert!(
        interval_mean_sum <= total_mean + 7
            || interval_mean_sum.abs_diff(total_mean) * 5 <= total_mean,
        "interval means ({interval_mean_sum}µs) inconsistent with total mean ({total_mean}µs)"
    );

    handle.shutdown();
}

#[test]
fn stats_answers_inline_while_every_worker_is_held() {
    let _obs = ObsSession::with_obs(true);
    let gate = WorkerGate::new();
    gate.close();
    let handle = serve(ServeConfig {
        workers: 2,
        gate: Some(gate.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let classify_id = client
        .send(QueryKind::Classify, &tas_text(), &QueryOptions::default())
        .unwrap();
    let stats_id = client
        .send(QueryKind::Stats, "", &QueryOptions::default())
        .unwrap();

    // With both workers parked at the gate, the classify cannot finish;
    // the stats response arriving first proves it bypassed the batch,
    // queue, and worker pool entirely.
    let reply = client.recv().expect("stats response with workers held");
    assert_eq!(reply.id(), stats_id, "stats overtook the gated classify");
    let Response::Ok { cached, result, .. } = reply else {
        panic!("stats reply was not Ok");
    };
    assert!(!cached);
    validate_stats_json(&result).unwrap();

    gate.open();
    let reply = client.recv().expect("classify response after the gate");
    assert_eq!(reply.id(), classify_id);
    handle.shutdown();
}

#[test]
fn flight_ring_wraps_and_keeps_the_newest_monotone_records() {
    let _obs = ObsSession::with_obs(true);
    let handle = serve(ServeConfig {
        workers: 2,
        flight_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let tas = tas_text();
    for _ in 0..12 {
        client
            .query(QueryKind::Classify, &tas, &QueryOptions::default())
            .unwrap();
    }

    // Traces finalize when their response bytes clear the socket, a
    // hair after the client reads them; poll until the ring has seen
    // all twelve.
    let mut snapshot = Json::Null;
    wait_until("twelve finalized flight records", || {
        snapshot = fetch_stats(&mut client);
        u64_at(&snapshot, &["flight", "recorded"]) >= 12
    });
    let flight = snapshot.get("flight").unwrap();
    assert_eq!(u64_at(flight, &["capacity"]), 4);
    let records = flight.get("records").and_then(Json::as_arr).unwrap();
    assert!(
        !records.is_empty() && records.len() <= 4,
        "ring overwrote, never grew"
    );

    let ids: Vec<u64> = records.iter().map(|r| u64_at(r, &["id"])).collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "records sorted by trace id"
    );
    assert!(
        *ids.last().unwrap() >= 11,
        "the ring keeps the newest records (tail id {} of ≥ 12)",
        ids.last().unwrap()
    );

    // Stage stamps inside every surviving record walk forward in
    // pipeline order: each is elapsed-µs since accept, so a later
    // stage may never report an earlier time.
    for record in records {
        let stages = record.get("stages").and_then(Json::as_obj).unwrap();
        let mut last = 0;
        for stage in Stage::ALL {
            if let Some((_, v)) = stages.iter().find(|(n, _)| n == stage.as_str()) {
                let us = v.as_u64().unwrap();
                assert!(
                    us >= last,
                    "stage `{}` regressed in {record:?}",
                    stage.as_str()
                );
                last = us;
            }
        }
    }
    handle.shutdown();
}

#[test]
fn disabled_observability_costs_nothing() {
    let _obs = ObsSession::with_obs(false);
    let handle = serve(ServeConfig {
        workers: 2,
        flight_capacity: 256,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..3 {
        client
            .query(QueryKind::Classify, &tas_text(), &QueryOptions::default())
            .unwrap();
    }

    let doc = fetch_stats(&mut client);
    assert_eq!(
        doc.get("server").unwrap().get("obs_enabled"),
        Some(&Json::Bool(false))
    );
    // Zero-cost-when-off: no metric was recorded anywhere, no trace
    // was allocated, and the ring itself was never even created
    // (capacity 0 despite the configured 256).
    for section in ["counters", "gauges", "histograms", "stages"] {
        assert_eq!(
            doc.get(section).and_then(Json::as_obj).map(<[_]>::len),
            Some(0),
            "`{section}` must be empty with observability off"
        );
    }
    assert_eq!(u64_at(&doc, &["flight", "capacity"]), 0);
    assert_eq!(u64_at(&doc, &["flight", "recorded"]), 0);
    assert_eq!(
        doc.get("flight")
            .unwrap()
            .get("records")
            .and_then(Json::as_arr)
            .map(<[_]>::len),
        Some(0)
    );
    // The server still counts what it needs for its own accounting.
    assert!(u64_at(&doc, &["server", "requests_accepted"]) >= 4);
    handle.shutdown();
}

/// Scenario queries ride the existing pipeline end to end: `wfc top`
/// and the stats surface need no changes for them, and with
/// observability off a served scenario adds **zero** registry entries —
/// the same zero-cost-when-off contract every other kind honors.
#[test]
fn scenario_queries_add_no_registry_entries_with_obs_off() {
    let _obs = ObsSession::with_obs(false);
    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let text = "\
scenario stats-probe
type builtin tas
query classify expect=non-trivial
query witness expect=non-trivial
";
    match client
        .query(QueryKind::Scenario, text, &QueryOptions::default())
        .unwrap()
    {
        Response::Ok { result, .. } => {
            assert_eq!(result.get("pass"), Some(&Json::Bool(true)));
        }
        other => panic!("unexpected scenario response {other:?}"),
    }
    let doc = fetch_stats(&mut client);
    for section in ["counters", "gauges", "histograms", "stages"] {
        assert_eq!(
            doc.get(section).and_then(Json::as_obj).map(<[_]>::len),
            Some(0),
            "`{section}` must stay empty after a scenario query with obs off"
        );
    }
    handle.shutdown();
}
