//! # `wait-free-consensus`
//!
//! A production-quality Rust reproduction of
//!
//! > Rida A. Bazzi, Gil Neiger, and Gary L. Peterson.
//! > *On the Use of Registers in Achieving Wait-Free Consensus.*
//! > PODC 1994.
//!
//! The paper shows that read/write registers add **no consensus power**
//! to deterministic concurrent data types (nor to any type that can
//! already solve 2-process consensus): Jayanti's hierarchies `h_m` and
//! `h_m^r` coincide on those classes. The proof is constructive, and this
//! crate makes every construction executable and machine-checked:
//!
//! * the **one-use bit** `T_{1u}` (Section 3) — [`core::atomic_one_use_bit`],
//!   with use-at-most-once enforced by move semantics;
//! * **access bounds** via execution trees (Section 4.2) —
//!   [`core::access_bounds`] computes the paper's `D`, `r_b`, `w_b`
//!   exactly by exhaustive exploration;
//! * the **`r·(w+1)` one-use-bit array** implementing a bounded register
//!   bit (Section 4.3) — [`core::bounded_bit`];
//! * **one-use bits from any non-trivial deterministic type**
//!   (Sections 5.1–5.2, Lemmas 2–4) — [`core::OneUseRecipe`], built on the
//!   minimal non-trivial pair search in [`spec::witness`];
//! * **one-use bits from 2-process consensus** (Section 5.3) —
//!   [`core::one_use_from_consensus`];
//! * **Theorem 5**, the register-elimination compiler —
//!   [`core::eliminate_registers`] / [`core::check_theorem5`] transform a
//!   register-using consensus protocol into a register-free one and
//!   re-verify it over every schedule and input vector.
//!
//! The substrates are full subsystems in their own right: a finite-type
//! formalism ([`spec`]), an exhaustive model checker with linearizability
//! and valency analyses ([`explorer`]), the classical register
//! construction chain ([`registers`]), wait-free consensus protocols and
//! Herlihy's universal construction ([`consensus`]), a real-thread
//! runtime harness ([`runtime`]), a deterministic schedule-exploration
//! model checker for the concrete register implementations ([`sched`]),
//! and the certified hierarchy catalog ([`hierarchy`]).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use wait_free_consensus::prelude::*;
//!
//! // Classify a type per Theorem 5 and eliminate registers from a
//! // consensus protocol that uses it.
//! let tas = Arc::new(spec::canonical::test_and_set(2));
//! let recipe = core::OneUseRecipe::from_type(&tas)?;
//! let cert = core::check_theorem5(
//!     2,
//!     |i| consensus::tas_consensus_system([i[0], i[1]]),
//!     &core::OneUseSource::Recipe(recipe),
//!     &explorer::ExploreOptions::default(),
//! )?;
//! assert!(cert.holds()); // registers eliminated, correctness preserved
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable walkthroughs and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every experiment.

#![warn(missing_docs)]

/// The paper's contributions: one-use bits, access bounds, the bounded-bit
/// array, witness-derived bits, and the Theorem 5 compiler (`wfc-core`).
pub use wfc_core as core;

/// Wait-free consensus protocols, spec-level and native, plus Herlihy's
/// universal construction (`wfc-consensus`).
pub use wfc_consensus as consensus;

/// The exhaustive model checker: exploration, linearizability, valency
/// (`wfc-explorer`).
pub use wfc_explorer as explorer;

/// Certified hierarchy catalog and robustness audit (`wfc-hierarchy`).
pub use wfc_hierarchy as hierarchy;

/// The register construction chain of Section 4.1 (`wfc-registers`).
pub use wfc_registers as registers;

/// Real-thread harness, history recording, spec-backed runtime objects
/// (`wfc-runtime`).
pub use wfc_runtime as runtime;

/// The deterministic schedule-exploration model checker for the
/// concrete register implementations (`wfc-sched`).
pub use wfc_sched as sched;

/// The analysis server and client: the `wfc-svc/v1` wire protocol, the
/// content-hash result cache, and the worker pool (`wfc-service`).
pub use wfc_service as service;

/// The finite-type formalism: types, histories, triviality, witnesses
/// (`wfc-spec`).
pub use wfc_spec as spec;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::{
        consensus, core, explorer, hierarchy, registers, runtime, sched, service, spec,
    };
}
