//! `wfc` — command-line front end to the PODC'94 reproduction.
//!
//! ```text
//! wfc classify <TYPE-FILE>        classify a type per Theorem 5 and derive its one-use bit
//! wfc witness  <TYPE-FILE>        print the minimal non-trivial pair (Lemmas 2–4)
//! wfc show     <TYPE-FILE>        parse, validate and pretty-print a type
//! wfc catalog                     print the certified hierarchy catalog
//! wfc zoo                         dump the canonical zoo in the text format
//! wfc type <NAME>                 print one canonical type in the text format
//! wfc access-bounds <TYPE-FILE>   Section 4.2 bounds (D, r_b, w_b) as JSON
//! wfc theorem5 <TYPE-FILE>        full Theorem 5 certificate as JSON
//! wfc sched <TARGET> [key=value…] model-check a register fixture (wfc-sched)
//! wfc scenario run <FILE>         run one scenario file (direct or --addr)
//! wfc scenario check <PATH>…      run scenarios, assert every expectation
//! wfc scenario list <PATH>…       parse scenarios and print their shape
//! wfc serve [flags]               run the analysis server
//! wfc query <KIND> <TYPE-FILE> --addr HOST:PORT
//!                                 ask a running server for any analysis
//! wfc loadgen --addr HOST:PORT [flags]
//!                                 drive a server with open/closed-loop
//!                                 traffic and report latency percentiles
//! wfc stats --addr HOST:PORT [--json]
//!                                 one-shot live-introspection snapshot
//! wfc top --addr HOST:PORT [flags]
//!                                 live refreshing view of a server
//! wfc cluster-status --addr HOST:PORT
//!                                 one node's wfc-repl/v1 replication status
//! ```
//!
//! `query`, `stats`, `sched --addr`, and `cluster-status` accept
//! `--addr` more than once plus `--retries N`: the client rotates
//! through the addresses and backs off between passes, so a cluster
//! answers as long as any one node is up.
//!
//! Type files use the `wfc-spec::text` format; see `wfc zoo` for
//! examples. The JSON-producing subcommands (`access-bounds`,
//! `theorem5`, and `query` with any kind) share one code path with the
//! server workers, so direct and served results are byte-identical.
//!
//! Exit codes: 0 success, 1 error, 2 usage, 3 server busy.

use std::error::Error;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use wait_free_consensus::prelude::*;
use wfc_obs::json::Json;
use wfc_service::{Client, QueryKind, QueryOptions, ReplConfig, Response, ServeConfig, PROTO};
use wfc_spec::control::{CancelToken, Wall};
use wfc_spec::text::{format_type, parse_type};
use wfc_spec::FiniteType;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  wfc classify <TYPE-FILE>\n  wfc witness <TYPE-FILE>\n  wfc show <TYPE-FILE>\n  wfc catalog\n  wfc zoo\n  wfc type <NAME>\n  wfc access-bounds <TYPE-FILE> [CONTROL-FLAGS]\n  wfc theorem5 <TYPE-FILE> [CONTROL-FLAGS]\n  wfc sched <TARGET> [mode=dfs|preempt|pct] [seed=N] [runs=N] [depth=N]\n            [preemptions=N] [budget=N] [steps=N] [sleep=on|off]\n            [replay=SCHEDULE] [CONTROL-FLAGS] [--addr HOST:PORT]\n    (TARGET: srsw | seqlock | t4 | mrsw | repl | regular | broken | repl_broken)\n  wfc scenario run <FILE> [--addr HOST:PORT] [CONTROL-FLAGS]\n  wfc scenario check <FILE-OR-DIR>... [CONTROL-FLAGS]\n  wfc scenario list <FILE-OR-DIR>...\n    (scenario files use the wfc-scenario language; directories are\n     swept for *.scn, sorted by name)\n  wfc serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]\n            [--queue-capacity N] [--cache-capacity N] [--timeout-ms N]\n            [--batch-size N] [--batch-delay-us N] [--batch-adaptive on|off]\n            [--max-connections N] [--flight-capacity N]\n            [--anomaly-threshold-ms N]\n            [--node-id N --data-dir DIR [--peer ID=HOST:PORT ...]\n             [--compact-threshold N]]\n  wfc query <KIND> <TYPE-FILE> --addr HOST:PORT [CONTROL-FLAGS]\n    (KIND: classify | witness | access-bounds | theorem5 | verify-consensus | sched | scenario)\n  wfc loadgen --addr HOST:PORT [--connections N] [--pipeline N]\n              [--duration-ms N] [--rate N] [--mode closed|open|both]\n              [--out FILE]\n  wfc stats --addr HOST:PORT [--json]\n  wfc top --addr HOST:PORT [--interval-ms N] [--iterations N]\n  wfc cluster-status --addr HOST:PORT [--json]\n\n  `query`, `stats`, `sched --addr`, and `cluster-status` accept --addr\n  repeatedly plus --retries N: addresses are tried in rotation with a\n  capped exponential backoff between passes.\n\n  CONTROL-FLAGS (uniform across analysis subcommands):\n    --budget-configs N    explorer configuration budget (alias: --max-configs)\n    --budget-depth N      explorer depth budget (alias: --max-depth)\n    --budget-schedules N  sched schedule budget (= spec `budget=N`)\n    --budget-steps N      sched per-execution step cap (= spec `steps=N`)\n    --timeout-ms N        wall-clock deadline for direct runs\n    --threads N           explorer workers"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<FiniteType, Box<dyn Error>> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(parse_type(&src)?)
}

fn cmd_show(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = load(path)?;
    println!("{ty}");
    println!("  deterministic: {}", ty.is_deterministic());
    println!("  oblivious:     {}", ty.is_oblivious());
    print!("{}", format_type(&ty));
    Ok(())
}

fn cmd_classify(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = Arc::new(load(path)?);
    println!("{ty}");
    if !ty.is_deterministic() {
        println!(
            "nondeterministic: Theorem 5 case 3 applies only if h_m ≥ 2 \
             (supply a 2-consensus implementation; see wfc_core::one_use_from_consensus)"
        );
        return Ok(());
    }
    match core::classify_deterministic(&ty)? {
        core::Theorem5Classification::Trivial => {
            println!("Theorem 5 case 1: trivial — locally simulable, h_m = h_m^r = 1");
        }
        core::Theorem5Classification::NonTrivial(recipe) => {
            println!("Theorem 5 case 2: non-trivial — registers add nothing (h_m = h_m^r)");
            println!("one-use bit recipe:");
            println!("  object init:  {}", ty.state_name(recipe.init()));
            println!(
                "  writer (port {}): invoke `{}`",
                recipe.writer_port().index(),
                ty.invocation_name(recipe.writer_inv())
            );
            let probes: Vec<&str> = recipe
                .reader_seq()
                .iter()
                .map(|&i| ty.invocation_name(i))
                .collect();
            println!(
                "  reader (port {}): invoke {:?}; bit = 1 iff last response ≠ `{}`",
                recipe.reader_port().index(),
                probes,
                ty.response_name(recipe.unwritten_last())
            );
            println!("  read cost: {} invocation(s)", recipe.read_cost());
        }
    }
    Ok(())
}

fn cmd_witness(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = Arc::new(load(path)?);
    match spec::witness::find_witness(&ty)? {
        None => println!("{}: trivial — no non-trivial pair exists", ty.name()),
        Some(w) => {
            println!(
                "{}: minimal non-trivial pair (Lemma 4 normal form)",
                ty.name()
            );
            println!("  start state q = {}", ty.state_name(w.start));
            println!(
                "  H1 (unwritten): {:?} on port {} → responses {:?}",
                w.reader_seq
                    .iter()
                    .map(|&i| ty.invocation_name(i))
                    .collect::<Vec<_>>(),
                w.reader_port.index(),
                w.unwritten_resps
                    .iter()
                    .map(|&r| ty.response_name(r))
                    .collect::<Vec<_>>(),
            );
            println!(
                "  H2 (written):   `{}` on port {} first → responses {:?}",
                ty.invocation_name(w.writer_inv),
                w.writer_port.index(),
                w.written_resps
                    .iter()
                    .map(|&r| ty.response_name(r))
                    .collect::<Vec<_>>(),
            );
            println!("  k = {}, |H1| + |H2| = {}", w.k(), w.total_len());
            assert!(w.verify(&ty));
        }
    }
    Ok(())
}

fn cmd_catalog() {
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}  det?",
        "type", "h_1", "h_1^r", "h_m", "h_m^r"
    );
    for row in hierarchy::catalog() {
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6}  {}",
            row.ty.name(),
            row.value(hierarchy::Hierarchy::H1).to_string(),
            row.value(hierarchy::Hierarchy::H1R).to_string(),
            row.value(hierarchy::Hierarchy::HM).to_string(),
            row.value(hierarchy::Hierarchy::HMR).to_string(),
            if row.ty.is_deterministic() {
                "yes"
            } else {
                "no"
            },
        );
    }
}

fn cmd_zoo() {
    for ty in spec::canonical::deterministic_zoo(2) {
        println!("{}", format_type(&ty));
    }
    println!("{}", format_type(&spec::canonical::one_use_bit()));
}

fn cmd_type(name: &str) -> Result<(), Box<dyn Error>> {
    let all: Vec<FiniteType> = spec::canonical::deterministic_zoo(2)
        .into_iter()
        .chain(std::iter::once(spec::canonical::one_use_bit()))
        .collect();
    match all.iter().find(|t| t.name() == name) {
        Some(ty) => {
            print!("{}", format_type(ty));
            Ok(())
        }
        None => {
            let known: Vec<&str> = all.iter().map(|t| t.name()).collect();
            Err(format!(
                "unknown canonical type `{name}`; known: {}",
                known.join(", ")
            )
            .into())
        }
    }
}

/// Pulls `--flag VALUE` pairs out of `args`, erroring on strays.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, Box<dyn Error>> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`").into());
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
            pairs.push((flag.clone(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag (`--peer`, `--addr`), in
    /// order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.0
            .iter()
            .filter(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, Box<dyn Error>> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag `{name}` wants an integer, got `{v}`").into()),
        }
    }

    fn get_u64_opt(&self, name: &str) -> Result<Option<u64>, Box<dyn Error>> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag `{name}` wants an integer, got `{v}`").into()),
        }
    }
}

/// The uniform control-plane flags shared by every analysis subcommand
/// (`access-bounds`, `theorem5`, `query`, `sched`): explorer budgets
/// `--budget-configs` / `--budget-depth` (with `--max-configs` /
/// `--max-depth` kept as aliases), sched budgets `--budget-schedules` /
/// `--budget-steps`, a wall-clock `--timeout-ms`, and `--threads`. One
/// parser, so every subcommand spells its limits the same way.
struct ControlFlags {
    options: QueryOptions,
    schedules: Option<u64>,
    steps: Option<u64>,
    timeout: Option<Duration>,
}

impl ControlFlags {
    fn parse(flags: &Flags) -> Result<ControlFlags, Box<dyn Error>> {
        let d = QueryOptions::default();
        let aliased = |new: &str, old: &str, default: usize| -> Result<usize, Box<dyn Error>> {
            match flags.get(new) {
                Some(_) => flags.get_usize(new, default),
                None => flags.get_usize(old, default),
            }
        };
        Ok(ControlFlags {
            options: QueryOptions {
                max_configs: aliased("--budget-configs", "--max-configs", d.max_configs)?,
                max_depth: aliased("--budget-depth", "--max-depth", d.max_depth)?,
                threads: flags.get_usize("--threads", d.threads)?,
            },
            schedules: flags.get_u64_opt("--budget-schedules")?,
            steps: flags.get_u64_opt("--budget-steps")?,
            timeout: flags
                .get_u64_opt("--timeout-ms")?
                .map(Duration::from_millis),
        })
    }

    /// The wall-clock deadline for a *direct* run, armed at call time.
    /// (Served runs are governed by the server's own `--timeout-ms`.)
    fn wall(&self) -> Option<Wall> {
        self.timeout.map(Wall::expires_in)
    }

    /// Sched budgets as `key=value` words appended after the user's own
    /// spec words — the spec grammar resolves later keys last, so the
    /// flags win over in-line spellings, and the canonical text (hence
    /// the cache key) comes out the same however the budget was spelled.
    fn sched_suffix(&self) -> String {
        let mut out = String::new();
        if let Some(n) = self.schedules {
            out.push_str(&format!(" budget={n}"));
        }
        if let Some(n) = self.steps {
            out.push_str(&format!(" steps={n}"));
        }
        out
    }
}

/// `access-bounds` / `theorem5`: the same engine the server workers
/// run, printed as the canonical JSON document.
fn cmd_direct_query(kind: QueryKind, path: &str, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = Flags::parse(rest)?;
    let control = ControlFlags::parse(&flags)?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = wfc_service::run_query_text_with(
        kind,
        &src,
        &control.options,
        CancelToken::NONE,
        control.wall(),
    )?;
    println!("{}", doc.render());
    Ok(())
}

#[cfg(unix)]
mod sig {
    //! SIGTERM/SIGINT → a flag, with nothing but the C library's
    //! `signal(2)`. Registering a handler is all the smoke test needs to
    //! assert clean shutdown on `kill -TERM`.
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stopped() -> bool {
        false
    }
}

fn cmd_serve(rest: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = Flags::parse(rest)?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: flags.get("--addr").unwrap_or("127.0.0.1:7414").to_owned(),
        workers: flags.get_usize("--workers", defaults.workers)?,
        queue_capacity: flags.get_usize("--queue-capacity", defaults.queue_capacity)?,
        cache_capacity: flags.get_usize("--cache-capacity", defaults.cache_capacity)?,
        cache_dir: flags.get("--cache-dir").map(Into::into),
        request_timeout: match flags.get_usize("--timeout-ms", 0)? {
            0 => None,
            ms => Some(Duration::from_millis(ms as u64)),
        },
        batch: wfc_service::BatchConfig {
            max_batch_size: flags.get_usize("--batch-size", defaults.batch.max_batch_size)?,
            max_batch_delay: Duration::from_micros(flags.get_usize(
                "--batch-delay-us",
                defaults.batch.max_batch_delay.as_micros() as usize,
            )? as u64),
            adaptive: match flags.get("--batch-adaptive") {
                None => defaults.batch.adaptive,
                Some("on") => true,
                Some("off") => false,
                Some(other) => {
                    return Err(format!("--batch-adaptive wants on|off, got `{other}`").into())
                }
            },
        },
        max_connections: flags.get_usize("--max-connections", defaults.max_connections)?,
        flight_capacity: flags.get_usize("--flight-capacity", defaults.flight_capacity)?,
        anomaly_threshold: match flags.get_usize("--anomaly-threshold-ms", 0)? {
            0 => None,
            ms => Some(Duration::from_millis(ms as u64)),
        },
        repl: parse_repl_flags(&flags)?,
        ..defaults
    };
    let clustered = config.repl.is_some();
    let handle = wfc_service::serve(config)?;
    match clustered {
        true => println!(
            "listening on {} ({PROTO}, {})",
            handle.addr(),
            wfc_repl::PROTO
        ),
        false => println!("listening on {} ({PROTO})", handle.addr()),
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    sig::install();
    while !sig::stopped() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    if wfc_obs::emission_requested() {
        wfc_obs::report::RunReport::collect("wfc-serve").emit();
    }
    Ok(())
}

/// Replication flags for `wfc serve`: `--node-id N --data-dir DIR`
/// turn clustering on, `--peer ID=HOST:PORT` (repeatable) names the
/// other members. A solo node (no peers) is a valid one-member cluster
/// — it still gets the WAL and crash recovery.
fn parse_repl_flags(flags: &Flags) -> Result<Option<ReplConfig>, Box<dyn Error>> {
    let node_id = flags.get_u64_opt("--node-id")?;
    let data_dir = flags.get("--data-dir");
    let peer_args = flags.get_all("--peer");
    let (Some(node_id), Some(data_dir)) = (node_id, data_dir) else {
        if node_id.is_some() || data_dir.is_some() || !peer_args.is_empty() {
            return Err("clustered serve needs both --node-id N and --data-dir DIR".into());
        }
        return Ok(None);
    };
    let mut peers = Vec::new();
    for spec in peer_args {
        let (id, addr) = spec
            .split_once('=')
            .ok_or_else(|| format!("--peer wants ID=HOST:PORT, got `{spec}`"))?;
        let id: u64 = id
            .parse()
            .map_err(|_| format!("--peer member id must be an integer, got `{id}`"))?;
        if id == node_id {
            return Err(format!("--peer {spec} names this node's own id").into());
        }
        peers.push((id, addr.to_owned()));
    }
    Ok(Some(ReplConfig {
        node_id,
        peers,
        data_dir: data_dir.into(),
        compact_threshold: flags.get_usize("--compact-threshold", 1024)? as u64,
    }))
}

/// Connects to the first reachable `--addr` (repeatable), retrying
/// `--retries` extra passes with capped exponential backoff — the
/// client half of cluster failover.
fn connect_cluster(flags: &Flags, who: &str) -> Result<Client, Box<dyn Error>> {
    let addrs: Vec<String> = flags
        .get_all("--addr")
        .into_iter()
        .map(str::to_owned)
        .collect();
    if addrs.is_empty() {
        return Err(format!("`{who}` needs --addr HOST:PORT").into());
    }
    // The default rides out a freshly spawned server's bind (the old
    // 10-second connect_retry contract): 12 passes back off
    // 2,4,…,1024 ms (capped), about five seconds in total.
    let retries = flags.get_usize("--retries", 12)? as u32;
    Client::connect_failover(&addrs, retries)
        .map_err(|e| format!("cannot connect to {}: {e}", addrs.join(", ")).into())
}

/// `cluster-status`: ask one node (with failover) for its `wfc-repl/v1`
/// status frame, validate it, and print it.
fn cmd_cluster_status(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let mut rest: Vec<String> = rest.to_vec();
    let json = match rest.iter().position(|a| a == "--json") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let flags = Flags::parse(&rest)?;
    let mut client = connect_cluster(&flags, "wfc cluster-status")?;
    client.send_doc(&wfc_repl::msg::status_request(1))?;
    let reply = client.recv_doc()?;
    wfc_repl::msg::validate_status_json(&reply)
        .map_err(|e| format!("malformed status reply: {e}"))?;
    if json {
        println!("{}", reply.render());
        return Ok(ExitCode::SUCCESS);
    }
    if !matches!(reply.get("enabled"), Some(Json::Bool(true))) {
        println!("replication: disabled");
        return Ok(ExitCode::SUCCESS);
    }
    let u = |key: &str| reply.get(key).and_then(Json::as_u64).unwrap_or(0);
    let members = reply
        .get("members")
        .and_then(Json::as_arr)
        .map(|m| {
            m.iter()
                .filter_map(Json::as_u64)
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default();
    println!(
        "node {} of [{}]  sequencer {}{}",
        u("node_id"),
        members,
        u("sequencer"),
        if u("node_id") == u("sequencer") {
            " (this node)"
        } else {
            ""
        }
    );
    println!(
        "log: last index {}  committed {}  applied {}",
        u("last_index"),
        u("committed"),
        u("applied")
    );
    println!(
        "peers connected: {}  wal records: {}",
        u("peers_connected"),
        u("wal_records")
    );
    Ok(ExitCode::SUCCESS)
}

/// `loadgen`: drive a running server with the built-in traffic mixes
/// and emit the `BENCH_service` latency/throughput report.
fn cmd_loadgen(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    use wfc_service::loadgen::{self, Mode};

    let flags = Flags::parse(rest)?;
    let addr = flags
        .get("--addr")
        .ok_or("`wfc loadgen` needs --addr HOST:PORT")?
        .to_owned();
    let rate = flags.get_usize("--rate", 200)? as u64;
    let mut mixes = loadgen::default_mixes(rate);
    match flags.get("--mode").unwrap_or("both") {
        "both" => {}
        "closed" => mixes.retain(|m| m.mode == Mode::Closed),
        "open" => mixes.retain(|m| m.mode != Mode::Closed),
        other => return Err(format!("--mode wants closed|open|both, got `{other}`").into()),
    }
    let opts = loadgen::LoadgenOptions {
        addr,
        connections: flags.get_usize("--connections", 4)?,
        pipeline: flags.get_usize("--pipeline", 4)?,
        duration: Duration::from_millis(flags.get_usize("--duration-ms", 2000)? as u64),
        mixes,
    };
    let reports = loadgen::run(&opts)?;
    loadgen::print_summary(&reports);
    let report = loadgen::to_report(&reports);
    if let Some(path) = flags.get("--out") {
        std::fs::write(path, report.render()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("# report written to {path}");
    }
    if wfc_obs::emission_requested() {
        report.emit();
    }
    let completed: u64 = reports.iter().map(|r| r.ok).sum();
    if completed == 0 {
        return Err("loadgen completed zero successful requests".into());
    }
    Ok(ExitCode::SUCCESS)
}

/// Fetches and validates one `wfc-stats/v1` snapshot from a server.
fn fetch_stats(client: &mut Client) -> Result<Json, Box<dyn Error>> {
    match client.query(QueryKind::Stats, "", &QueryOptions::default())? {
        Response::Ok { result, .. } => {
            wfc_service::validate_stats_json(&result)
                .map_err(|e| format!("malformed stats snapshot: {e}"))?;
            Ok(result)
        }
        other => Err(format!("unexpected stats reply: {other:?}").into()),
    }
}

/// Renders a `wfc-stats/v1` snapshot as the human-readable view shared
/// by `wfc stats` (one shot) and `wfc top` (refreshing).
fn render_stats(doc: &Json) -> String {
    use std::fmt::Write as _;
    fn u(doc: &Json, key: &str) -> u64 {
        doc.get(key).and_then(Json::as_u64).unwrap_or(0)
    }
    let mut out = String::new();
    let null = Json::Null;
    let server = doc.get("server").unwrap_or(&null);
    let obs_on = matches!(server.get("obs_enabled"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "uptime {:.1}s   observability {}",
        u(doc, "uptime_us") as f64 / 1e6,
        if obs_on {
            "on"
        } else {
            "off (run the server with WFC_OBS=1 for stage data)"
        },
    );
    let _ = writeln!(
        out,
        "workers {}   conns {}/{}   queue {}/{}   batch-open {}   inflight {}   accepted {}",
        u(server, "workers"),
        u(server, "connections"),
        u(server, "max_connections"),
        u(server, "queue_depth"),
        u(server, "queue_capacity"),
        u(server, "batch_open_entries"),
        u(server, "inflight"),
        u(server, "requests_accepted"),
    );
    if let Some(stages) = doc.get("stages").and_then(Json::as_obj) {
        if !stages.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "stage", "count", "mean_us", "p50_us", "p95_us", "p99_us"
            );
            for (name, hist) in stages {
                let _ = writeln!(
                    out,
                    "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    u(hist, "count"),
                    u(hist, "mean"),
                    u(hist, "p50"),
                    u(hist, "p95"),
                    u(hist, "p99"),
                );
            }
        }
    }
    if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
        let mut service: Vec<&(String, Json)> = counters
            .iter()
            .filter(|(name, _)| name.starts_with("service."))
            .collect();
        service.sort_by(|a, b| a.0.cmp(&b.0));
        if !service.is_empty() {
            let _ = writeln!(out);
            for (name, value) in service {
                let _ = writeln!(out, "{:<36} {}", name, value.render());
            }
        }
    }
    if let Some(flight) = doc.get("flight") {
        let records = flight.get("records").and_then(Json::as_arr).unwrap_or(&[]);
        let _ = writeln!(
            out,
            "\nflight recorder: {} recorded (ring capacity {}), last {}:",
            u(flight, "recorded"),
            u(flight, "capacity"),
            records.len(),
        );
        for record in records.iter().rev().take(8) {
            let anomalies: Vec<&str> = record
                .get("anomaly")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(Json::as_str)
                .collect();
            let _ = writeln!(
                out,
                "  #{:<8} {:<14} {:<9} {:<6} {:>8}us{}{}",
                u(record, "id"),
                record.get("kind").and_then(Json::as_str).unwrap_or("?"),
                record
                    .get("disposition")
                    .and_then(Json::as_str)
                    .unwrap_or("?"),
                record.get("outcome").and_then(Json::as_str).unwrap_or("?"),
                u(record, "total_us"),
                if anomalies.is_empty() { "" } else { "  ! " },
                anomalies.join(","),
            );
        }
    }
    out
}

/// `stats`: one snapshot from a running server, human-readable by
/// default, raw validated JSON with `--json`.
fn cmd_stats(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    // `--json` is the one valueless switch in the CLI; peel it off
    // before the uniform `--flag value` parser sees the rest.
    let mut rest: Vec<String> = rest.to_vec();
    let json = match rest.iter().position(|a| a == "--json") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let flags = Flags::parse(&rest)?;
    let mut client = connect_cluster(&flags, "wfc stats")?;
    let doc = fetch_stats(&mut client)?;
    if json {
        println!("{}", doc.render());
    } else {
        print!("{}", render_stats(&doc));
    }
    Ok(ExitCode::SUCCESS)
}

/// `top`: refresh the `wfc stats` view in place until interrupted (or
/// for `--iterations N` rounds, which is what CI uses).
fn cmd_top(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let flags = Flags::parse(rest)?;
    let addr = flags
        .get("--addr")
        .ok_or("`wfc top` needs --addr HOST:PORT")?;
    let interval = Duration::from_millis(flags.get_usize("--interval-ms", 1000)? as u64);
    let iterations = flags.get_usize("--iterations", 0)?; // 0 = until ^C
    let mut client = Client::connect_retry(addr, Duration::from_secs(10))
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    sig::install();
    let mut round = 0usize;
    while !sig::stopped() {
        let doc = fetch_stats(&mut client)?;
        // ANSI clear-screen + home; a plain separator when piped would
        // be nicer, but std has no isatty, and `top` is interactive.
        let frame = format!(
            "\x1b[2J\x1b[Hwfc top — {addr}   (^C to quit)\n\n{}",
            render_stats(&doc)
        );
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        if stdout
            .write_all(frame.as_bytes())
            .and_then(|()| stdout.flush())
            .is_err()
        {
            break; // stdout closed (e.g. piped to a finished reader)
        }
        round += 1;
        if iterations != 0 && round >= iterations {
            break;
        }
        let mut waited = Duration::ZERO;
        while waited < interval && !sig::stopped() {
            let step = Duration::from_millis(50).min(interval - waited);
            std::thread::sleep(step);
            waited += step;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_query(kind_name: &str, path: &str, rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let kind =
        QueryKind::parse(kind_name).ok_or_else(|| format!("unknown query kind `{kind_name}`"))?;
    let flags = Flags::parse(rest)?;
    let control = ControlFlags::parse(&flags)?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    served_query(kind, &src, &control.options, &flags, "wfc query")
}

/// Sends one query to a server (with address failover) and prints the
/// response; shared by `wfc query` and `wfc sched --addr`.
fn served_query(
    kind: QueryKind,
    text: &str,
    options: &QueryOptions,
    flags: &Flags,
    who: &str,
) -> Result<ExitCode, Box<dyn Error>> {
    let mut client = connect_cluster(flags, who)?;
    let response = client.query(kind, text, options)?;
    match &response {
        Response::Ok { result, cached, .. } => {
            eprintln!("# cached: {cached}");
            println!("{}", result.render());
            Ok(ExitCode::SUCCESS)
        }
        Response::Error {
            code,
            message,
            budget,
            used,
            ..
        } => {
            // The full structured error — code, quantities, resource,
            // partial progress — goes to stdout so scripts can capture
            // and validate it (`wfc-report --check`); the summary goes
            // to stderr for humans.
            println!("{}", response.to_json().render());
            match (budget, used) {
                (Some(b), Some(u)) => eprintln!("error [{code}]: {message} (budget {b}, used {u})"),
                _ => eprintln!("error [{code}]: {message}"),
            }
            Ok(ExitCode::FAILURE)
        }
        Response::Busy { used, budget, .. } => {
            eprintln!("busy: request queue at {used}/{budget}; retry later");
            Ok(ExitCode::from(3))
        }
    }
}

/// `sched`: run the `wfc-sched` model checker on a named register
/// fixture. The spec words (`target key=value …`) form the query text
/// verbatim, and both paths — direct and `--addr` — go through the one
/// `QueryKind::Sched` engine, so their result bytes are identical.
fn cmd_sched(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let split = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    let (spec_words, flag_args) = rest.split_at(split);
    if spec_words.is_empty() {
        return Err("`wfc sched` needs a target; try `wfc sched srsw` or see `wfc` usage".into());
    }
    let flags = Flags::parse(flag_args)?;
    let control = ControlFlags::parse(&flags)?;
    // Budget flags append `key=value` words; last key wins in the spec
    // grammar, so the flags override any in-line spelling.
    let text = spec_words.join(" ") + &control.sched_suffix();
    match flags.get("--addr") {
        Some(_) => served_query(
            QueryKind::Sched,
            &text,
            &QueryOptions::default(),
            &flags,
            "wfc sched",
        ),
        None => {
            let doc = wfc_service::run_query_text_with(
                QueryKind::Sched,
                &text,
                &QueryOptions::default(),
                CancelToken::NONE,
                control.wall(),
            )?;
            println!("{}", doc.render());
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Expands a `wfc scenario` path argument: a file stands for itself, a
/// directory for its `*.scn` files sorted by name (so `check` output is
/// deterministic across filesystems).
fn scenario_files(path: &str) -> Result<Vec<std::path::PathBuf>, Box<dyn Error>> {
    let meta = std::fs::metadata(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if !meta.is_dir() {
        return Ok(vec![path.into()]);
    }
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read `{path}`: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "scn"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("`{path}` contains no .scn scenario files").into());
    }
    Ok(files)
}

/// `scenario run`: one file to its `wfc-scenario/v1` document, direct
/// (the same engine the server workers run) or served with `--addr`.
/// The exit code reflects the document's `pass` verdict.
fn cmd_scenario_run(path: &str, flags: &Flags) -> Result<ExitCode, Box<dyn Error>> {
    let control = ControlFlags::parse(flags)?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if flags.get("--addr").is_some() {
        return served_query(
            QueryKind::Scenario,
            &src,
            &QueryOptions::default(),
            flags,
            "wfc scenario run",
        );
    }
    let doc = wfc_service::run_scenario_text_with(
        &src,
        &control.options,
        CancelToken::NONE,
        control.wall(),
    )?;
    println!("{}", doc.render());
    Ok(match doc.get("pass") {
        Some(Json::Bool(true)) => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    })
}

/// `scenario check`: run every scenario and assert every expectation —
/// one line per scenario, non-zero exit if anything failed. This is the
/// one-command paper-claims regression over `scenarios/`.
fn cmd_scenario_check(paths: &[String], flags: &Flags) -> Result<ExitCode, Box<dyn Error>> {
    let control = ControlFlags::parse(flags)?;
    let mut total = 0usize;
    let mut failed = 0usize;
    for arg in paths {
        for file in scenario_files(arg)? {
            total += 1;
            let shown = file.display();
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read `{shown}`: {e}"))?;
            let doc = match wfc_service::run_scenario_text_with(
                &src,
                &control.options,
                CancelToken::NONE,
                control.wall(),
            ) {
                Ok(doc) => doc,
                Err(e) => {
                    failed += 1;
                    println!("FAIL {shown}: {e}");
                    continue;
                }
            };
            let name = doc.get("scenario").and_then(Json::as_str).unwrap_or("?");
            let queries = doc.get("queries").and_then(Json::as_arr).unwrap_or(&[]);
            if doc.get("pass") == Some(&Json::Bool(true)) {
                println!("ok   {name} ({} queries) — {shown}", queries.len());
                continue;
            }
            failed += 1;
            println!("FAIL {name} — {shown}");
            for q in queries {
                if q.get("pass") != Some(&Json::Bool(true)) {
                    println!(
                        "     query {} expected {}, result disagrees",
                        q.get("kind").and_then(Json::as_str).unwrap_or("?"),
                        q.get("expect").and_then(Json::as_str).unwrap_or("(none)"),
                    );
                }
            }
        }
    }
    println!("{total} scenario(s), {failed} failed");
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `scenario list`: parse (but do not run) scenarios and print their
/// shape — name, resolved type, protocol, query kinds.
fn cmd_scenario_list(paths: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    for arg in paths {
        for file in scenario_files(arg)? {
            let shown = file.display();
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read `{shown}`: {e}"))?;
            let sc = wfc_scenario::parse_scenario(&src).map_err(|e| format!("{shown}: {e}"))?;
            let kinds: Vec<&str> = sc.queries.iter().map(|q| q.kind.as_str()).collect();
            println!(
                "{:<20} type={:<18} protocol={:<14} queries={}",
                sc.name,
                sc.resolved.name(),
                sc.protocol.as_deref().unwrap_or("-"),
                kinds.join(","),
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_scenario(rest: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let usage = "`wfc scenario` wants run|check|list; see `wfc` usage";
    let (sub, rest) = rest.split_first().ok_or(usage)?;
    let split = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    let (paths, flag_args) = rest.split_at(split);
    let flags = Flags::parse(flag_args)?;
    match sub.as_str() {
        "run" => match paths {
            [path] => cmd_scenario_run(path, &flags),
            _ => Err("`wfc scenario run` wants exactly one FILE".into()),
        },
        "check" if !paths.is_empty() => cmd_scenario_check(paths, &flags),
        "check" => Err("`wfc scenario check` wants at least one FILE or DIR".into()),
        "list" if !paths.is_empty() => cmd_scenario_list(paths),
        "list" => Err("`wfc scenario list` wants at least one FILE or DIR".into()),
        _ => Err(usage.into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<ExitCode, Box<dyn Error>> = match args.as_slice() {
        [cmd, path] if cmd == "classify" => cmd_classify(path).map(|()| ExitCode::SUCCESS),
        [cmd, path] if cmd == "witness" => cmd_witness(path).map(|()| ExitCode::SUCCESS),
        [cmd, path] if cmd == "show" => cmd_show(path).map(|()| ExitCode::SUCCESS),
        [cmd] if cmd == "catalog" => {
            cmd_catalog();
            Ok(ExitCode::SUCCESS)
        }
        [cmd] if cmd == "zoo" => {
            cmd_zoo();
            Ok(ExitCode::SUCCESS)
        }
        [cmd, name] if cmd == "type" => cmd_type(name).map(|()| ExitCode::SUCCESS),
        [cmd, path, rest @ ..] if cmd == "access-bounds" => {
            cmd_direct_query(QueryKind::AccessBounds, path, rest).map(|()| ExitCode::SUCCESS)
        }
        [cmd, path, rest @ ..] if cmd == "theorem5" => {
            cmd_direct_query(QueryKind::Theorem5, path, rest).map(|()| ExitCode::SUCCESS)
        }
        [cmd, rest @ ..] if cmd == "sched" => cmd_sched(rest),
        [cmd, rest @ ..] if cmd == "scenario" => cmd_scenario(rest),
        [cmd, rest @ ..] if cmd == "serve" => cmd_serve(rest).map(|()| ExitCode::SUCCESS),
        [cmd, rest @ ..] if cmd == "loadgen" => cmd_loadgen(rest),
        [cmd, rest @ ..] if cmd == "stats" => cmd_stats(rest),
        [cmd, rest @ ..] if cmd == "top" => cmd_top(rest),
        [cmd, rest @ ..] if cmd == "cluster-status" => cmd_cluster_status(rest),
        [cmd, kind, path, rest @ ..] if cmd == "query" => cmd_query(kind, path, rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
