//! `wfc` — command-line front end to the PODC'94 reproduction.
//!
//! ```text
//! wfc classify <TYPE-FILE>   classify a type per Theorem 5 and derive its one-use bit
//! wfc witness  <TYPE-FILE>   print the minimal non-trivial pair (Lemmas 2–4)
//! wfc show     <TYPE-FILE>   parse, validate and pretty-print a type
//! wfc catalog                print the certified hierarchy catalog
//! wfc zoo                    dump the canonical zoo in the text format
//! ```
//!
//! Type files use the `wfc-spec::text` format; see `wfc zoo` for
//! examples.

use std::error::Error;
use std::process::ExitCode;
use std::sync::Arc;

use wait_free_consensus::prelude::*;
use wfc_spec::text::{format_type, parse_type};
use wfc_spec::FiniteType;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  wfc classify <TYPE-FILE>\n  wfc witness <TYPE-FILE>\n  wfc show <TYPE-FILE>\n  wfc catalog\n  wfc zoo"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<FiniteType, Box<dyn Error>> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(parse_type(&src)?)
}

fn cmd_show(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = load(path)?;
    println!("{ty}");
    println!("  deterministic: {}", ty.is_deterministic());
    println!("  oblivious:     {}", ty.is_oblivious());
    print!("{}", format_type(&ty));
    Ok(())
}

fn cmd_classify(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = Arc::new(load(path)?);
    println!("{ty}");
    if !ty.is_deterministic() {
        println!(
            "nondeterministic: Theorem 5 case 3 applies only if h_m ≥ 2 \
             (supply a 2-consensus implementation; see wfc_core::one_use_from_consensus)"
        );
        return Ok(());
    }
    match core::classify_deterministic(&ty)? {
        core::Theorem5Classification::Trivial => {
            println!("Theorem 5 case 1: trivial — locally simulable, h_m = h_m^r = 1");
        }
        core::Theorem5Classification::NonTrivial(recipe) => {
            println!("Theorem 5 case 2: non-trivial — registers add nothing (h_m = h_m^r)");
            println!("one-use bit recipe:");
            println!("  object init:  {}", ty.state_name(recipe.init()));
            println!(
                "  writer (port {}): invoke `{}`",
                recipe.writer_port().index(),
                ty.invocation_name(recipe.writer_inv())
            );
            let probes: Vec<&str> = recipe
                .reader_seq()
                .iter()
                .map(|&i| ty.invocation_name(i))
                .collect();
            println!(
                "  reader (port {}): invoke {:?}; bit = 1 iff last response ≠ `{}`",
                recipe.reader_port().index(),
                probes,
                ty.response_name(recipe.unwritten_last())
            );
            println!("  read cost: {} invocation(s)", recipe.read_cost());
        }
    }
    Ok(())
}

fn cmd_witness(path: &str) -> Result<(), Box<dyn Error>> {
    let ty = Arc::new(load(path)?);
    match spec::witness::find_witness(&ty)? {
        None => println!("{}: trivial — no non-trivial pair exists", ty.name()),
        Some(w) => {
            println!(
                "{}: minimal non-trivial pair (Lemma 4 normal form)",
                ty.name()
            );
            println!("  start state q = {}", ty.state_name(w.start));
            println!(
                "  H1 (unwritten): {:?} on port {} → responses {:?}",
                w.reader_seq
                    .iter()
                    .map(|&i| ty.invocation_name(i))
                    .collect::<Vec<_>>(),
                w.reader_port.index(),
                w.unwritten_resps
                    .iter()
                    .map(|&r| ty.response_name(r))
                    .collect::<Vec<_>>(),
            );
            println!(
                "  H2 (written):   `{}` on port {} first → responses {:?}",
                ty.invocation_name(w.writer_inv),
                w.writer_port.index(),
                w.written_resps
                    .iter()
                    .map(|&r| ty.response_name(r))
                    .collect::<Vec<_>>(),
            );
            println!("  k = {}, |H1| + |H2| = {}", w.k(), w.total_len());
            assert!(w.verify(&ty));
        }
    }
    Ok(())
}

fn cmd_catalog() {
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}  det?",
        "type", "h_1", "h_1^r", "h_m", "h_m^r"
    );
    for row in hierarchy::catalog() {
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6}  {}",
            row.ty.name(),
            row.value(hierarchy::Hierarchy::H1).to_string(),
            row.value(hierarchy::Hierarchy::H1R).to_string(),
            row.value(hierarchy::Hierarchy::HM).to_string(),
            row.value(hierarchy::Hierarchy::HMR).to_string(),
            if row.ty.is_deterministic() {
                "yes"
            } else {
                "no"
            },
        );
    }
}

fn cmd_zoo() {
    for ty in spec::canonical::deterministic_zoo(2) {
        println!("{}", format_type(&ty));
    }
    println!("{}", format_type(&spec::canonical::one_use_bit()));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), Box<dyn Error>> = match args.as_slice() {
        [cmd, path] if cmd == "classify" => cmd_classify(path),
        [cmd, path] if cmd == "witness" => cmd_witness(path),
        [cmd, path] if cmd == "show" => cmd_show(path),
        [cmd] if cmd == "catalog" => {
            cmd_catalog();
            Ok(())
        }
        [cmd] if cmd == "zoo" => {
            cmd_zoo();
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
