//! The flight recorder: a fixed-capacity, lock-free ring of completed
//! request records, overwritten forever.
//!
//! This is the "black box" of the serving layer: the last `capacity`
//! completed requests are always available for dumping — on demand
//! (the `stats` introspection query) or when an anomaly trips — without
//! the recorder ever allocating, locking, or blocking a writer on the
//! hot path.
//!
//! ## Record shape
//!
//! The recorder is deliberately vocabulary-free: one record is
//! [`RECORD_WORDS`] raw `u64` words. The producing layer packs whatever
//! it wants into them (the service packs request id, kind, disposition,
//! outcome, and per-stage microsecond stamps) and unpacks on read. That
//! keeps this crate dependency-free and the slot size fixed at compile
//! time — no allocation ever happens after construction.
//!
//! ## Memory ordering (per-slot seqlock)
//!
//! Each slot carries a sequence word alongside its data words. A writer
//! claims a ticket `t` with one `fetch_add` on the shared head, picks
//! slot `t % capacity`, and publishes with the classic seqlock dance:
//!
//! 1. store `seq = 2·t + 1` (odd: "write in progress"), then a
//!    `Release` fence;
//! 2. store the data words (`Relaxed` — each word is itself atomic, so
//!    there is no data race, only possible *mixing* across writers);
//! 3. store `seq = 2·t + 2` (`Release`: orders the data stores before
//!    the even value readers wait for).
//!
//! A reader loads `seq` (`Acquire`), skips odd values, copies the data
//! words, issues an `Acquire` fence, and re-loads `seq`: if the two
//! loads agree the copy is consistent and the slot's ticket is
//! `seq/2 − 1`. Readers never write shared state and never wait — a
//! snapshot is **wait-free** and perturbs writers not at all, which is
//! the same posture as the paper's wait-free register constructions:
//! reads concurrent with writes stay consistent without blocking
//! either side.
//!
//! Two writers collide on one slot only when a writer falls a full
//! ring lap (`capacity` pushes) behind between claiming its ticket and
//! finishing its three stores — with capacities in the hundreds and a
//! bounded writer population (the server's fixed thread total), that
//! window is unreachable in practice; a reader that does catch a mixed
//! slot sees a torn sequence and drops it rather than reporting a
//! frankenstein record.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Fixed number of `u64` data words per record.
pub const RECORD_WORDS: usize = 8;

/// One published record: the push ticket (0-based, monotonically
/// increasing across the recorder's lifetime) and the raw words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// The push ticket: the `ticket`-th record ever pushed.
    pub ticket: u64,
    /// The producer-packed payload.
    pub words: [u64; RECORD_WORDS],
}

struct Slot {
    /// `0` = never written; odd = write in progress; even value `s` =
    /// ticket `s/2 − 1` fully published.
    seq: AtomicU64,
    words: [AtomicU64; RECORD_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-capacity, overwrite-forever ring of [`FlightRecord`]s. See
/// the module docs for the concurrency protocol.
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity.max(1)` records. All
    /// memory is allocated here, once; `push` never allocates.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// How many records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (≥ the number currently retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes one record, overwriting the oldest once the ring is
    /// full. Lock-free and allocation-free: one `fetch_add` plus
    /// `RECORD_WORDS + 2` plain stores.
    pub fn push(&self, words: &[u64; RECORD_WORDS]) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (word, &value) in slot.words.iter().zip(words) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// A wait-free consistent copy of every fully published record,
    /// oldest first. Slots mid-write (or torn by a racing overwrite)
    /// are skipped, never invented; concurrent pushes make the
    /// snapshot a *recent* tail, not a linearization point.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue; // never written, or write in progress
            }
            let mut words = [0u64; RECORD_WORDS];
            for (copy, word) in words.iter_mut().zip(&slot.words) {
                *copy = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // torn by a concurrent overwrite
            }
            records.push(FlightRecord {
                ticket: seq / 2 - 1,
                words,
            });
        }
        records.sort_unstable_by_key(|r| r.ticket);
        records
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pattern(ticket: u64) -> [u64; RECORD_WORDS] {
        std::array::from_fn(|i| ticket.wrapping_mul(RECORD_WORDS as u64) + i as u64)
    }

    #[test]
    fn empty_recorder_snapshots_nothing() {
        let ring = FlightRecorder::new(4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot().is_empty());
        // Zero capacity clamps to one slot instead of panicking.
        assert_eq!(FlightRecorder::new(0).capacity(), 1);
    }

    #[test]
    fn ring_wraps_and_keeps_exactly_the_newest_records() {
        let ring = FlightRecorder::new(8);
        for t in 0..21u64 {
            ring.push(&pattern(t));
        }
        assert_eq!(ring.recorded(), 21);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "a full ring retains exactly capacity");
        let tickets: Vec<u64> = snap.iter().map(|r| r.ticket).collect();
        assert_eq!(tickets, (13..21).collect::<Vec<_>>(), "oldest first");
        for record in &snap {
            assert_eq!(record.words, pattern(record.ticket));
        }
    }

    #[test]
    fn below_capacity_every_record_is_retained() {
        let ring = FlightRecorder::new(16);
        for t in 0..5u64 {
            ring.push(&pattern(t));
        }
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.ticket).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn concurrent_pushes_never_yield_torn_records() {
        // Hammer a small ring from several writers while a reader
        // snapshots continuously: every record a snapshot reports must
        // be internally consistent (all words from one ticket).
        let ring = Arc::new(FlightRecorder::new(4));
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for k in 0..PER_WRITER {
                        // Tickets are claimed inside push; the payload
                        // self-identifies via the first word instead.
                        let base = (w as u64) << 32 | k;
                        ring.push(&std::array::from_fn(|i| {
                            base.wrapping_add(i as u64 * 0x1_0000_0001)
                        }));
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                while ring.recorded() < WRITERS as u64 * PER_WRITER {
                    for record in ring.snapshot() {
                        let base = record.words[0];
                        for (i, &word) in record.words.iter().enumerate() {
                            assert_eq!(
                                word,
                                base.wrapping_add(i as u64 * 0x1_0000_0001),
                                "torn record at ticket {}",
                                record.ticket
                            );
                        }
                    }
                }
            });
        });
        assert_eq!(ring.recorded(), WRITERS as u64 * PER_WRITER);
        assert_eq!(ring.snapshot().len(), 4);
    }
}
