//! `RunReport`: the stable JSON document every instrumented run emits.
//!
//! Schema `wfc-obs/v1` — a single object:
//!
//! ```json
//! {
//!   "schema": "wfc-obs/v1",
//!   "name": "access_bounds",
//!   "counters": {"explorer.interner.hits": 12, ...},
//!   "gauges": {"explorer.bfs.max_level": 5, ...},
//!   "histograms": {
//!     "explorer.bfs.frontier": {"count": 6, "total": 90, "buckets": [[1,1],[3,2],[31,3]]}
//!   },
//!   "spans": [
//!     {"name": "bfs_level", "label": "level=0", "count": 2,
//!      "total_ns": 1234, "min_ns": 400, "max_ns": 834}
//!   ],
//!   "sections": {"access_bounds": {...domain-specific...}}
//! }
//! ```
//!
//! `counters`/`gauges`/`histograms` keys are sorted by name and `spans`
//! entries by `(name, label)`, so a report's rendering is deterministic
//! given the same measurements. `sections` holds domain payloads (paper
//! quantities like `D`, per-register `r_b`/`w_b`; bench medians) in
//! whatever insertion order the producer chose.

use std::path::PathBuf;

use crate::json::Json;
use crate::metrics::{Registry, Snapshot};
use crate::span::{self, SpanStat};

/// The schema identifier stamped into every report.
pub const SCHEMA: &str = "wfc-obs/v1";

/// One run's worth of measurements, ready to serialize.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Report name; becomes the file stem under `WFC_OBS_JSON`.
    pub name: String,
    /// Metrics snapshot (counters, gauges, histograms).
    pub snapshot: Snapshot,
    /// Merged span aggregates, sorted by `(name, label)`.
    pub spans: Vec<SpanStat>,
    /// Domain-specific payloads keyed by section name.
    pub sections: Vec<(String, Json)>,
}

impl RunReport {
    /// A new, empty report named `name`.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_owned(),
            ..RunReport::default()
        }
    }

    /// Collects the global registry snapshot and drains all spans into a
    /// report named `name`. The registry is reset afterwards so
    /// consecutive runs in one process do not bleed into each other.
    pub fn collect(name: &str) -> RunReport {
        let registry = Registry::global();
        let snapshot = registry.snapshot();
        registry.reset();
        RunReport {
            name: name.to_owned(),
            snapshot,
            spans: span::drain(),
            sections: Vec::new(),
        }
    }

    /// Attaches (or replaces) a domain-specific section.
    pub fn section(&mut self, key: &str, value: Json) -> &mut Self {
        if let Some(slot) = self.sections.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.sections.push((key.to_owned(), value));
        }
        self
    }

    /// The report as a schema-`wfc-obs/v1` JSON value.
    pub fn to_json(&self) -> Json {
        let counters = self
            .snapshot
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect();
        let gauges = self
            .snapshot
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::I64(*v)))
            .collect();
        let histograms = self
            .snapshot
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(ub, n)| Json::Arr(vec![Json::U64(*ub), Json::U64(*n)]))
                    .collect();
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::U64(h.count)),
                        ("total", Json::U64(h.total)),
                        ("buckets", Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.clone())),
                    ("label", Json::Str(s.label.clone())),
                    ("count", Json::U64(s.count)),
                    ("total_ns", Json::U64(s.total_ns)),
                    ("min_ns", Json::U64(s.min_ns)),
                    ("max_ns", Json::U64(s.max_ns)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_owned())),
            ("name", Json::Str(self.name.clone())),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
            ("spans", Json::Arr(spans)),
            ("sections", Json::Obj(self.sections.clone())),
        ])
    }

    /// The serialized report (compact JSON plus a trailing newline).
    pub fn render(&self) -> String {
        let mut text = self.to_json().render();
        text.push('\n');
        text
    }

    /// Emits the report: if `WFC_OBS_JSON` names a directory, writes
    /// `<dir>/<name>.json` (creating the directory, overwriting the
    /// file); otherwise prints to stderr. Returns the path written, if
    /// any. IO errors are reported on stderr rather than panicking —
    /// observability must never take down the run it watches.
    pub fn emit(&self) -> Option<PathBuf> {
        match std::env::var_os("WFC_OBS_JSON") {
            Some(dir) if !dir.is_empty() => {
                let dir = PathBuf::from(dir);
                let path = dir.join(format!("{}.json", sanitize_name(&self.name)));
                let write = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, self.render()));
                match write {
                    Ok(()) => Some(path),
                    Err(e) => {
                        eprintln!("wfc-obs: cannot write {}: {e}", path.display());
                        None
                    }
                }
            }
            _ => {
                eprint!("{}", self.render());
                None
            }
        }
    }
}

/// Maps a report name to a safe file stem: alphanumerics, `-`, `_`, `.`
/// pass through; everything else becomes `_`.
fn sanitize_name(name: &str) -> String {
    let mapped: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if mapped.is_empty() {
        "report".to_owned()
    } else {
        mapped
    }
}

/// Validates a parsed JSON document against the `wfc-obs/v1` schema.
/// Returns a description of the first problem found.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` string")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    doc.get("name")
        .and_then(Json::as_str)
        .ok_or("missing `name` string")?;
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing `counters` object")?;
    for (k, v) in counters {
        v.as_u64()
            .ok_or_else(|| format!("counter `{k}` is not a non-negative integer"))?;
    }
    let gauges = doc
        .get("gauges")
        .and_then(Json::as_obj)
        .ok_or("missing `gauges` object")?;
    for (k, v) in gauges {
        if v.as_f64().is_none() {
            return Err(format!("gauge `{k}` is not a number"));
        }
    }
    let histograms = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("missing `histograms` object")?;
    for (k, h) in histograms {
        let count = h
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram `{k}` missing `count`"))?;
        h.get("total")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram `{k}` missing `total`"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histogram `{k}` missing `buckets`"))?;
        let mut bucket_sum = 0u64;
        let mut last_ub = None;
        for b in buckets {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histogram `{k}` bucket is not a pair"))?;
            let ub = pair[0]
                .as_u64()
                .ok_or_else(|| format!("histogram `{k}` bucket bound is not an integer"))?;
            let n = pair[1]
                .as_u64()
                .ok_or_else(|| format!("histogram `{k}` bucket count is not an integer"))?;
            if last_ub.is_some_and(|prev| ub <= prev) {
                return Err(format!("histogram `{k}` bucket bounds not increasing"));
            }
            last_ub = Some(ub);
            bucket_sum += n;
        }
        if bucket_sum != count {
            return Err(format!(
                "histogram `{k}` bucket counts sum to {bucket_sum}, `count` says {count}"
            ));
        }
    }
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing `spans` array")?;
    for s in spans {
        s.get("name")
            .and_then(Json::as_str)
            .ok_or("span missing `name`")?;
        s.get("label")
            .and_then(Json::as_str)
            .ok_or("span missing `label`")?;
        for field in ["count", "total_ns", "min_ns", "max_ns"] {
            s.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("span missing `{field}`"))?;
        }
    }
    doc.get("sections")
        .and_then(Json::as_obj)
        .ok_or("missing `sections` object")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn collected_report_round_trips_and_validates() {
        let _l = crate::tests::test_lock();
        crate::set_enabled(true);
        Registry::global().reset();
        span::reset();
        crate::counter!("t.report.configs", 17);
        crate::gauge_max!("t.report.depth", 5);
        crate::histogram!("t.report.frontier", 12);
        {
            let _g = crate::span!("t.report.level", level = 0);
        }
        crate::set_enabled(false);

        let mut report = RunReport::collect("unit test: report");
        report.section(
            "paper",
            Json::obj(vec![("D", Json::U64(3)), ("n", Json::U64(2))]),
        );
        let text = report.render();
        let doc = json::parse(&text).unwrap();
        validate(&doc).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(doc.get("name").unwrap().as_str(), Some("unit test: report"));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("t.report.configs")
                .unwrap()
                .as_u64(),
            Some(17)
        );
        assert_eq!(
            doc.get("sections")
                .unwrap()
                .get("paper")
                .unwrap()
                .get("D")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("label").unwrap().as_str(), Some("level=0"));

        // collect() resets the registry: a second collect is empty.
        let again = RunReport::collect("again");
        assert!(again.snapshot.counters.is_empty());
        assert!(again.spans.is_empty());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let ok = RunReport::new("x").to_json();
        validate(&ok).unwrap();

        let cases = [
            ("{}", "missing `schema`"),
            (
                "{\"schema\":\"wfc-obs/v0\",\"name\":\"x\"}",
                "wrong schema version",
            ),
            (
                "{\"schema\":\"wfc-obs/v1\",\"counters\":{}}",
                "missing name",
            ),
        ];
        for (text, why) in cases {
            let doc = json::parse(text).unwrap();
            assert!(validate(&doc).is_err(), "{why}");
        }

        // Histogram whose bucket counts disagree with `count`.
        let bad = json::parse(
            r#"{"schema":"wfc-obs/v1","name":"x","counters":{},"gauges":{},
                "histograms":{"h":{"count":5,"total":9,"buckets":[[1,1],[3,2]]}},
                "spans":[],"sections":{}}"#,
        )
        .unwrap();
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("sum to 3"), "{err}");
    }

    #[test]
    fn sanitize_keeps_reports_on_disk_friendly() {
        assert_eq!(sanitize_name("BENCH_explore/tas"), "BENCH_explore_tas");
        assert_eq!(sanitize_name("access_bounds"), "access_bounds");
        assert_eq!(sanitize_name(""), "report");
    }
}
