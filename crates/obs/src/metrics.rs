//! The metrics registry: named atomic counters, gauges, and
//! power-of-two-bucket histograms.
//!
//! Registration (first use of a name) takes a short mutex on the name
//! table; every *update* after that is a single lock-free atomic
//! operation on the instrument itself, so call sites that keep the
//! returned [`Counter`]/[`Gauge`]/[`Histogram`] handle pay no lock at
//! all on the hot path. Snapshots are sorted by name, so rendering is
//! deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge tracking the maximum value ever recorded (and the
/// last explicitly set value wins over nothing).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Raises the gauge to `value` if it is larger than the current one.
    #[inline]
    pub fn record_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Overwrites the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucket histogram over `u64` values (tree depths,
/// frontier sizes, per-level wall times in nanoseconds, …).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total: AtomicU64,
}

/// The bucket index a value lands in: `0` for `0`, else
/// `64 - leading_zeros(v)` — so `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, …
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` admits (its inclusive upper bound).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the histogram (relaxed reads; exact
    /// once all writers have quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram: observation count, value sum,
/// and the nonzero buckets as `(inclusive upper bound, count)` pairs in
/// increasing bound order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub total: u64,
    /// Nonzero buckets as `(upper_bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the bound of
    /// the first bucket at which the cumulative count reaches
    /// `ceil(q · count)`. With power-of-two buckets the true value lies
    /// within 2× below the returned bound. `None` on an empty
    /// histogram or a `q` outside the unit interval.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(upper_bound, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return Some(upper_bound);
            }
        }
        self.buckets.last().map(|&(upper_bound, _)| upper_bound)
    }
}

/// A point-in-time copy of the whole registry, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-wide table of named instruments.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The global registry every macro site and instrumented crate uses.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, creating it on first use. Keep the
    /// handle to update lock-free on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            Self::lock(&self.counters)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(Self::lock(&self.gauges).entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            Self::lock(&self.histograms)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// A sorted copy of every instrument's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Self::lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: Self::lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: Self::lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered instrument. Handles returned earlier keep
    /// working but are no longer visible to [`Registry::snapshot`];
    /// intended for tests and for resetting between reports.
    pub fn reset(&self) {
        Self::lock(&self.counters).clear();
        Self::lock(&self.gauges).clear();
        Self::lock(&self.histograms).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_upper_bound_walks_cumulative_buckets() {
        let reg = Registry::default();
        let h = reg.histogram("t.quantile");
        // 10 observations in bucket ub=1, 80 in ub=127ish, 10 larger.
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..80 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(5_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile_upper_bound(0.50).unwrap();
        let p99 = snap.quantile_upper_bound(0.99).unwrap();
        assert!((100..1_000).contains(&p50), "p50 bound {p50}");
        assert!(p99 >= 5_000, "p99 bound {p99}");
        assert_eq!(snap.quantile_upper_bound(0.0).unwrap(), snap.buckets[0].0);
        assert_eq!(snap.quantile_upper_bound(1.5), None);
        let empty = HistogramSnapshot {
            count: 0,
            total: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Registry::default();
        let c = reg.counter("t.concurrent");
        const WORKERS: usize = 8;
        const PER_WORKER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER_WORKER {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), WORKERS as u64 * PER_WORKER);
        assert_eq!(
            reg.snapshot().counters,
            vec![("t.concurrent".to_owned(), WORKERS as u64 * PER_WORKER)]
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_hit_at_the_edges() {
        // 0 lands alone in bucket 0; each power of two opens a bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.total, 25);
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1)],
            "exact-boundary values land on the low side of each bucket"
        );
    }

    #[test]
    fn gauge_tracks_the_maximum() {
        let g = Gauge::default();
        g.record_max(3);
        g.record_max(9);
        g.record_max(5);
        assert_eq!(g.get(), 9);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let reg = Registry::default();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.h").record(4);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a.first", "z.last"]
        );
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
