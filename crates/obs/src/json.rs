//! A minimal hand-rolled JSON value, writer, and parser.
//!
//! The workspace builds offline, so there is no `serde`; this module
//! covers exactly what the run-report pipeline needs: construction of
//! values with deterministic key order (objects are ordered pairs, not
//! maps), compact rendering with correct string escaping, and a strict
//! recursive-descent parser for reading reports back (the bench
//! aggregator and the `--check` schema validator).

use std::fmt;

/// A JSON value. Object keys keep insertion order, so rendering is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (parsers produce this only for values < 0).
    I64(i64),
    /// A floating-point number (must be finite to render).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(n) => Some(n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value's pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders this value compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(n) => {
                debug_assert!(n.is_finite(), "JSON cannot represent {n}");
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_owned(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected `{}`", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("non-ASCII \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    b if b < 0x80 => 1,
                    b if b >= 0xf0 => 4,
                    b if b >= 0xe0 => 3,
                    _ => 2,
                };
                let text =
                    std::str::from_utf8(&s[..ch_len]).map_err(|_| err("invalid UTF-8", *pos))?;
                out.push_str(text);
                *pos += ch_len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(err("expected a number", start));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::I64(n));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| err("malformed number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let doc = Json::obj(vec![
            ("name", Json::Str("explorer \"x\"\n".to_owned())),
            ("count", Json::U64(42)),
            ("delta", Json::I64(-7)),
            ("ratio", Json::F64(1.5)),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
            (
                "buckets",
                Json::Arr(vec![
                    Json::Arr(vec![Json::U64(1), Json::U64(3)]),
                    Json::Arr(vec![Json::U64(7), Json::U64(2)]),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("name").unwrap().as_str(), Some("explorer \"x\"\n"));
        assert_eq!(back.get("buckets").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("-").is_err());
    }

    #[test]
    fn numbers_classify_by_sign_and_fraction() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Json::I64(-3));
        assert_eq!(parse("2.5").unwrap(), Json::F64(2.5));
    }

    #[test]
    fn unicode_survives_the_round_trip() {
        let doc = Json::Str("π ≈ 3, naïve — ✓".to_owned());
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }
}
