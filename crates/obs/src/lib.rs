//! # `wfc-obs` — zero-dependency tracing and metrics
//!
//! The measurement substrate for the whole workspace: named atomic
//! [`metrics`] (counters, gauges, power-of-two-bucket histograms),
//! lightweight [`span`]s recorded into per-thread buffers that merge
//! deterministically at drain, a hand-rolled [`json`] writer/parser, and
//! a stable [`report::RunReport`] JSON schema that the explorer, the
//! Section 4.2 analyses and the bench harness all emit.
//!
//! The workspace builds fully offline, so this crate depends on nothing
//! but `std` — no `tracing`, no `serde`, no `metrics` facade.
//!
//! ## The zero-cost-when-disabled contract
//!
//! Observability is **off by default**. Every macro site
//! ([`counter!`](crate::counter), [`gauge_max!`](crate::gauge_max),
//! [`gauge_set!`](crate::gauge_set), [`histogram!`](crate::histogram),
//! [`span!`](crate::span)) first loads
//! one global `AtomicBool` ([`enabled`], a relaxed load) and does nothing
//! else when it is `false`: no registry lookup, no allocation, no name
//! ever registered. A disabled run therefore leaves the registry
//! *empty*, which the test suite asserts. Instrumented call paths that
//! carry their own knob (`ExploreOptions::obs` in `wfc-explorer`) check
//! that flag instead, with the same contract.
//!
//! Enable globally with `WFC_OBS=1`, or programmatically with
//! [`set_enabled`]. Set `WFC_OBS_JSON=<dir>` to make every emitted
//! [`report::RunReport`] land in `<dir>/<name>.json` instead of stderr.
//!
//! ## Determinism
//!
//! Instrumentation never feeds back into the instrumented computation:
//! the registry and the span collector are write-only side channels, so
//! instrumented runs produce bit-identical results to uninstrumented
//! ones at any thread count (`tests/parallel_differential.rs` in the
//! workspace root proves this). Span *merge* is deterministic too — see
//! [`span::drain`] for the rule.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let on = std::env::var_os("WFC_OBS")
            .is_some_and(|v| !v.is_empty() && v != *"0" && v != *"false");
        if on {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// `true` if global observability is on (`WFC_OBS=1` or [`set_enabled`]).
///
/// One relaxed atomic load on the hot path; the environment is consulted
/// exactly once per process.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global observability on or off, overriding `WFC_OBS`.
pub fn set_enabled(on: bool) {
    init_from_env(); // settle the env read so it cannot clobber this later
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` if some emission destination is configured: either global
/// observability is on (reports go to stderr) or `WFC_OBS_JSON` names a
/// directory for them.
pub fn emission_requested() -> bool {
    enabled() || std::env::var_os("WFC_OBS_JSON").is_some()
}

/// Increments a named counter by 1 (or by an explicit delta) when global
/// observability is enabled; a single relaxed load otherwise.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::metrics::Registry::global()
                .counter($name)
                .add($delta as u64);
        }
    };
}

/// Raises a named gauge to at least `$value` when global observability
/// is enabled; a single relaxed load otherwise.
#[macro_export]
macro_rules! gauge_max {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::metrics::Registry::global()
                .gauge($name)
                .record_max($value as i64);
        }
    };
}

/// Sets a named gauge to exactly `$value` when global observability is
/// enabled; a single relaxed load otherwise. Use for live state that
/// goes both up and down (queue depth, open entries, in-flight count) —
/// [`gauge_max!`](crate::gauge_max) for high-water marks.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::metrics::Registry::global()
                .gauge($name)
                .set($value as i64);
        }
    };
}

/// Records `$value` into a named power-of-two histogram when global
/// observability is enabled; a single relaxed load otherwise.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::metrics::Registry::global()
                .histogram($name)
                .record($value as u64);
        }
    };
}

/// Opens a span that records its wall-clock duration when dropped, if
/// global observability is enabled. Binds to a guard:
///
/// ```
/// # wfc_obs::set_enabled(false);
/// let _g = wfc_obs::span!("bfs_level", level = 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter_if($crate::enabled(), $name, String::new())
    };
    ($name:expr, $key:ident = $value:expr) => {
        $crate::span::enter_if(
            $crate::enabled(),
            $name,
            format!(concat!(stringify!($key), "={}"), $value),
        )
    };
}

#[cfg(test)]
mod tests {
    /// Global-state tests (the enable flag, the registry) must not
    /// interleave; every test that touches them holds this lock.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        let _l = test_lock();
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }

    #[test]
    fn disabled_macro_sites_leave_the_registry_empty() {
        let _l = test_lock();
        let was = enabled();
        set_enabled(false);
        metrics::Registry::global().reset();
        span::reset();
        // An "instrumented but disabled" run: every macro form fires.
        for k in 0..100u64 {
            counter!("test.disabled_counter");
            counter!("test.disabled_counter_delta", k);
            gauge_max!("test.disabled_gauge", k);
            gauge_set!("test.disabled_gauge_set", k);
            histogram!("test.disabled_hist", k);
            let _g = span!("test.disabled_span", k = k);
        }
        let snap = metrics::Registry::global().snapshot();
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert!(snap.gauges.is_empty(), "{:?}", snap.gauges);
        assert!(snap.histograms.is_empty(), "{:?}", snap.histograms);
        // The disabled drain is lock-free: one relaxed load decides
        // there is nothing pending, and the span registry lock is
        // never taken.
        let locks_before = span::registry_locks();
        assert!(span::drain().is_empty());
        assert_eq!(
            span::registry_locks(),
            locks_before,
            "a disabled drain must not touch the registry lock"
        );
        set_enabled(was);
    }

    #[test]
    fn enabled_macro_sites_record() {
        let _l = test_lock();
        let was = enabled();
        set_enabled(true);
        metrics::Registry::global().reset();
        span::reset();
        counter!("test.enabled_counter");
        counter!("test.enabled_counter", 4);
        gauge_max!("test.enabled_gauge", 7);
        gauge_max!("test.enabled_gauge", 3);
        histogram!("test.enabled_hist", 5);
        {
            let _g = span!("test.enabled_span", level = 2);
        }
        let snap = metrics::Registry::global().snapshot();
        assert_eq!(snap.counters, vec![("test.enabled_counter".into(), 5)]);
        assert_eq!(snap.gauges, vec![("test.enabled_gauge".into(), 7)]);
        assert_eq!(snap.histograms.len(), 1);
        let spans = span::drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.enabled_span");
        assert_eq!(spans[0].label, "level=2");
        assert_eq!(spans[0].count, 1);
        metrics::Registry::global().reset();
        set_enabled(was);
    }
}
