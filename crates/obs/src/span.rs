//! Lightweight spans: monotonic start/stop pairs recorded into
//! per-thread buffers, merged deterministically at drain.
//!
//! A span is opened with [`enter`] (or the [`span!`](crate::span) macro)
//! and records its wall-clock duration into the *current thread's*
//! buffer when the returned [`SpanGuard`] drops — no cross-thread
//! synchronisation on the hot path. Buffers flush when their thread
//! exits (scoped explorer workers exit before their spawner resumes)
//! and when [`drain`] runs on the calling thread.
//!
//! ## The wait-free flush path
//!
//! A flush used to append into a global `Mutex<Vec<_>>` collector;
//! it now publishes through a `wfc-waitfree` snapshot channel (a triple
//! buffer of boxed batches). Each thread owns one publisher; the global
//! registry holds the matching subscribers and is locked only twice per
//! thread lifetime on the producer side — once to register, never again
//! — so a flush is a single wait-free publication regardless of how
//! many threads flush or drain concurrently.
//!
//! The triple buffer is *lossy* (a reader sees the latest snapshot, not
//! every one), so publications are **cumulative**: every flush
//! publishes the thread's full record list, and the drainer remembers
//! per-slot how many records it has already consumed. An overwritten
//! intermediate snapshot is then harmless — the surviving one is a
//! superset. A global [`PENDING`] counter (published minus consumed)
//! lets a drain with nothing to collect return after one relaxed load,
//! without touching the registry lock at all — the disabled path of the
//! zero-cost contract.
//!
//! ## The deterministic merge rule
//!
//! [`drain`] aggregates all records by `(name, label)` and returns the
//! aggregates sorted by that key. Which *thread* produced a record never
//! enters the key, and per-key counts depend only on the work performed,
//! so two runs of the same workload at the same thread count drain to
//! the same set of keys with the same counts — only the nanosecond
//! figures vary. Instrumented computations themselves are unaffected:
//! spans are a write-only side channel.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wfc_waitfree::{snapshot, SnapshotPublisher, SnapshotSubscriber};

/// One closed span, as buffered per thread.
#[derive(Clone, Debug)]
struct SpanRecord {
    name: &'static str,
    label: String,
    dur_ns: u64,
}

/// The drainer's half of one thread's snapshot channel.
struct RegEntry {
    sub: SnapshotSubscriber<Vec<SpanRecord>>,
    /// How many records of the cumulative batch are already merged.
    consumed: usize,
    /// Set by the publishing thread after its final flush; the entry is
    /// pruned at the next drain.
    retired: Arc<AtomicBool>,
}

static REGISTRY: Mutex<Vec<RegEntry>> = Mutex::new(Vec::new());

/// Records published but not yet consumed by a drain, summed over all
/// slots. A relaxed zero here proves a drain has nothing to collect.
static PENDING: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
static REGISTRY_LOCKS: AtomicUsize = AtomicUsize::new(0);

fn registry() -> std::sync::MutexGuard<'static, Vec<RegEntry>> {
    #[cfg(test)]
    REGISTRY_LOCKS.fetch_add(1, Ordering::Relaxed);
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// How many times the registry lock has been taken (zero-cost tests
/// assert a disabled drain leaves this unchanged).
#[cfg(test)]
pub(crate) fn registry_locks() -> usize {
    REGISTRY_LOCKS.load(Ordering::Relaxed)
}

/// Published-but-unconsumed record count (tests use it to wait for
/// worker flushes, which land in thread-local destructors).
#[cfg(test)]
pub(crate) fn pending_records() -> usize {
    PENDING.load(Ordering::Relaxed)
}

/// This thread's span buffer and (once it has flushed) its publisher.
struct LocalBuf {
    records: Vec<SpanRecord>,
    /// Prefix of `records` already published (and counted in PENDING).
    published: usize,
    slot: Option<Slot>,
}

struct Slot {
    publisher: SnapshotPublisher<Vec<SpanRecord>>,
    retired: Arc<AtomicBool>,
}

impl LocalBuf {
    /// Publishes the cumulative record list. Wait-free except for the
    /// first flush of the thread's lifetime, which registers the
    /// subscriber half with the drainer.
    fn flush(&mut self) {
        if self.records.len() == self.published {
            return;
        }
        let slot = self.slot.get_or_insert_with(|| {
            let (publisher, sub) = snapshot(Vec::new);
            let retired = Arc::new(AtomicBool::new(false));
            registry().push(RegEntry {
                sub,
                consumed: 0,
                retired: Arc::clone(&retired),
            });
            Slot { publisher, retired }
        });
        // Count before publishing: a racing drain may then see PENDING
        // overshoot and take nothing (it retries later), but can never
        // consume records before they are counted — so PENDING never
        // underflows.
        PENDING.fetch_add(self.records.len() - self.published, Ordering::Relaxed);
        let records = &self.records;
        slot.publisher.publish_with(|batch| {
            batch.clear();
            batch.extend_from_slice(records);
        });
        self.published = self.records.len();
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
        if let Some(slot) = &self.slot {
            // Release: the final publication above is ordered before
            // the retirement flag a pruning drain acquires.
            slot.retired.store(true, Ordering::Release);
        }
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf {
            records: Vec::new(),
            published: 0,
            slot: None,
        })
    };
}

/// An open span; records its duration on drop. Inert (and free) when
/// created with recording off.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a `let _g`"]
pub struct SpanGuard {
    open: Option<(&'static str, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, label, start)) = self.open.take() {
            let rec = SpanRecord {
                name,
                label,
                dur_ns: start.elapsed().as_nanos() as u64,
            };
            // A thread-local at destruction time (thread teardown) would
            // panic on access; spans are only opened from live code, so
            // plain access is fine.
            BUF.with(|b| b.borrow_mut().records.push(rec));
        }
    }
}

/// Opens a span named `name` with a free-form `label` (e.g. `"level=3"`).
pub fn enter(name: &'static str, label: String) -> SpanGuard {
    SpanGuard {
        open: Some((name, label, Instant::now())),
    }
}

/// Opens a span only when `on` is true; otherwise returns an inert guard.
pub fn enter_if(on: bool, name: &'static str, label: String) -> SpanGuard {
    if on {
        enter(name, label)
    } else {
        SpanGuard { open: None }
    }
}

/// Like [`enter_if`], but builds the label lazily — disabled call sites
/// pay neither the allocation nor the formatting.
pub fn enter_lazy(on: bool, name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if on {
        enter(name, label())
    } else {
        SpanGuard { open: None }
    }
}

/// The aggregate of all records sharing one `(name, label)` key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// The span's name.
    pub name: String,
    /// The span's label (may be empty).
    pub label: String,
    /// Number of records merged into this aggregate.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub min_ns: u64,
    /// Shortest single duration, nanoseconds.
    pub max_ns: u64,
    /// Longest single duration, nanoseconds.
    pub total_ns: u64,
}

/// Refreshes every registered slot, collecting records past each slot's
/// consumed watermark; prunes slots whose thread has retired. `discard`
/// skips the collection (for [`reset`]) but still advances watermarks.
fn collect(records: &mut Vec<SpanRecord>, discard: bool) {
    let mut reg = registry();
    reg.retain_mut(|entry| {
        // Load retirement *before* refreshing: if the flag is already
        // set, the publisher's final flush happened before it (release/
        // acquire), so the refresh below observes the complete batch
        // and pruning loses nothing.
        let retired = entry.retired.load(Ordering::Acquire);
        entry.sub.refresh();
        let consumed = entry.consumed;
        let len = entry.sub.with(|batch| {
            // `min` guards the invariant defensively; cumulative
            // publication means a batch never shrinks.
            let from = consumed.min(batch.len());
            if !discard {
                records.extend_from_slice(&batch[from..]);
            }
            batch.len()
        });
        if len > consumed {
            PENDING.fetch_sub(len - consumed, Ordering::Relaxed);
        }
        entry.consumed = len;
        !retired
    });
}

/// Flushes the calling thread's buffer, takes every published record,
/// and merges them into per-`(name, label)` aggregates sorted by that
/// key — the deterministic merge rule (see the module docs).
///
/// With nothing recorded anywhere (in particular, whenever observability
/// is disabled) this is one thread-local check and one relaxed load —
/// no lock is taken.
pub fn drain() -> Vec<SpanStat> {
    BUF.with(|b| b.borrow_mut().flush());
    if PENDING.load(Ordering::Relaxed) == 0 {
        return Vec::new();
    }
    let mut records = Vec::new();
    collect(&mut records, false);
    let mut merged: BTreeMap<(String, String), SpanStat> = BTreeMap::new();
    for r in records {
        merged
            .entry((r.name.to_owned(), r.label.clone()))
            .and_modify(|s| {
                s.count += 1;
                s.total_ns += r.dur_ns;
                s.min_ns = s.min_ns.min(r.dur_ns);
                s.max_ns = s.max_ns.max(r.dur_ns);
            })
            .or_insert_with(|| SpanStat {
                name: r.name.to_owned(),
                label: r.label,
                count: 1,
                total_ns: r.dur_ns,
                min_ns: r.dur_ns,
                max_ns: r.dur_ns,
            });
    }
    merged.into_values().collect()
}

/// Discards the calling thread's unpublished records and every
/// published-but-undrained record.
pub fn reset() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        // Keep the already-published prefix: the cumulative batch must
        // never shrink below a drainer's consumed watermark. The prefix
        // is never delivered again — the watermark is already past it.
        let published = b.published;
        b.records.truncate(published);
    });
    if PENDING.load(Ordering::Relaxed) == 0 {
        return;
    }
    collect(&mut Vec::new(), true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_from_scoped_threads_merge_deterministically() {
        let _l = crate::tests::test_lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for level in 0..3u32 {
                        let _g = enter("t.bfs_level", format!("level={level}"));
                    }
                });
            }
        });
        // Worker buffers publish in thread-local destructors, which the
        // platform may complete *after* the scope join observes thread
        // exit — wait for all 12 records to be pending.
        for _ in 0..1000 {
            if pending_records() >= 12 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = drain();
        assert_eq!(stats.len(), 3, "{stats:?}");
        for (i, st) in stats.iter().enumerate() {
            assert_eq!(st.name, "t.bfs_level");
            assert_eq!(st.label, format!("level={i}"), "sorted by (name, label)");
            assert_eq!(st.count, 4, "one record per worker");
            assert!(st.min_ns <= st.max_ns);
            assert!(st.total_ns >= st.max_ns);
        }
        assert!(drain().is_empty(), "drain consumes the records");
    }

    #[test]
    fn inert_guards_record_nothing() {
        let _l = crate::tests::test_lock();
        reset();
        {
            let _g = enter_if(false, "t.inert", String::new());
        }
        assert!(drain().is_empty());
    }

    /// Repeated flush/drain cycles on one thread deliver every record
    /// exactly once — the cumulative-batch watermark bookkeeping.
    #[test]
    fn incremental_drains_deliver_each_record_once() {
        let _l = crate::tests::test_lock();
        reset();
        for round in 0..3u32 {
            {
                let _g = enter("t.incremental", format!("round={round}"));
            }
            let stats = drain();
            assert_eq!(stats.len(), 1, "{stats:?}");
            assert_eq!(stats[0].label, format!("round={round}"));
            assert_eq!(stats[0].count, 1, "no re-delivery from earlier rounds");
        }
        assert!(drain().is_empty());
    }

    /// `reset` discards unpublished and published records alike, and a
    /// thread keeps working after it.
    #[test]
    fn reset_discards_published_and_unpublished_records() {
        let _l = crate::tests::test_lock();
        reset();
        {
            let _g = enter("t.reset.published", String::new());
        }
        let _ = drain(); // force a publish cycle so the slot exists
        {
            let _g = enter("t.reset.unpublished", String::new());
        }
        reset();
        assert!(drain().is_empty(), "reset discarded everything");
        {
            let _g = enter("t.reset.after", String::new());
        }
        let stats = drain();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "t.reset.after");
    }
}
