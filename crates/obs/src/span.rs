//! Lightweight spans: monotonic start/stop pairs recorded into
//! per-thread buffers, merged deterministically at drain.
//!
//! A span is opened with [`enter`] (or the [`span!`](crate::span) macro)
//! and records its wall-clock duration into the *current thread's*
//! buffer when the returned [`SpanGuard`] drops — no cross-thread
//! synchronisation on the hot path. Buffers flush into a global
//! collector when their thread exits (scoped explorer workers exit
//! before their spawner resumes) and when [`drain`] runs on the calling
//! thread.
//!
//! ## The deterministic merge rule
//!
//! [`drain`] aggregates all records by `(name, label)` and returns the
//! aggregates sorted by that key. Which *thread* produced a record never
//! enters the key, and per-key counts depend only on the work performed,
//! so two runs of the same workload at the same thread count drain to
//! the same set of keys with the same counts — only the nanosecond
//! figures vary. Instrumented computations themselves are unaffected:
//! spans are a write-only side channel.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// One closed span, as buffered per thread.
#[derive(Clone, Debug)]
struct SpanRecord {
    name: &'static str,
    label: String,
    dur_ns: u64,
}

static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

struct LocalBuf(Vec<SpanRecord>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_records(std::mem::take(&mut self.0));
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const { RefCell::new(LocalBuf(Vec::new())) };
}

fn flush_records(mut records: Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    COLLECTOR
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .append(&mut records);
}

/// An open span; records its duration on drop. Inert (and free) when
/// created with recording off.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a `let _g`"]
pub struct SpanGuard {
    open: Option<(&'static str, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, label, start)) = self.open.take() {
            let rec = SpanRecord {
                name,
                label,
                dur_ns: start.elapsed().as_nanos() as u64,
            };
            // A thread-local at destruction time (thread teardown) would
            // panic on access; spans are only opened from live code, so
            // plain access is fine.
            BUF.with(|b| b.borrow_mut().0.push(rec));
        }
    }
}

/// Opens a span named `name` with a free-form `label` (e.g. `"level=3"`).
pub fn enter(name: &'static str, label: String) -> SpanGuard {
    SpanGuard {
        open: Some((name, label, Instant::now())),
    }
}

/// Opens a span only when `on` is true; otherwise returns an inert guard.
pub fn enter_if(on: bool, name: &'static str, label: String) -> SpanGuard {
    if on {
        enter(name, label)
    } else {
        SpanGuard { open: None }
    }
}

/// Like [`enter_if`], but builds the label lazily — disabled call sites
/// pay neither the allocation nor the formatting.
pub fn enter_lazy(on: bool, name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if on {
        enter(name, label())
    } else {
        SpanGuard { open: None }
    }
}

/// The aggregate of all records sharing one `(name, label)` key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// The span's name.
    pub name: String,
    /// The span's label (may be empty).
    pub label: String,
    /// Number of records merged into this aggregate.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest single duration, nanoseconds.
    pub min_ns: u64,
    /// Longest single duration, nanoseconds.
    pub max_ns: u64,
}

/// Flushes the calling thread's buffer, takes every collected record,
/// and merges them into per-`(name, label)` aggregates sorted by that
/// key — the deterministic merge rule (see the module docs).
pub fn drain() -> Vec<SpanStat> {
    BUF.with(|b| flush_records(std::mem::take(&mut b.borrow_mut().0)));
    let records = std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()));
    let mut merged: BTreeMap<(String, String), SpanStat> = BTreeMap::new();
    for r in records {
        merged
            .entry((r.name.to_owned(), r.label.clone()))
            .and_modify(|s| {
                s.count += 1;
                s.total_ns += r.dur_ns;
                s.min_ns = s.min_ns.min(r.dur_ns);
                s.max_ns = s.max_ns.max(r.dur_ns);
            })
            .or_insert_with(|| SpanStat {
                name: r.name.to_owned(),
                label: r.label,
                count: 1,
                total_ns: r.dur_ns,
                min_ns: r.dur_ns,
                max_ns: r.dur_ns,
            });
    }
    merged.into_values().collect()
}

/// Discards the calling thread's buffer and every collected record.
pub fn reset() {
    BUF.with(|b| b.borrow_mut().0.clear());
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_from_scoped_threads_merge_deterministically() {
        let _l = crate::tests::test_lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for level in 0..3u32 {
                        let _g = enter("t.bfs_level", format!("level={level}"));
                    }
                });
            }
        });
        // Worker thread-locals flushed at thread exit; nothing buffered
        // on the main thread yet. The flush runs in a thread-local
        // destructor, which the platform may complete *after* the scope
        // join observes thread exit — wait for all 12 records to land.
        for _ in 0..1000 {
            let landed = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).len();
            if landed >= 12 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = drain();
        assert_eq!(stats.len(), 3, "{stats:?}");
        for (i, st) in stats.iter().enumerate() {
            assert_eq!(st.name, "t.bfs_level");
            assert_eq!(st.label, format!("level={i}"), "sorted by (name, label)");
            assert_eq!(st.count, 4, "one record per worker");
            assert!(st.min_ns <= st.max_ns);
            assert!(st.total_ns >= st.max_ns);
        }
        assert!(drain().is_empty(), "drain consumes the records");
    }

    #[test]
    fn inert_guards_record_nothing() {
        let _l = crate::tests::test_lock();
        reset();
        {
            let _g = enter_if(false, "t.inert", String::new());
        }
        assert!(drain().is_empty());
    }
}
