//! Property tests over *random* finite types: the triviality theory of
//! Sections 5.1–5.2 holds on arbitrary deterministic types, not just the
//! canonical zoo.
//!
//! The central property is the machine-checked form of Lemmas 2–4:
//! the Lemma-4 *normal-form* witness search succeeds **iff** the
//! independent closure-based triviality decider says "non-trivial" —
//! i.e. minimal non-trivial pairs in normal form are complete.

use proptest::prelude::*;

use wfc_spec::triviality::{is_trivial, is_trivial_oblivious};
use wfc_spec::witness::find_witness;
use wfc_spec::{FiniteType, PortId, TypeBuilder};

/// A random deterministic 2-port type with up to `max_states` states,
/// `max_invs` invocations and `max_resps` responses.
fn arb_deterministic_type(
    max_states: usize,
    max_invs: usize,
    max_resps: usize,
    oblivious: bool,
) -> impl Strategy<Value = FiniteType> {
    (2..=max_states, 1..=max_invs, 2..=max_resps)
        .prop_flat_map(move |(states, invs, resps)| {
            // One (next_state, response) pair per (state, port, invocation);
            // for oblivious types ports share a table.
            let ports = if oblivious { 1 } else { 2 };
            let table = proptest::collection::vec(
                (0..states, 0..resps),
                states * ports * invs,
            );
            (Just((states, invs, resps, oblivious)), table)
        })
        .prop_map(|((states, invs, resps, oblivious), table)| {
            let mut b = TypeBuilder::new("random", 2);
            let qs: Vec<_> = (0..states).map(|k| b.state(&format!("q{k}"))).collect();
            let is_: Vec<_> = (0..invs).map(|k| b.invocation(&format!("i{k}"))).collect();
            let rs: Vec<_> = (0..resps).map(|k| b.response(&format!("r{k}"))).collect();
            let mut it = table.into_iter();
            let ports = if oblivious { 1 } else { 2 };
            for q in 0..states {
                for port in 0..ports {
                    #[allow(clippy::needless_range_loop)] // i indexes is_
                    for i in 0..invs {
                        let (next, resp) = it.next().expect("table sized exactly");
                        if oblivious {
                            b.oblivious_transition(qs[q], is_[i], qs[next], rs[resp]);
                        } else {
                            b.transition(qs[q], PortId::new(port), is_[i], qs[next], rs[resp]);
                        }
                    }
                }
            }
            b.build().expect("random table is total")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemmas 2–4, machine-checked: normal-form witness search ≡ general
    /// triviality, on arbitrary non-oblivious deterministic types.
    #[test]
    fn witness_search_matches_triviality_decider(
        ty in arb_deterministic_type(5, 3, 3, false)
    ) {
        let trivial = is_trivial(&ty).expect("deterministic");
        let witness = find_witness(&ty).expect("deterministic, two ports");
        prop_assert_eq!(trivial, witness.is_none());
        if let Some(w) = witness {
            prop_assert!(w.verify(&ty));
            prop_assert!(w.k() >= 1);
            prop_assert_eq!(w.total_len(), 2 * w.k() + 1);
        }
    }

    /// On oblivious types the two triviality definitions coincide (for
    /// two or more ports the interference closure reaches every
    /// reachable state).
    #[test]
    fn oblivious_triviality_definitions_coincide(
        ty in arb_deterministic_type(5, 3, 3, true)
    ) {
        let general = is_trivial(&ty).expect("deterministic");
        let oblivious = is_trivial_oblivious(&ty).expect("oblivious deterministic");
        prop_assert_eq!(general, oblivious);
    }

    /// Section 5.1's single-step witness agrees with non-triviality on
    /// oblivious types, and its shape always checks out.
    #[test]
    fn oblivious_witness_shape(
        ty in arb_deterministic_type(5, 3, 3, true)
    ) {
        use wfc_spec::triviality::oblivious_witness;
        match oblivious_witness(&ty).expect("oblivious deterministic") {
            None => prop_assert!(is_trivial_oblivious(&ty).unwrap()),
            Some(w) => {
                let port = PortId::new(0);
                prop_assert_eq!(ty.step(w.unset, port, w.step_inv).next, w.set);
                let r_q = ty.step(w.unset, port, w.probe_inv).resp;
                let r_p = ty.step(w.set, port, w.probe_inv).resp;
                prop_assert_eq!(r_q, w.resp_unset);
                prop_assert_ne!(r_q, r_p);
            }
        }
    }

    /// Reachability is transitive and inclusive.
    #[test]
    fn reachability_is_transitive(
        ty in arb_deterministic_type(6, 3, 3, false)
    ) {
        for q in ty.states() {
            let reach_q = ty.reachable_from(q);
            prop_assert!(reach_q.contains(&q));
            for &q2 in &reach_q {
                for q3 in ty.reachable_from(q2) {
                    prop_assert!(
                        reach_q.contains(&q3),
                        "reach({}) missing {} via {}", q, q3, q2
                    );
                }
            }
        }
    }

    /// Every enumerated history is legal and runs to its recorded end
    /// state.
    #[test]
    fn enumerated_histories_are_legal(
        ty in arb_deterministic_type(4, 2, 3, false)
    ) {
        let start = ty.states().next().unwrap();
        for h in wfc_spec::enumerate_histories(&ty, start, 3) {
            prop_assert!(h.is_legal(&ty));
            prop_assert_eq!(h.len(), 3);
        }
    }

    /// The text format round-trips arbitrary (even non-oblivious)
    /// deterministic types exactly.
    #[test]
    fn text_format_round_trips_random_types(
        ty in arb_deterministic_type(5, 3, 3, false)
    ) {
        let src = wfc_spec::text::format_type(&ty);
        let back = wfc_spec::text::parse_type(&src).expect("formatter output parses");
        prop_assert_eq!(back, ty);
    }

    /// The interference closure is monotone and sound: it contains its
    /// seed and is closed under other-port transitions.
    #[test]
    fn interference_closure_is_a_closure(
        ty in arb_deterministic_type(5, 3, 3, false)
    ) {
        use std::collections::BTreeSet;
        let q = ty.states().next().unwrap();
        let port = PortId::new(0);
        let seed: BTreeSet<_> = [q].into();
        let clo = ty.interference_closure(&seed, port);
        prop_assert!(clo.contains(&q));
        for &s in &clo {
            for j in ty.port_ids().filter(|&j| j != port) {
                for i in ty.invocations() {
                    for out in ty.outcomes(s, j, i) {
                        prop_assert!(clo.contains(&out.next));
                    }
                }
            }
        }
    }
}
