//! Property tests over *random* finite types: the triviality theory of
//! Sections 5.1–5.2 holds on arbitrary deterministic types, not just the
//! canonical zoo.
//!
//! The central property is the machine-checked form of Lemmas 2–4:
//! the Lemma-4 *normal-form* witness search succeeds **iff** the
//! independent closure-based triviality decider says "non-trivial" —
//! i.e. minimal non-trivial pairs in normal form are complete.
//!
//! Random cases are drawn from the in-repo [`SplitMix64`] generator
//! (the workspace builds offline, without a property-testing framework);
//! every case is reproducible from the seed in the assertion message.

use wfc_spec::prng::SplitMix64;
use wfc_spec::triviality::{is_trivial, is_trivial_oblivious};
use wfc_spec::witness::find_witness;
use wfc_spec::{FiniteType, PortId, TypeBuilder};

const CASES: u64 = 256;

/// A random deterministic 2-port type with up to `max_states` states,
/// `max_invs` invocations and `max_resps` responses.
fn random_deterministic_type(
    rng: &mut SplitMix64,
    max_states: usize,
    max_invs: usize,
    max_resps: usize,
    oblivious: bool,
) -> FiniteType {
    let states = rng.gen_range(2, max_states + 1);
    let invs = rng.gen_range(1, max_invs + 1);
    let resps = rng.gen_range(2, max_resps + 1);
    let mut b = TypeBuilder::new("random", 2);
    let qs: Vec<_> = (0..states).map(|k| b.state(&format!("q{k}"))).collect();
    let is_: Vec<_> = (0..invs).map(|k| b.invocation(&format!("i{k}"))).collect();
    let rs: Vec<_> = (0..resps).map(|k| b.response(&format!("r{k}"))).collect();
    let ports = if oblivious { 1 } else { 2 };
    for q in 0..states {
        for port in 0..ports {
            #[allow(clippy::needless_range_loop)] // i indexes is_
            for i in 0..invs {
                let next = rng.gen_range(0, states);
                let resp = rng.gen_range(0, resps);
                if oblivious {
                    b.oblivious_transition(qs[q], is_[i], qs[next], rs[resp]);
                } else {
                    b.transition(qs[q], PortId::new(port), is_[i], qs[next], rs[resp]);
                }
            }
        }
    }
    b.build().expect("random table is total")
}

/// Lemmas 2–4, machine-checked: normal-form witness search ≡ general
/// triviality, on arbitrary non-oblivious deterministic types.
#[test]
fn witness_search_matches_triviality_decider() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x7A1D ^ seed);
        let ty = random_deterministic_type(&mut rng, 5, 3, 3, false);
        let trivial = is_trivial(&ty).expect("deterministic");
        let witness = find_witness(&ty).expect("deterministic, two ports");
        assert_eq!(trivial, witness.is_none(), "seed {seed}");
        if let Some(w) = witness {
            assert!(w.verify(&ty), "seed {seed}");
            assert!(w.k() >= 1, "seed {seed}");
            assert_eq!(w.total_len(), 2 * w.k() + 1, "seed {seed}");
        }
    }
}

/// On oblivious types the two triviality definitions coincide (for
/// two or more ports the interference closure reaches every
/// reachable state).
#[test]
fn oblivious_triviality_definitions_coincide() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x0b11 ^ seed);
        let ty = random_deterministic_type(&mut rng, 5, 3, 3, true);
        let general = is_trivial(&ty).expect("deterministic");
        let oblivious = is_trivial_oblivious(&ty).expect("oblivious deterministic");
        assert_eq!(general, oblivious, "seed {seed}");
    }
}

/// Section 5.1's single-step witness agrees with non-triviality on
/// oblivious types, and its shape always checks out.
#[test]
fn oblivious_witness_shape() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x5A7E ^ seed);
        let ty = random_deterministic_type(&mut rng, 5, 3, 3, true);
        use wfc_spec::triviality::oblivious_witness;
        match oblivious_witness(&ty).expect("oblivious deterministic") {
            None => assert!(is_trivial_oblivious(&ty).unwrap(), "seed {seed}"),
            Some(w) => {
                let port = PortId::new(0);
                assert_eq!(
                    ty.step(w.unset, port, w.step_inv).next,
                    w.set,
                    "seed {seed}"
                );
                let r_q = ty.step(w.unset, port, w.probe_inv).resp;
                let r_p = ty.step(w.set, port, w.probe_inv).resp;
                assert_eq!(r_q, w.resp_unset, "seed {seed}");
                assert_ne!(r_q, r_p, "seed {seed}");
            }
        }
    }
}

/// Reachability is transitive and inclusive.
#[test]
fn reachability_is_transitive() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x4ea ^ seed);
        let ty = random_deterministic_type(&mut rng, 6, 3, 3, false);
        for q in ty.states() {
            let reach_q = ty.reachable_from(q);
            assert!(reach_q.contains(&q), "seed {seed}");
            for &q2 in &reach_q {
                for q3 in ty.reachable_from(q2) {
                    assert!(
                        reach_q.contains(&q3),
                        "seed {seed}: reach({q}) missing {q3} via {q2}"
                    );
                }
            }
        }
    }
}

/// Every enumerated history is legal and runs to its recorded end
/// state.
#[test]
fn enumerated_histories_are_legal() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x415 ^ seed);
        let ty = random_deterministic_type(&mut rng, 4, 2, 3, false);
        let start = ty.states().next().unwrap();
        for h in wfc_spec::enumerate_histories(&ty, start, 3) {
            assert!(h.is_legal(&ty), "seed {seed}");
            assert_eq!(h.len(), 3, "seed {seed}");
        }
    }
}

/// The text format round-trips arbitrary (even non-oblivious)
/// deterministic types exactly.
#[test]
fn text_format_round_trips_random_types() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x7337 ^ seed);
        let ty = random_deterministic_type(&mut rng, 5, 3, 3, false);
        let src = wfc_spec::text::format_type(&ty);
        let back = wfc_spec::text::parse_type(&src).expect("formatter output parses");
        assert_eq!(back, ty, "seed {seed}");
    }
}

/// The interference closure is monotone and sound: it contains its
/// seed and is closed under other-port transitions.
#[test]
fn interference_closure_is_a_closure() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0xc10 ^ seed);
        let ty = random_deterministic_type(&mut rng, 5, 3, 3, false);
        use std::collections::BTreeSet;
        let q = ty.states().next().unwrap();
        let port = PortId::new(0);
        let set: BTreeSet<_> = [q].into();
        let clo = ty.interference_closure(&set, port);
        assert!(clo.contains(&q), "seed {seed}");
        for &s in &clo {
            for j in ty.port_ids().filter(|&j| j != port) {
                for i in ty.invocations() {
                    for out in ty.outcomes(s, j, i) {
                        assert!(clo.contains(&out.next), "seed {seed}");
                    }
                }
            }
        }
    }
}
