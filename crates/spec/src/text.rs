//! A plain-text format for finite types.
//!
//! Lets users define concurrent data types without writing Rust — the
//! `wfc` CLI consumes this format. The grammar, line-oriented:
//!
//! ```text
//! # comment (blank lines ignored)
//! type NAME ports N
//! states NAME NAME …
//! invocations NAME NAME …
//! responses NAME NAME …
//! delta STATE PORT INVOCATION -> STATE RESPONSE
//! ```
//!
//! `PORT` is a zero-based port number, or `*` for "every port" (the
//! oblivious shorthand). Repeating a `delta` line for the same
//! (state, port, invocation) with different outcomes makes the type
//! nondeterministic. The transition function must end up total.
//!
//! [`parse_type`] and [`format_type`] round-trip:
//!
//! ```
//! use wfc_spec::{canonical, text};
//!
//! let tas = canonical::test_and_set(2);
//! let src = text::format_type(&tas);
//! let back = text::parse_type(&src)?;
//! assert_eq!(back, tas);
//! # Ok::<(), text::ParseTypeError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::error::BuildTypeError;
use crate::ids::PortId;
use crate::types::{FiniteType, TypeBuilder};

/// An error from [`parse_type`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseTypeError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A section is missing or appears out of order.
    Structure {
        /// What went wrong.
        message: String,
    },
    /// The assembled type was rejected by the builder.
    Build(BuildTypeError),
}

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTypeError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseTypeError::Structure { message } => f.write_str(message),
            ParseTypeError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParseTypeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTypeError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildTypeError> for ParseTypeError {
    fn from(e: BuildTypeError) -> Self {
        ParseTypeError::Build(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseTypeError {
    ParseTypeError::Syntax {
        line,
        message: message.into(),
    }
}

/// Parses a type from the text format.
///
/// # Errors
///
/// Returns [`ParseTypeError`] on malformed input, undeclared names, or a
/// partial transition function.
pub fn parse_type(src: &str) -> Result<FiniteType, ParseTypeError> {
    let mut name: Option<(String, usize)> = None;
    let mut builder: Option<TypeBuilder> = None;
    let mut declared_states: Vec<String> = Vec::new();
    let mut declared_invs: Vec<String> = Vec::new();
    let mut declared_resps: Vec<String> = Vec::new();

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        match keyword {
            "type" => {
                let ty_name = words
                    .next()
                    .ok_or_else(|| syntax(line_no, "expected `type NAME ports N`"))?;
                match (words.next(), words.next()) {
                    (Some("ports"), Some(n)) => {
                        let ports: usize = n
                            .parse()
                            .map_err(|_| syntax(line_no, format!("invalid port count `{n}`")))?;
                        name = Some((ty_name.to_owned(), ports));
                        builder = Some(TypeBuilder::new(ty_name, ports));
                    }
                    _ => return Err(syntax(line_no, "expected `type NAME ports N`")),
                }
            }
            "states" | "invocations" | "responses" => {
                let b = builder.as_mut().ok_or_else(|| ParseTypeError::Structure {
                    message: "`type` line must come first".into(),
                })?;
                for w in words {
                    match keyword {
                        "states" => {
                            b.state(w);
                            declared_states.push(w.to_owned());
                        }
                        "invocations" => {
                            b.invocation(w);
                            declared_invs.push(w.to_owned());
                        }
                        _ => {
                            b.response(w);
                            declared_resps.push(w.to_owned());
                        }
                    }
                }
            }
            "delta" => {
                let b = builder.as_mut().ok_or_else(|| ParseTypeError::Structure {
                    message: "`type` line must come first".into(),
                })?;
                let parts: Vec<&str> = words.collect();
                // STATE PORT INV -> STATE RESP
                if parts.len() != 6 || parts[3] != "->" {
                    return Err(syntax(
                        line_no,
                        "expected `delta STATE PORT INV -> STATE RESP`",
                    ));
                }
                let check = |list: &[String], w: &str, what: &str| {
                    if list.iter().any(|x| x == w) {
                        Ok(())
                    } else {
                        Err(syntax(line_no, format!("undeclared {what} `{w}`")))
                    }
                };
                check(&declared_states, parts[0], "state")?;
                check(&declared_invs, parts[2], "invocation")?;
                check(&declared_states, parts[4], "state")?;
                check(&declared_resps, parts[5], "response")?;
                let from = b.state(parts[0]);
                let inv = b.invocation(parts[2]);
                let to = b.state(parts[4]);
                let resp = b.response(parts[5]);
                if parts[1] == "*" {
                    b.oblivious_transition(from, inv, to, resp);
                } else {
                    let ports = name.as_ref().map(|(_, p)| *p).unwrap_or(0);
                    let port: usize = parts[1]
                        .parse()
                        .map_err(|_| syntax(line_no, format!("invalid port `{}`", parts[1])))?;
                    if port >= ports {
                        return Err(syntax(
                            line_no,
                            format!("port {port} out of range (type has {ports})"),
                        ));
                    }
                    b.transition(from, PortId::new(port), inv, to, resp);
                }
            }
            other => {
                return Err(syntax(
                    line_no,
                    format!(
                    "unknown keyword `{other}` (expected type/states/invocations/responses/delta)"
                ),
                ))
            }
        }
    }

    let builder = builder.ok_or(ParseTypeError::Structure {
        message: "no `type` line found".into(),
    })?;
    Ok(builder.build()?)
}

/// Renders a type in the text format accepted by [`parse_type`].
///
/// Oblivious transitions are written with the `*` port shorthand.
pub fn format_type(ty: &FiniteType) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "type {} ports {}", ty.name(), ty.ports());
    let join = |items: Vec<&str>| items.join(" ");
    let _ = writeln!(
        out,
        "states {}",
        join(ty.states().map(|q| ty.state_name(q)).collect())
    );
    let _ = writeln!(
        out,
        "invocations {}",
        join(ty.invocations().map(|i| ty.invocation_name(i)).collect())
    );
    let _ = writeln!(
        out,
        "responses {}",
        join(ty.responses().map(|r| ty.response_name(r)).collect())
    );
    for q in ty.states() {
        for i in ty.invocations() {
            let first = ty.outcomes(q, PortId::new(0), i);
            let oblivious_here =
                (1..ty.ports()).all(|j| ty.outcomes(q, PortId::new(j), i) == first);
            if oblivious_here {
                for o in first {
                    let _ = writeln!(
                        out,
                        "delta {} * {} -> {} {}",
                        ty.state_name(q),
                        ty.invocation_name(i),
                        ty.state_name(o.next),
                        ty.response_name(o.resp)
                    );
                }
            } else {
                for j in ty.port_ids() {
                    for o in ty.outcomes(q, j, i) {
                        let _ = writeln!(
                            out,
                            "delta {} {} {} -> {} {}",
                            ty.state_name(q),
                            j.index(),
                            ty.invocation_name(i),
                            ty.state_name(o.next),
                            ty.response_name(o.resp)
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical;

    #[test]
    fn parses_a_hand_written_type() {
        let src = "
            # a settable bit
            type bit ports 2
            states zero one
            invocations read set
            responses r0 r1 ok
            delta zero * read -> zero r0
            delta one * read -> one r1
            delta zero * set -> one ok
            delta one * set -> one ok
        ";
        let ty = parse_type(src).unwrap();
        assert_eq!(ty.name(), "bit");
        assert_eq!(ty.ports(), 2);
        assert!(ty.is_deterministic());
        assert!(ty.is_oblivious());
        assert_eq!(ty.state_count(), 2);
    }

    #[test]
    fn round_trips_the_whole_zoo() {
        for ty in canonical::deterministic_zoo(2) {
            let src = format_type(&ty);
            let back = parse_type(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", ty.name()));
            assert_eq!(back, ty, "round trip failed for {}", ty.name());
        }
    }

    #[test]
    fn round_trips_nondeterministic_and_non_oblivious_types() {
        for ty in [canonical::one_use_bit(), canonical::marked_ring(3)] {
            let src = format_type(&ty);
            let back = parse_type(&src).unwrap();
            assert_eq!(back, ty, "round trip failed for {}", ty.name());
        }
    }

    #[test]
    fn undeclared_names_are_rejected() {
        let src = "
            type t ports 1
            states a
            invocations i
            responses r
            delta a * j -> a r
        ";
        let err = parse_type(src).unwrap_err();
        assert!(err.to_string().contains("undeclared invocation"));
    }

    #[test]
    fn partial_delta_is_rejected() {
        let src = "
            type t ports 1
            states a b
            invocations i
            responses r
            delta a * i -> b r
        ";
        assert!(matches!(parse_type(src), Err(ParseTypeError::Build(_))));
    }

    #[test]
    fn out_of_range_port_is_rejected() {
        let src = "
            type t ports 1
            states a
            invocations i
            responses r
            delta a 3 i -> a r
        ";
        let err = parse_type(src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn missing_type_line_is_structural() {
        assert!(matches!(
            parse_type("states a"),
            Err(ParseTypeError::Structure { .. })
        ));
    }

    #[test]
    fn garbage_keyword_is_syntax_error_with_line_number() {
        let err = parse_type("type t ports 1\nbogus x").unwrap_err();
        assert!(err.to_string().starts_with("line 2:"));
    }
}
