//! Deciding triviality of deterministic types (paper, Sections 5.1–5.2).
//!
//! A *trivial* type is one from which processes can gain no information:
//!
//! * **Oblivious definition (Section 5.1).** An oblivious type is trivial
//!   if, for every state `q` and invocation `i`, all states reachable from
//!   `q` return the same response to `i`.
//! * **General definition (Section 5.2).** A type is trivial if, from every
//!   start state and on every port, a sequence of invocations always returns
//!   the same sequence of responses *regardless of invocations performed on
//!   other ports*.
//!
//! Both definitions are decidable for [`FiniteType`]s; this module provides
//! the deciders. The general decider works by tracking the *set* of states
//! the object may be in from the observer's point of view (its
//! [`FiniteType::interference_closure`]) and checking that every such set is
//! response-deterministic. The equivalence of [`is_trivial`] with the
//! witness-based search in [`crate::witness`] is exactly the content of the
//! paper's Lemmas 2–4, and is verified by cross-checking tests.

use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::error::AnalysisError;
use crate::ids::{InvId, PortId, StateId};
use crate::types::FiniteType;

/// Witness that an oblivious deterministic type is non-trivial
/// (paper, Section 5.1).
///
/// There are states `q →^{step_inv} p` one step apart and a probing
/// invocation `probe_inv` whose response distinguishes them:
/// `δ(q, probe_inv).resp = resp_unset ≠ δ(p, probe_inv).resp`.
///
/// The derived one-use bit initializes an object to `q`; the writer performs
/// `step_inv`, and the reader performs `probe_inv`, returning 0 on
/// `resp_unset` and 1 otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObliviousWitness {
    /// The `UNSET` state `q`.
    pub unset: StateId,
    /// The `SET` state `p`, with `δ(q, step_inv).next = p`.
    pub set: StateId,
    /// The writer's invocation `i'`.
    pub step_inv: InvId,
    /// The reader's invocation `i`.
    pub probe_inv: InvId,
    /// The response `r_q` observed when the writer has not written.
    pub resp_unset: crate::ids::RespId,
}

/// Decides the Section 5.1 triviality of an oblivious deterministic type.
///
/// # Errors
///
/// Returns [`AnalysisError::RequiresDeterministic`] or
/// [`AnalysisError::RequiresOblivious`] when the type is outside the class
/// for which the definition is stated.
pub fn is_trivial_oblivious(ty: &FiniteType) -> Result<bool, AnalysisError> {
    Ok(oblivious_witness(ty)?.is_none())
}

/// Searches for a Section 5.1 non-triviality witness.
///
/// Returns `None` exactly when the type is trivial in the oblivious sense.
/// The returned witness always has `set` reachable from `unset` in one step,
/// as the paper observes is possible without loss of generality.
///
/// # Errors
///
/// Returns [`AnalysisError::RequiresDeterministic`] or
/// [`AnalysisError::RequiresOblivious`] when the type is outside the class
/// for which the definition is stated.
pub fn oblivious_witness(ty: &FiniteType) -> Result<Option<ObliviousWitness>, AnalysisError> {
    if !ty.is_deterministic() {
        return Err(AnalysisError::RequiresDeterministic {
            type_name: ty.name().to_owned(),
        });
    }
    if !ty.is_oblivious() {
        return Err(AnalysisError::RequiresOblivious {
            type_name: ty.name().to_owned(),
        });
    }
    let port = PortId::new(0); // oblivious: any port behaves alike
                               // If some q, p with p reachable from q disagree on an invocation's
                               // response, then along the path from q to p some *adjacent* pair
                               // disagrees; so searching adjacent pairs only is complete.
    for q in ty.states() {
        for step_inv in ty.invocations() {
            let p = ty.step(q, port, step_inv).next;
            if p == q {
                continue;
            }
            // Only meaningful if p is "freshly" reachable; q itself is
            // always reachable from q, so compare q vs p directly.
            for probe_inv in ty.invocations() {
                let r_q = ty.step(q, port, probe_inv).resp;
                let r_p = ty.step(p, port, probe_inv).resp;
                if r_q != r_p {
                    return Ok(Some(ObliviousWitness {
                        unset: q,
                        set: p,
                        step_inv,
                        probe_inv,
                        resp_unset: r_q,
                    }));
                }
            }
        }
    }
    Ok(None)
}

/// Decides the Section 5.2 (general) triviality of a deterministic type.
///
/// The decision procedure explores, for every start state and observer
/// port, the family of state *sets* the object may occupy given arbitrary
/// interference on other ports. The type is trivial iff every reachable set
/// is response-deterministic for every observer invocation.
///
/// # Errors
///
/// Returns [`AnalysisError::RequiresDeterministic`] for nondeterministic
/// types; the paper's Section 5 handles those via the `h_m ≥ 2` case
/// instead (Section 5.3).
pub fn is_trivial(ty: &FiniteType) -> Result<bool, AnalysisError> {
    if !ty.is_deterministic() {
        return Err(AnalysisError::RequiresDeterministic {
            type_name: ty.name().to_owned(),
        });
    }
    for start in ty.states() {
        for port in ty.port_ids() {
            if !port_is_trivial(ty, start, port) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Checks response-determinism of `port` from `start` under interference.
fn port_is_trivial(ty: &FiniteType, start: StateId, port: PortId) -> bool {
    let seed: BTreeSet<StateId> = [start].into();
    let initial = ty.interference_closure(&seed, port);
    let mut visited: HashSet<BTreeSet<StateId>> = HashSet::new();
    let mut queue = VecDeque::from([initial.clone()]);
    visited.insert(initial);
    while let Some(set) = queue.pop_front() {
        for inv in ty.invocations() {
            let mut resp = None;
            let mut successors = BTreeSet::new();
            for &s in &set {
                let out = ty.step(s, port, inv);
                match resp {
                    None => resp = Some(out.resp),
                    Some(r) if r != out.resp => return false,
                    Some(_) => {}
                }
                successors.insert(out.next);
            }
            let next = ty.interference_closure(&successors, port);
            if visited.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeBuilder;

    /// |R| = 1: the paper's first example of a trivial type.
    fn single_response() -> FiniteType {
        let mut b = TypeBuilder::new("mute", 2);
        let q0 = b.state("a");
        let q1 = b.state("b");
        let i = b.invocation("poke");
        let ok = b.response("ok");
        b.oblivious_transition(q0, i, q1, ok);
        b.oblivious_transition(q1, i, q0, ok);
        b.build().unwrap()
    }

    /// A settable bit: the archetypal non-trivial type.
    fn settable_bit() -> FiniteType {
        let mut b = TypeBuilder::new("bit", 2);
        let q0 = b.state("0");
        let q1 = b.state("1");
        let read = b.invocation("read");
        let set = b.invocation("set");
        let r0 = b.response("0");
        let r1 = b.response("1");
        let ok = b.response("ok");
        b.oblivious_transition(q0, read, q0, r0);
        b.oblivious_transition(q1, read, q1, r1);
        b.oblivious_transition(q0, set, q1, ok);
        b.oblivious_transition(q1, set, q1, ok);
        b.build().unwrap()
    }

    /// A "private counter": responses vary over time but identically
    /// regardless of interference, because each port sees a fixed response
    /// schedule. Trivial under the general definition even though responses
    /// differ between states.
    fn ticking_clock() -> FiniteType {
        let mut b = TypeBuilder::new("clock", 1);
        let a = b.state("even");
        let c = b.state("odd");
        let tick = b.invocation("tick");
        let r0 = b.response("0");
        let r1 = b.response("1");
        b.oblivious_transition(a, tick, c, r0);
        b.oblivious_transition(c, tick, a, r1);
        b.build().unwrap()
    }

    #[test]
    fn single_response_type_is_trivial_both_ways() {
        let t = single_response();
        assert!(is_trivial_oblivious(&t).unwrap());
        assert!(is_trivial(&t).unwrap());
    }

    #[test]
    fn settable_bit_is_non_trivial_with_witness() {
        let t = settable_bit();
        assert!(!is_trivial_oblivious(&t).unwrap());
        assert!(!is_trivial(&t).unwrap());
        let w = oblivious_witness(&t).unwrap().expect("witness");
        // The witness must satisfy the Section 5.1 shape.
        let port = PortId::new(0);
        assert_eq!(t.step(w.unset, port, w.step_inv).next, w.set);
        let r_q = t.step(w.unset, port, w.probe_inv).resp;
        let r_p = t.step(w.set, port, w.probe_inv).resp;
        assert_eq!(r_q, w.resp_unset);
        assert_ne!(r_q, r_p);
    }

    #[test]
    fn single_port_clock_is_trivial_generally() {
        // With one port there is no interference, so even a state-dependent
        // response schedule is trivial: it is a function of the invocation
        // sequence alone.
        let t = ticking_clock();
        assert!(is_trivial(&t).unwrap());
        // But under the *oblivious* definition it is non-trivial: state
        // `odd` is reachable from `even` and answers `tick` differently.
        assert!(!is_trivial_oblivious(&t).unwrap());
    }

    #[test]
    fn nondeterministic_type_is_rejected() {
        let mut b = TypeBuilder::new("nd", 1);
        let q = b.state("q");
        let i = b.invocation("roll");
        let r0 = b.response("0");
        let r1 = b.response("1");
        b.oblivious_transition(q, i, q, r0);
        b.oblivious_transition(q, i, q, r1);
        let t = b.build().unwrap();
        assert!(matches!(
            is_trivial(&t),
            Err(AnalysisError::RequiresDeterministic { .. })
        ));
        assert!(matches!(
            oblivious_witness(&t),
            Err(AnalysisError::RequiresDeterministic { .. })
        ));
    }

    #[test]
    fn non_oblivious_type_is_rejected_by_oblivious_decider() {
        let mut b = TypeBuilder::new("porty", 2);
        let q = b.state("q");
        let i = b.invocation("whoami");
        let r0 = b.response("0");
        let r1 = b.response("1");
        b.transition(q, PortId::new(0), i, q, r0);
        b.transition(q, PortId::new(1), i, q, r1);
        let t = b.build().unwrap();
        assert!(matches!(
            is_trivial_oblivious(&t),
            Err(AnalysisError::RequiresOblivious { .. })
        ));
        // The general decider accepts it — and finds it trivial, because
        // each port individually always sees the same response.
        assert!(is_trivial(&t).unwrap());
    }

    #[test]
    fn delayed_detection_is_non_trivial_generally() {
        // Port 1's probe only reveals a port-2 write on the *second* probe:
        // unmarked states cycle a0 → a1 → a0 responding x, x; marked states
        // cycle b0 → b1 → b0 responding x, y.
        let mut b = TypeBuilder::new("delayed", 2);
        let a0 = b.state("a0");
        let a1 = b.state("a1");
        let b0 = b.state("b0");
        let b1 = b.state("b1");
        let probe = b.invocation("probe");
        let mark = b.invocation("mark");
        let x = b.response("x");
        let y = b.response("y");
        let ok = b.response("ok");
        for (s, t2, r) in [(a0, a1, x), (a1, a0, x), (b0, b1, x), (b1, b0, y)] {
            b.oblivious_transition(s, probe, t2, r);
        }
        for (s, t2) in [(a0, b0), (a1, b1), (b0, b0), (b1, b1)] {
            b.oblivious_transition(s, mark, t2, ok);
        }
        let t = b.build().unwrap();
        assert!(!is_trivial(&t).unwrap());
    }
}
