//! Sequential histories of a type (paper, Section 2.1).
//!
//! A sequential history from a state `q₀` is an alternating sequence of
//! states and port–invocation–response triples
//! `q₀; ⟨j₁,i₁,r₁⟩; q₁; ⟨j₂,i₂,r₂⟩; q₂; …` such that every step is permitted
//! by the transition function. [`SequentialHistory`] stores the triples and
//! the intermediate states and can be checked for legality against a
//! [`FiniteType`].

use std::fmt;

use crate::ids::{InvId, PortId, RespId, StateId};
use crate::types::{FiniteType, Outcome};

/// One event of a sequential history: the paper's `⟨jₖ, iₖ, rₖ⟩`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    /// Invoking port.
    pub port: PortId,
    /// Invocation performed.
    pub inv: InvId,
    /// Response returned.
    pub resp: RespId,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.port, self.inv, self.resp)
    }
}

/// A sequential history from a start state.
///
/// # Examples
///
/// ```
/// use wfc_spec::{canonical, SequentialHistory, PortId};
///
/// let tas = canonical::test_and_set(2);
/// let q0 = tas.state_id("unset").unwrap();
/// let tas_inv = tas.invocation_id("test_and_set").unwrap();
/// let h = SequentialHistory::run(&tas, q0, &[(PortId::new(0), tas_inv), (PortId::new(1), tas_inv)]);
/// assert_eq!(h.len(), 2);
/// assert!(h.is_legal(&tas));
/// // First test-and-set wins (returns 0), second loses (returns 1).
/// assert_eq!(tas.response_name(h.events()[0].resp), "0");
/// assert_eq!(tas.response_name(h.events()[1].resp), "1");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SequentialHistory {
    start: StateId,
    events: Vec<Event>,
    /// `states[k]` is the state after `events[k]`; `len == events.len()`.
    states: Vec<StateId>,
}

impl SequentialHistory {
    /// Creates the empty history at `start`.
    pub fn new(start: StateId) -> Self {
        SequentialHistory {
            start,
            events: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Runs `ops` (port–invocation pairs) on a deterministic type from
    /// `start` and records the resulting history.
    ///
    /// # Panics
    ///
    /// Panics if the type is nondeterministic along the run.
    pub fn run(ty: &FiniteType, start: StateId, ops: &[(PortId, InvId)]) -> Self {
        let mut h = SequentialHistory::new(start);
        for &(port, inv) in ops {
            let out = ty.step(h.end(), port, inv);
            h.push(port, inv, out);
        }
        h
    }

    /// Appends an event with its outcome.
    pub fn push(&mut self, port: PortId, inv: InvId, outcome: Outcome) {
        self.events.push(Event {
            port,
            inv,
            resp: outcome.resp,
        });
        self.states.push(outcome.next);
    }

    /// The start state `q₀`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The state after the last event (or `q₀` if empty).
    pub fn end(&self) -> StateId {
        self.states.last().copied().unwrap_or(self.start)
    }

    /// The events of the history.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The state reached after each event.
    pub fn states(&self) -> &[StateId] {
        &self.states
    }

    /// The paper's `|H|`: the number of port–invocation–response triples.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The response of the last event, if any. For witness histories this is
    /// the paper's *return value* of the history (Section 5.2).
    pub fn return_value(&self) -> Option<RespId> {
        self.events.last().map(|e| e.resp)
    }

    /// The subsequence of invocations performed on `port`.
    pub fn invocations_on(&self, port: PortId) -> Vec<InvId> {
        self.events
            .iter()
            .filter(|e| e.port == port)
            .map(|e| e.inv)
            .collect()
    }

    /// Checks the history against the transition function: every step must
    /// be an outcome of `δ` (for nondeterministic types, *some* outcome).
    pub fn is_legal(&self, ty: &FiniteType) -> bool {
        let mut q = self.start;
        for (event, &next) in self.events.iter().zip(&self.states) {
            let expected = Outcome {
                next,
                resp: event.resp,
            };
            if !ty.outcomes(q, event.port, event.inv).contains(&expected) {
                return false;
            }
            q = next;
        }
        true
    }
}

impl fmt::Display for SequentialHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (event, state) in self.events.iter().zip(&self.states) {
            write!(f, "; {event}; {state}")?;
        }
        Ok(())
    }
}

/// Enumerates every legal sequential history of length exactly `len` from
/// `start`, including nondeterministic branches.
///
/// The number of histories grows as `O((n·|I|·b)^len)` where `b` bounds
/// outcome-set sizes; keep `len` small.
pub fn enumerate_histories(ty: &FiniteType, start: StateId, len: usize) -> Vec<SequentialHistory> {
    let mut frontier = vec![SequentialHistory::new(start)];
    for _ in 0..len {
        let mut next = Vec::new();
        for h in &frontier {
            for port in ty.port_ids() {
                for inv in ty.invocations() {
                    for &out in ty.outcomes(h.end(), port, inv) {
                        let mut h2 = h.clone();
                        h2.push(port, inv, out);
                        next.push(h2);
                    }
                }
            }
        }
        frontier = next;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeBuilder;

    fn flip_flop() -> FiniteType {
        let mut b = TypeBuilder::new("flip", 1);
        let a = b.state("a");
        let c = b.state("b");
        let i = b.invocation("flip");
        let r0 = b.response("0");
        let r1 = b.response("1");
        b.oblivious_transition(a, i, c, r0);
        b.oblivious_transition(c, i, a, r1);
        b.build().unwrap()
    }

    #[test]
    fn run_and_legality() {
        let t = flip_flop();
        let a = t.state_id("a").unwrap();
        let i = t.invocation_id("flip").unwrap();
        let h = SequentialHistory::run(&t, a, &[(PortId::new(0), i), (PortId::new(0), i)]);
        assert_eq!(h.len(), 2);
        assert!(h.is_legal(&t));
        assert_eq!(h.end(), a);
        assert_eq!(
            t.response_name(h.return_value().unwrap()),
            "1",
            "second flip responds 1"
        );
    }

    #[test]
    fn tampered_history_is_illegal() {
        let t = flip_flop();
        let a = t.state_id("a").unwrap();
        let i = t.invocation_id("flip").unwrap();
        let mut h = SequentialHistory::run(&t, a, &[(PortId::new(0), i)]);
        // Forge the response.
        h.events[0].resp = t.response_id("1").unwrap();
        assert!(!h.is_legal(&t));
    }

    #[test]
    fn empty_history_properties() {
        let t = flip_flop();
        let a = t.state_id("a").unwrap();
        let h = SequentialHistory::new(a);
        assert!(h.is_empty());
        assert_eq!(h.end(), a);
        assert_eq!(h.return_value(), None);
        assert!(h.is_legal(&t));
    }

    #[test]
    fn enumeration_counts_branches() {
        let t = flip_flop();
        let a = t.state_id("a").unwrap();
        // One port, one invocation, deterministic: exactly one history per length.
        assert_eq!(enumerate_histories(&t, a, 3).len(), 1);
    }

    #[test]
    fn enumeration_follows_nondeterminism() {
        let mut b = TypeBuilder::new("nd", 1);
        let q = b.state("q");
        let i = b.invocation("roll");
        let r0 = b.response("0");
        let r1 = b.response("1");
        b.oblivious_transition(q, i, q, r0);
        b.oblivious_transition(q, i, q, r1);
        let t = b.build().unwrap();
        assert_eq!(enumerate_histories(&t, q, 3).len(), 8);
    }

    #[test]
    fn invocations_on_filters_by_port() {
        let mut b = TypeBuilder::new("two", 2);
        let q = b.state("q");
        let i = b.invocation("i");
        let r = b.response("ok");
        b.oblivious_transition(q, i, q, r);
        let t = b.build().unwrap();
        let h = SequentialHistory::run(
            &t,
            q,
            &[
                (PortId::new(0), i),
                (PortId::new(1), i),
                (PortId::new(0), i),
            ],
        );
        assert_eq!(h.invocations_on(PortId::new(0)).len(), 2);
        assert_eq!(h.invocations_on(PortId::new(1)).len(), 1);
    }
}
