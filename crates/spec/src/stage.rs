//! The request-lifecycle stage vocabulary shared by the serving layer,
//! its introspection surface, and the tools that read both.
//!
//! A served request passes through a fixed pipeline; each [`Stage`] is
//! one monotonic-clock stamp taken as the request crosses that point.
//! Consecutive stamps delimit the seven derived [`Interval`]s — the
//! quantities the service aggregates into `service.stage.<name>_us`
//! histograms and reports per request from the flight recorder. The
//! intervals telescope: summed, they reconstruct the accepted→flushed
//! end-to-end latency exactly, so per-stage means must add up to the
//! total mean (the introspection layer's self-consistency check).
//!
//! This lives in `wfc-spec`, not the service crate, because the wire
//! protocol (`stats` responses), the load generator's bench reports,
//! and the CLI's `top` view all name stages — the vocabulary is part of
//! the spec, the stamping machinery is not.

/// One stamp point in the request pipeline, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// The frame's bytes began arriving on an accepted connection.
    Accepted = 0,
    /// The length-prefixed frame fully decoded into a request.
    Decoded = 1,
    /// The request was admitted to the batcher (enqueued or attached
    /// to an in-flight identical computation).
    Enqueued = 2,
    /// The batch containing the request was dispatched to the job
    /// queue.
    Dispatched = 3,
    /// A worker began computing (or resolved the result from cache).
    EngineStart = 4,
    /// The computation (or cache lookup) produced its outcome.
    EngineDone = 5,
    /// The response frame was serialized into the connection's output
    /// buffer.
    ResponseEnqueued = 6,
    /// The last byte of the response frame left the process.
    BytesFlushed = 7,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Accepted,
        Stage::Decoded,
        Stage::Enqueued,
        Stage::Dispatched,
        Stage::EngineStart,
        Stage::EngineDone,
        Stage::ResponseEnqueued,
        Stage::BytesFlushed,
    ];

    /// The stage's position in the pipeline (0-based).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::Decoded => "decoded",
            Stage::Enqueued => "enqueued",
            Stage::Dispatched => "dispatched",
            Stage::EngineStart => "engine-start",
            Stage::EngineDone => "engine-done",
            Stage::ResponseEnqueued => "response-enqueued",
            Stage::BytesFlushed => "bytes-flushed",
        }
    }

    /// Parses a stable wire name back into a stage.
    pub fn parse(text: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.as_str() == text)
    }
}

/// One derived latency interval: the time between two consecutive
/// pipeline stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Stable name (`service.stage.<name>_us` is the histogram).
    pub name: &'static str,
    /// The stamp opening the interval.
    pub start: Stage,
    /// The stamp closing the interval.
    pub end: Stage,
}

impl Interval {
    /// The seven telescoping intervals, in pipeline order: frame
    /// decode, admission, batch/coalesce wait, queue wait, engine
    /// time, response serialization, and write-back flush.
    pub const ALL: [Interval; 7] = [
        Interval {
            name: "decode",
            start: Stage::Accepted,
            end: Stage::Decoded,
        },
        Interval {
            name: "admit",
            start: Stage::Decoded,
            end: Stage::Enqueued,
        },
        Interval {
            name: "batch",
            start: Stage::Enqueued,
            end: Stage::Dispatched,
        },
        Interval {
            name: "queue",
            start: Stage::Dispatched,
            end: Stage::EngineStart,
        },
        Interval {
            name: "engine",
            start: Stage::EngineStart,
            end: Stage::EngineDone,
        },
        Interval {
            name: "respond",
            start: Stage::EngineDone,
            end: Stage::ResponseEnqueued,
        },
        Interval {
            name: "flush",
            start: Stage::ResponseEnqueued,
            end: Stage::BytesFlushed,
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert!(Stage::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn wire_names_round_trip_and_are_unique() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::parse("nonsense"), None);
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn intervals_telescope_across_the_whole_pipeline() {
        // Each interval starts where the previous one ended, the first
        // opens at the first stamp and the last closes at the final
        // stamp — so summed interval durations equal end-to-end time.
        assert_eq!(Interval::ALL[0].start, Stage::Accepted);
        assert_eq!(
            Interval::ALL[Interval::ALL.len() - 1].end,
            Stage::BytesFlushed
        );
        for pair in Interval::ALL.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        for interval in Interval::ALL {
            assert_eq!(interval.end.index(), interval.start.index() + 1);
        }
        let mut names: Vec<&str> = Interval::ALL.iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Interval::ALL.len());
    }
}
