//! A tiny deterministic pseudo-random generator for property tests.
//!
//! The workspace's property tests run fully offline, so instead of an
//! external property-testing framework they draw randomness from this
//! seeded SplitMix64 generator: every failure reproduces from the case
//! number printed by the harness, and the test corpus is identical on
//! every machine.

/// A SplitMix64 pseudo-random generator (Steele–Lea–Flood, OOPSLA'14).
///
/// # Examples
///
/// ```
/// use wfc_spec::prng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "deterministic");
/// assert!(a.gen_range(3, 7) >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected_and_values_vary() {
        let mut rng = SplitMix64::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let v = rng.gen_range(2, 9);
            assert!((2..9).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 7, "all values in range appear");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }
}
