//! Strongly-typed identifiers for the components of a type specification.
//!
//! The paper models a concurrent data type as a 5-tuple `⟨n, Q, I, R, δ⟩`
//! (Section 2.1). Elements of `N_n` (ports), `Q` (states), `I` (invocations)
//! and `R` (responses) are represented by the index newtypes in this module,
//! so that a port can never be confused with a state or an invocation with a
//! response ([C-NEWTYPE]).
//!
//! All identifiers are zero-based indices into the tables of a
//! [`FiniteType`](crate::FiniteType). The paper numbers ports `1..=n`; we use
//! `0..n` and convert in `Display` output only.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a zero-based index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the zero-based index of this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_newtype!(
    /// A port of a type: the access point through which a single process
    /// invokes operations. A type with `n` ports can be accessed by at most
    /// `n` processes (paper, Section 2.1).
    PortId,
    "port"
);

id_newtype!(
    /// A state in the state set `Q` of a type.
    StateId,
    "q"
);

id_newtype!(
    /// An invocation in the invocation set `I` of a type.
    InvId,
    "inv"
);

id_newtype!(
    /// A response in the response set `R` of a type.
    RespId,
    "resp"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let p = PortId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(usize::from(p), 3);
        assert_eq!(PortId::from(3), p);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(PortId::new(0).to_string(), "port0");
        assert_eq!(StateId::new(2).to_string(), "q2");
        assert_eq!(InvId::new(1).to_string(), "inv1");
        assert_eq!(RespId::new(7).to_string(), "resp7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(StateId::new(1) < StateId::new(2));
        assert_eq!(InvId::default(), InvId::new(0));
    }
}
