//! The unified control plane: budgets, wall-clock deadlines, and
//! cooperative cancellation for every long-running engine in the
//! workspace.
//!
//! The explorer's BFS, the sched checker's DFS/PCT loops, the witness
//! search and the hierarchy sweep are all exponential in the worst case;
//! a serving layer must be able to preempt any of them. Before this
//! module each engine grew its own budget error
//! (`ExplorerError::BudgetExceeded`, `SchedError::BudgetExceeded`) and
//! the service deadline reaper could only cancel explorer-backed
//! queries. Now there is exactly one vocabulary:
//!
//! * [`Budget`] — per-resource work caps plus an optional wall-clock
//!   deadline, carried inside every engine's options struct;
//! * [`CancelToken`] — a `Copy` handle on a shared flag that a reaper
//!   (or a signal handler) sets to abort a run from outside;
//! * [`Progress`] — monotonic counters snapshotable at any sync point,
//!   returned inside every abort so callers see how far the run got;
//! * [`Exhausted`] — the single typed "ran out of `resource`" error all
//!   engines raise and the `wfc-svc/v1` wire protocol round-trips.
//!
//! ## The poll-point contract
//!
//! Engines poll the control plane only at their *sync points* — the BFS
//! level boundary, the per-path pop, the schedule boundary, the
//! candidate-pair boundary. Between sync points a run is never
//! interrupted, so a completed run's outputs are bit-identical whether
//! or not a token was armed, at any thread count. Cancellation latency
//! is therefore bounded by one sync interval (one BFS level, one
//! schedule execution, …), and every abort carries the exact
//! [`Progress`] at the sync point that tripped.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The resource a [`Budget`] axis counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resource {
    /// Distinct configurations interned by an explorer BFS (or states
    /// visited by a path search).
    Configs,
    /// Execution-tree depth levels.
    Depth,
    /// Schedules executed by the sched model checker.
    Schedules,
    /// Scheduler steps (or search iterations for sweep-style engines).
    Steps,
    /// Wall-clock milliseconds against [`Budget::wall`].
    WallMs,
}

impl Resource {
    /// The stable wire spelling used by `wfc-svc/v1` error responses.
    pub fn as_str(self) -> &'static str {
        match self {
            Resource::Configs => "configs",
            Resource::Depth => "depth",
            Resource::Schedules => "schedules",
            Resource::Steps => "steps",
            Resource::WallMs => "wall-ms",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Configs => write!(f, "configurations"),
            Resource::Depth => write!(f, "depth levels"),
            Resource::Schedules => write!(f, "schedules"),
            Resource::Steps => write!(f, "steps"),
            Resource::WallMs => write!(f, "milliseconds"),
        }
    }
}

/// Monotonic work counters, snapshotable at any sync point.
///
/// Each engine fills the axes it meters and leaves the rest at zero:
/// the explorer reports `configs`/`depth`, the sched checker
/// `schedules`/`steps`, sweep-style engines `steps`. A snapshot taken
/// at an abort is *exact* for the tripping sync point — no in-flight
/// work is unaccounted — which is what makes the figure resumable: a
/// caller can re-issue the run with budgets raised past the snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Progress {
    /// Distinct configurations interned / states visited.
    pub configs: u64,
    /// BFS levels begun (explorer) or tree depth reached.
    pub depth: u64,
    /// Schedules fully executed.
    pub schedules: u64,
    /// Scheduler steps or search iterations performed.
    pub steps: u64,
}

impl Progress {
    /// Mirrors the snapshot into the `wfc-obs` global metrics registry
    /// (max-gauges `control.progress.*`); zero-cost when observability
    /// is off. Engines call this at every abort so run reports show how
    /// far a preempted query got.
    pub fn record(&self) {
        wfc_obs::gauge_max!("control.progress.configs", self.configs);
        wfc_obs::gauge_max!("control.progress.depth", self.depth);
        wfc_obs::gauge_max!("control.progress.schedules", self.schedules);
        wfc_obs::gauge_max!("control.progress.steps", self.steps);
    }
}

/// The single typed "ran out of `resource`" abort shared by every
/// engine, carrying both the configured cap and the exact usage at the
/// sync point that tripped, plus the full [`Progress`] snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Exhausted {
    /// Which budget axis fired.
    pub resource: Resource,
    /// The configured cap (for [`Resource::WallMs`]: the deadline in
    /// milliseconds).
    pub budget: u64,
    /// Exact usage observed at the tripping sync point (for
    /// [`Resource::WallMs`]: elapsed milliseconds).
    pub used: u64,
    /// Work completed when the budget fired.
    pub progress: Progress,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::WallMs => write!(
                f,
                "exploration exceeded the deadline of {} ms (observed {} ms)",
                self.budget, self.used
            ),
            r => write!(
                f,
                "exploration exceeded the budget of {} {} (observed {})",
                self.budget, r, self.used
            ),
        }
    }
}

impl std::error::Error for Exhausted {}

/// A cooperative cancellation flag.
///
/// Serving layers impose wall-clock deadlines that budgets alone cannot
/// express from outside a run. A token wraps a shared [`AtomicBool`];
/// engines poll it at their sync points and abort with their
/// `Cancelled` error (carrying a [`Progress`] snapshot) once it is set.
///
/// The flag is `&'static` so the token stays `Copy` (and every options
/// struct with it). Long-lived owners such as server worker threads
/// allocate their flag once (e.g. via `Box::leak`) and re-arm it per
/// request.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelToken(Option<&'static AtomicBool>);

impl CancelToken {
    /// The inert token: never cancelled. This is the default.
    pub const NONE: CancelToken = CancelToken(None);

    /// A token observing `flag`.
    pub fn new(flag: &'static AtomicBool) -> CancelToken {
        CancelToken(Some(flag))
    }

    /// `true` once the underlying flag has been set.
    pub fn is_cancelled(&self) -> bool {
        self.0.is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// A wall-clock deadline with its start instant, so aborts can report
/// both the configured allowance and the elapsed time in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Wall {
    /// When the allowance started counting.
    pub started: Instant,
    /// The instant past which the run must abort.
    pub deadline: Instant,
}

impl Wall {
    /// A deadline `allowance` from now.
    pub fn expires_in(allowance: Duration) -> Wall {
        let started = Instant::now();
        Wall {
            started,
            deadline: started + allowance,
        }
    }
}

/// Per-resource work caps plus an optional wall-clock deadline — the
/// one budget type threaded through every engine's options.
///
/// Axes an engine does not meter are simply never checked; the defaults
/// are the workspace-wide conventions (4 M configurations, unlimited
/// depth, 200 k schedules, 10 k steps per execution, no deadline).
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Cap on distinct configurations (explorer; exact — see
    /// [`Budget::configs_exceeded`]).
    pub configs: u64,
    /// Cap on execution-tree depth.
    pub depth: u64,
    /// Cap on executed schedules (sched checker).
    pub schedules: u64,
    /// Per-execution step cap (sched checker).
    pub steps: u64,
    /// Optional wall-clock deadline, polled at sync points.
    pub wall: Option<Wall>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            configs: 4_000_000,
            depth: u64::MAX,
            schedules: 200_000,
            steps: 10_000,
            wall: None,
        }
    }
}

impl Budget {
    /// This budget with a `configs` cap.
    pub fn with_configs(mut self, configs: u64) -> Self {
        self.configs = configs;
        self
    }

    /// This budget with a `depth` cap.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth;
        self
    }

    /// This budget with a `schedules` cap.
    pub fn with_schedules(mut self, schedules: u64) -> Self {
        self.schedules = schedules;
        self
    }

    /// This budget with a per-execution `steps` cap.
    pub fn with_steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    /// This budget with a wall-clock deadline.
    pub fn with_wall(mut self, wall: Wall) -> Self {
        self.wall = Some(wall);
        self
    }

    /// The configs axis, checked as the `used`-th configuration is
    /// about to be interned: fires iff `used > configs`, so the
    /// reported figure is exactly `configs + 1` — no overshoot.
    pub fn configs_exceeded(&self, used: u64, progress: Progress) -> Option<Exhausted> {
        (used > self.configs).then(|| self.trip(Resource::Configs, self.configs, used, progress))
    }

    /// The depth axis: fires iff `used > depth` (a run whose longest
    /// execution is exactly `depth` still succeeds).
    pub fn depth_exceeded(&self, used: u64, progress: Progress) -> Option<Exhausted> {
        (used > self.depth).then(|| self.trip(Resource::Depth, self.depth, used, progress))
    }

    /// The schedules axis, checked before starting another schedule:
    /// fires iff `used >= schedules` executions have already run.
    pub fn schedules_exceeded(&self, used: u64, progress: Progress) -> Option<Exhausted> {
        (used >= self.schedules)
            .then(|| self.trip(Resource::Schedules, self.schedules, used, progress))
    }

    /// The wall axis: fires once `Instant::now()` passes the deadline,
    /// reporting allowance and elapsed time in milliseconds.
    pub fn wall_exceeded(&self, progress: Progress) -> Option<Exhausted> {
        let wall = self.wall?;
        let now = Instant::now();
        (now >= wall.deadline).then(|| {
            self.trip(
                Resource::WallMs,
                wall.deadline.duration_since(wall.started).as_millis() as u64,
                now.duration_since(wall.started).as_millis() as u64,
                progress,
            )
        })
    }

    fn trip(&self, resource: Resource, budget: u64, used: u64, progress: Progress) -> Exhausted {
        progress.record();
        Exhausted {
            resource,
            budget,
            used,
            progress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhausted_renders_budget_and_observed() {
        let e = Exhausted {
            resource: Resource::Configs,
            budget: 100,
            used: 135,
            progress: Progress::default(),
        };
        assert_eq!(
            e.to_string(),
            "exploration exceeded the budget of 100 configurations (observed 135)"
        );
        let w = Exhausted {
            resource: Resource::WallMs,
            budget: 100,
            used: 182,
            ..e
        };
        assert_eq!(
            w.to_string(),
            "exploration exceeded the deadline of 100 ms (observed 182 ms)"
        );
    }

    #[test]
    fn configs_axis_is_exact() {
        let b = Budget::default().with_configs(4);
        let p = Progress::default();
        assert!(b.configs_exceeded(4, p).is_none(), "at the cap is fine");
        let e = b.configs_exceeded(5, p).expect("one past the cap fires");
        assert_eq!((e.budget, e.used), (4, 5));
        assert_eq!(e.resource, Resource::Configs);
    }

    #[test]
    fn schedules_axis_fires_at_the_cap() {
        let b = Budget::default().with_schedules(5);
        let p = Progress {
            schedules: 5,
            ..Progress::default()
        };
        assert!(b.schedules_exceeded(4, p).is_none());
        let e = b.schedules_exceeded(5, p).expect("cap reached");
        assert_eq!((e.budget, e.used), (5, 5));
        assert_eq!(e.progress.schedules, 5);
    }

    #[test]
    fn expired_wall_fires_with_millisecond_figures() {
        let started = Instant::now() - Duration::from_millis(50);
        let b = Budget {
            wall: Some(Wall {
                started,
                deadline: started + Duration::from_millis(10),
            }),
            ..Budget::default()
        };
        let e = b.wall_exceeded(Progress::default()).expect("expired");
        assert_eq!(e.resource, Resource::WallMs);
        assert_eq!(e.budget, 10);
        assert!(e.used >= 50);
        assert!(Budget::default()
            .wall_exceeded(Progress::default())
            .is_none());
    }

    #[test]
    fn cancel_token_observes_its_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        assert!(!CancelToken::NONE.is_cancelled());
        let t = CancelToken::new(&FLAG);
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
        FLAG.store(false, Ordering::Relaxed);
    }
}
