//! # `wfc-spec` — the concurrent-type formalism of Bazzi–Neiger–Peterson
//!
//! This crate implements Section 2 of *"On the Use of Registers in Achieving
//! Wait-Free Consensus"* (PODC 1994): concurrent data types as 5-tuples
//! `⟨n, Q, I, R, δ⟩`, their sequential histories, and the triviality theory
//! of Section 5 on which the paper's main theorem rests.
//!
//! ## Overview
//!
//! * [`FiniteType`] — a table-driven finite type with a total transition
//!   function; built via [`TypeBuilder`]. Predicates for determinism,
//!   obliviousness, reachability.
//! * [`SequentialHistory`] — the paper's alternating state/event sequences,
//!   with legality checking and bounded enumeration.
//! * [`triviality`] — deciders for the paper's two triviality definitions
//!   (Sections 5.1 and 5.2).
//! * [`witness`] — the minimal non-trivial pair search in Lemma-4 normal
//!   form; the engine behind deriving one-use bits from arbitrary
//!   non-trivial deterministic types.
//! * [`canonical`] — the standard type zoo (registers, test-and-set, queue,
//!   compare-and-swap, sticky bit, consensus, one-use bit, …).
//! * [`hash`] — canonical 128-bit content hashing of types (the cache-key
//!   substrate of the `wfc-service` serving layer).
//! * [`control`] — the workspace-wide control plane: budgets, wall-clock
//!   deadlines, cancellation tokens and progress snapshots, polled by
//!   every long-running engine at its sync points.
//! * [`stage`] — the request-lifecycle stage vocabulary (pipeline stamp
//!   points and the telescoping latency intervals between them) shared
//!   by the serving layer's tracing and its introspection surface.
//!
//! ## Example: classify a type and extract a witness
//!
//! ```
//! use wfc_spec::{canonical, triviality, witness};
//!
//! let tas = canonical::test_and_set(2);
//! assert!(!triviality::is_trivial(&tas)?);
//!
//! let w = witness::find_witness(&tas)?.expect("test-and-set is non-trivial");
//! assert!(w.verify(&tas));
//! // A single `test_and_set` by the writer is detectable by one reader probe.
//! assert_eq!(w.k(), 1);
//! # Ok::<(), wfc_spec::AnalysisError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canonical;
pub mod control;
mod error;
pub mod hash;
mod history;
mod ids;
pub mod prng;
pub mod repl;
pub mod stage;
pub mod text;
pub mod triviality;
mod types;
pub mod witness;

pub use error::{AnalysisError, BuildTypeError};
pub use history::{enumerate_histories, Event, SequentialHistory};
pub use ids::{InvId, PortId, RespId, StateId};
pub use types::{FiniteType, Outcome, TypeBuilder};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::FiniteType>();
        assert_send_sync::<crate::SequentialHistory>();
        assert_send_sync::<crate::witness::NonTrivialWitness>();
    }
}
