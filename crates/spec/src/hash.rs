//! Canonical 128-bit content hashing for [`FiniteType`] values.
//!
//! The serving layer (`wfc-service`) caches analysis results keyed by
//! *what was asked*: the type, the query kind, and the budgets. Two
//! textually different files describing the same type must hit the same
//! cache line, so the key is derived from the **canonical rendering**
//! ([`crate::text::format_type`]) of the parsed type — whitespace,
//! comments and `delta` ordering quirks of the source file disappear in
//! the round trip.
//!
//! The hash itself is FNV-1a over 128 bits: tiny, dependency-free,
//! stable across platforms and releases (the constants are pinned
//! here), and wide enough that accidental collisions are not a
//! practical concern for a cache. It is **not** cryptographic; nothing
//! in the pipeline needs collision resistance against an adversary who
//! controls both sides — a poisoned cache entry can only be planted by
//! whoever already controls the cache directory.

use crate::text::format_type;
use crate::FiniteType;
use std::fmt;

/// FNV-1a 128-bit offset basis (per the published FNV parameters).
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content hash, rendered as 32 lowercase hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash128(pub u128);

impl Hash128 {
    /// The hash as 32 lowercase hexadecimal digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit rendering produced by [`Hash128::to_hex`].
    pub fn from_hex(text: &str) -> Option<Hash128> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Hash128)
    }
}

impl fmt::Display for Hash128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental FNV-1a 128-bit hasher.
///
/// Variable-length fields should go through [`Hasher128::write_str`],
/// which length-prefixes the bytes so field boundaries cannot alias
/// (`"ab" + "c"` and `"a" + "bc"` hash differently).
#[derive(Clone, Debug)]
pub struct Hasher128 {
    state: u128,
}

impl Default for Hasher128 {
    fn default() -> Self {
        Hasher128::new()
    }
}

impl Hasher128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher128 {
        Hasher128 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Feeds a string, length-prefixed.
    pub fn write_str(&mut self, text: &str) {
        self.write_u64(text.len() as u64);
        self.write(text.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> Hash128 {
        Hash128(self.state)
    }
}

/// The canonical content hash of a type: FNV-1a 128 over the canonical
/// text rendering, so any source text that parses to this type hashes
/// identically.
pub fn hash_type(ty: &FiniteType) -> Hash128 {
    let mut h = Hasher128::new();
    h.write_str(&format_type(ty));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical;
    use crate::text::parse_type;

    #[test]
    fn known_fnv_vectors() {
        // Empty input hashes to the offset basis.
        assert_eq!(Hasher128::new().finish().0, FNV_OFFSET);
        // One byte 'a' (0x61): classic single-step FNV-1a.
        let mut h = Hasher128::new();
        h.write(b"a");
        assert_eq!(h.finish().0, (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn hex_round_trips() {
        let h = hash_type(&canonical::test_and_set(2));
        assert_eq!(Hash128::from_hex(&h.to_hex()), Some(h));
        assert_eq!(h.to_hex().len(), 32);
        assert!(Hash128::from_hex("xyz").is_none());
        assert!(Hash128::from_hex(&"0".repeat(31)).is_none());
    }

    #[test]
    fn hash_is_canonical_under_reformatting() {
        let ty = canonical::test_and_set(2);
        let text = crate::text::format_type(&ty);
        // Mangle whitespace and add comments; the parsed type hashes the same.
        let noisy = format!("# a comment\n\n{}\n\n", text.replace(' ', "  "));
        let back = parse_type(&noisy).unwrap();
        assert_eq!(hash_type(&ty), hash_type(&back));
    }

    #[test]
    fn distinct_types_hash_apart() {
        let zoo = canonical::deterministic_zoo(2);
        let mut hashes: Vec<_> = zoo.iter().map(hash_type).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), zoo.len(), "zoo hashes must be distinct");
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = Hasher128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
