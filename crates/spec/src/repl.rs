//! The `wfc-repl/v1` replication wire schema: protocol tags, message
//! type slugs, and persistence schema identifiers.
//!
//! The constants live here — in the bottom-of-stack spec crate — for
//! the same reason the control plane's resource slugs do: every layer
//! that touches the replication protocol (`wfc-repl` itself, the
//! service frontend that routes its frames, the CLI that prints
//! cluster status, and `report --check` validating captured frames)
//! must agree on the exact strings, and none of those crates should
//! have to depend on another's internals to get them.

/// The peer/status protocol tag carried in every replication frame.
pub const PROTO: &str = "wfc-repl/v1";

/// Schema tag of the durable snapshot file (`snapshot.json`).
pub const SNAPSHOT_SCHEMA: &str = "wfc-repl-snap/v1";

/// Message `type` slugs of the `wfc-repl/v1` protocol, in protocol
/// order: handshake, proposal, replication, acknowledgement, commit,
/// and the two introspection frames.
pub mod msg {
    /// Link handshake: `{from, last_index}` — sent on every freshly
    /// established outbound link; the sequencer answers with catch-up.
    pub const HELLO: &str = "hello";
    /// A follower asking the sequencer to order an entry.
    pub const PROPOSE: &str = "propose";
    /// The sequencer replicating an ordered entry: `{index, entry}`.
    pub const APPEND: &str = "append";
    /// A follower confirming a durable append: `{from, index}`.
    pub const ACK: &str = "ack";
    /// The sequencer announcing a majority-durable entry.
    pub const COMMIT: &str = "commit";
    /// A client asking a node for its replication status.
    pub const STATUS: &str = "status";
    /// The node's answer to [`STATUS`].
    pub const STATUS_REPLY: &str = "status-reply";
}

/// Stable error slugs surfaced by the replication layer.
pub mod error {
    /// A WAL suffix failed its CRC/framing check and was truncated.
    pub const WAL_CORRUPT: &str = "wal-corrupt";
    /// A snapshot file failed validation and was ignored.
    pub const SNAPSHOT_CORRUPT: &str = "snapshot-corrupt";
    /// A peer frame that could not be routed (unknown type, bad shape).
    pub const BAD_PEER_FRAME: &str = "bad-peer-frame";
}

#[cfg(test)]
mod tests {
    #[test]
    fn slugs_are_distinct_and_stable() {
        let all = [
            super::msg::HELLO,
            super::msg::PROPOSE,
            super::msg::APPEND,
            super::msg::ACK,
            super::msg::COMMIT,
            super::msg::STATUS,
            super::msg::STATUS_REPLY,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(super::PROTO, "wfc-repl/v1");
        assert_eq!(super::SNAPSHOT_SCHEMA, "wfc-repl-snap/v1");
    }
}
