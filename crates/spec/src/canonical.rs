//! A zoo of canonical concurrent data types as [`FiniteType`] values.
//!
//! These are the standard objects of the wait-free hierarchy literature
//! (Herlihy \[7\], Jayanti \[9\]): registers, test-and-set, swap,
//! fetch-and-add, compare-and-swap, FIFO queues, sticky bits, the
//! `n`-process binary consensus type `T_{c,n}` (paper, Section 2.1) and the
//! paper's own *one-use bit* `T_{1u}` (Section 3).
//!
//! Every constructor documents the intended initial state by name; a
//! [`FiniteType`] itself carries no distinguished initial state because an
//! implementation may initialize objects to any state (Section 2.2).

use crate::types::{FiniteType, TypeBuilder};

/// The `n`-process binary consensus type `T_{c,n}` (paper, Section 2.1).
///
/// States `{⊥, 0, 1}`; invocations `{0, 1}` (the proposer's value);
/// responses `{0, 1}`. The first invocation fixes all future responses —
/// the *consensus value* of the object. Initialize to `"⊥"`.
///
/// # Examples
///
/// ```
/// use wfc_spec::canonical;
///
/// let c = canonical::consensus(3);
/// assert_eq!(c.ports(), 3);
/// let bot = c.state_id("⊥").unwrap();
/// let propose1 = c.invocation_id("propose1").unwrap();
/// let out = c.step(bot, wfc_spec::PortId::new(2), propose1);
/// assert_eq!(c.response_name(out.resp), "1");
/// ```
pub fn consensus(n: usize) -> FiniteType {
    let mut b = TypeBuilder::new(format!("consensus{n}"), n);
    let bot = b.state("⊥");
    let s0 = b.state("0");
    let s1 = b.state("1");
    let p0 = b.invocation("propose0");
    let p1 = b.invocation("propose1");
    let r0 = b.response("0");
    let r1 = b.response("1");
    b.oblivious_transition(bot, p0, s0, r0);
    b.oblivious_transition(bot, p1, s1, r1);
    for s in [s0, s1] {
        let r = if s == s0 { r0 } else { r1 };
        b.oblivious_transition(s, p0, s, r);
        b.oblivious_transition(s, p1, s, r);
    }
    b.build().expect("consensus type is well-formed")
}

/// The one-use bit `T_{1u}` (paper, Section 3).
///
/// A 2-port bit, readable at most once and writable at most once. States
/// `{UNSET, SET, DEAD}`; invocations `{read, write}`; responses
/// `{0, 1, ok}`. A `read` always sends the object to `DEAD`, where further
/// reads are *nondeterministic* (may return 0 or 1); a second `write` also
/// kills the object. Initialize to `"UNSET"`.
pub fn one_use_bit() -> FiniteType {
    let mut b = TypeBuilder::new("one_use_bit", 2);
    let unset = b.state("UNSET");
    let set = b.state("SET");
    let dead = b.state("DEAD");
    let read = b.invocation("read");
    let write = b.invocation("write");
    let r0 = b.response("0");
    let r1 = b.response("1");
    let ok = b.response("ok");
    b.oblivious_transition(unset, read, dead, r0);
    b.oblivious_transition(set, read, dead, r1);
    // DEAD reads are nondeterministic: either bit value may come back.
    b.oblivious_transition(dead, read, dead, r0);
    b.oblivious_transition(dead, read, dead, r1);
    b.oblivious_transition(unset, write, set, ok);
    b.oblivious_transition(set, write, dead, ok);
    b.oblivious_transition(dead, write, dead, ok);
    b.build().expect("one-use bit type is well-formed")
}

/// A multi-value atomic read/write register over `values` symbols.
///
/// States and write invocations exist per value; `read` returns the current
/// value. Initialize to `"v0"` (or any `"v{k}"`).
pub fn register(values: usize, ports: usize) -> FiniteType {
    assert!(values >= 2, "a register needs at least two values");
    let mut b = TypeBuilder::new(format!("register{values}"), ports);
    let states: Vec<_> = (0..values).map(|v| b.state(&format!("v{v}"))).collect();
    let read = b.invocation("read");
    let writes: Vec<_> = (0..values)
        .map(|v| b.invocation(&format!("write{v}")))
        .collect();
    let vals: Vec<_> = (0..values).map(|v| b.response(&format!("{v}"))).collect();
    let ok = b.response("ok");
    for v in 0..values {
        b.oblivious_transition(states[v], read, states[v], vals[v]);
        for w in 0..values {
            b.oblivious_transition(states[v], writes[w], states[w], ok);
        }
    }
    b.build().expect("register type is well-formed")
}

/// A boolean atomic read/write register: [`register`] with two values.
pub fn boolean_register(ports: usize) -> FiniteType {
    register(2, ports)
}

/// Test-and-set: `test_and_set` atomically sets the bit and returns its
/// *previous* value, so exactly one invoker ever receives `0`. `read`
/// returns the current value. Consensus number 2 (Herlihy \[7\]).
/// Initialize to `"unset"`.
pub fn test_and_set(ports: usize) -> FiniteType {
    let mut b = TypeBuilder::new("test_and_set", ports);
    let unset = b.state("unset");
    let set = b.state("set");
    let tas = b.invocation("test_and_set");
    let read = b.invocation("read");
    let r0 = b.response("0");
    let r1 = b.response("1");
    b.oblivious_transition(unset, tas, set, r0);
    b.oblivious_transition(set, tas, set, r1);
    b.oblivious_transition(unset, read, unset, r0);
    b.oblivious_transition(set, read, set, r1);
    b.build().expect("test-and-set type is well-formed")
}

/// A swap register over `values` symbols: `swap{v}` writes `v` and returns
/// the previous value. Consensus number 2. Initialize to `"v0"`.
pub fn swap(values: usize, ports: usize) -> FiniteType {
    assert!(values >= 2, "a swap register needs at least two values");
    let mut b = TypeBuilder::new(format!("swap{values}"), ports);
    let states: Vec<_> = (0..values).map(|v| b.state(&format!("v{v}"))).collect();
    let swaps: Vec<_> = (0..values)
        .map(|v| b.invocation(&format!("swap{v}")))
        .collect();
    let vals: Vec<_> = (0..values).map(|v| b.response(&format!("{v}"))).collect();
    for v in 0..values {
        for w in 0..values {
            b.oblivious_transition(states[v], swaps[w], states[w], vals[v]);
        }
    }
    b.build().expect("swap type is well-formed")
}

/// A fetch-and-add counter saturating at `cap`: `fetch_add` increments and
/// returns the *previous* value; `read` returns the current value.
/// Consensus number 2. Initialize to `"0"`.
pub fn fetch_and_add(cap: usize, ports: usize) -> FiniteType {
    assert!(cap >= 1, "fetch-and-add needs at least one increment");
    let mut b = TypeBuilder::new(format!("fetch_and_add{cap}"), ports);
    let states: Vec<_> = (0..=cap).map(|v| b.state(&format!("{v}"))).collect();
    let fadd = b.invocation("fetch_add");
    let read = b.invocation("read");
    let vals: Vec<_> = (0..=cap).map(|v| b.response(&format!("{v}"))).collect();
    for v in 0..=cap {
        let next = (v + 1).min(cap);
        b.oblivious_transition(states[v], fadd, states[next], vals[v]);
        b.oblivious_transition(states[v], read, states[v], vals[v]);
    }
    b.build().expect("fetch-and-add type is well-formed")
}

/// Compare-and-swap over `values` symbols: `cas{e}_{n}` installs `n` iff
/// the current value is `e`, returning the previous value either way;
/// `read` returns the current value. Consensus number ∞ (Herlihy \[7\]).
/// Initialize to `"v0"`.
pub fn compare_and_swap(values: usize, ports: usize) -> FiniteType {
    assert!(values >= 2, "compare-and-swap needs at least two values");
    let mut b = TypeBuilder::new(format!("compare_and_swap{values}"), ports);
    let states: Vec<_> = (0..values).map(|v| b.state(&format!("v{v}"))).collect();
    let read = b.invocation("read");
    let vals: Vec<_> = (0..values).map(|v| b.response(&format!("{v}"))).collect();
    for v in 0..values {
        b.oblivious_transition(states[v], read, states[v], vals[v]);
    }
    for e in 0..values {
        for n in 0..values {
            let inv = b.invocation(&format!("cas{e}_{n}"));
            for v in 0..values {
                let next = if v == e { states[n] } else { states[v] };
                b.oblivious_transition(states[v], inv, next, vals[v]);
            }
        }
    }
    b.build().expect("compare-and-swap type is well-formed")
}

/// A bounded FIFO queue for `ports` processes, holding up to `capacity`
/// items drawn from `values` symbols. `enq{v}` returns `ok` or `full`;
/// `deq` returns the head value or `empty`. Consensus number 2
/// (Herlihy \[7\]). Initialize to `"⟨⟩"` (empty) or any state named by its
/// contents, e.g. `"⟨0,1⟩"` (head first).
pub fn queue(capacity: usize, values: usize, ports: usize) -> FiniteType {
    assert!(
        capacity >= 1 && values >= 1,
        "queue needs capacity and values"
    );
    assert!(ports >= 1, "queue needs at least one port");
    let mut b = TypeBuilder::new(format!("queue{capacity}x{values}"), ports);
    // Enumerate all contents of length 0..=capacity, head first.
    let mut contents: Vec<Vec<usize>> = vec![vec![]];
    let mut layer: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..capacity {
        let mut next = Vec::new();
        for c in &layer {
            for v in 0..values {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        contents.extend(next.iter().cloned());
        layer = next;
    }
    let name_of = |c: &[usize]| {
        let inner: Vec<String> = c.iter().map(|v| v.to_string()).collect();
        format!("⟨{}⟩", inner.join(","))
    };
    let states: Vec<_> = contents.iter().map(|c| b.state(&name_of(c))).collect();
    let deq = b.invocation("deq");
    let enqs: Vec<_> = (0..values)
        .map(|v| b.invocation(&format!("enq{v}")))
        .collect();
    let vals: Vec<_> = (0..values).map(|v| b.response(&format!("{v}"))).collect();
    let ok = b.response("ok");
    let full = b.response("full");
    let empty = b.response("empty");
    let index_of = |c: &[usize]| {
        contents
            .iter()
            .position(|x| x == c)
            .expect("content enumerated")
    };
    for (k, c) in contents.iter().enumerate() {
        // Dequeue.
        if c.is_empty() {
            b.oblivious_transition(states[k], deq, states[k], empty);
        } else {
            let rest = c[1..].to_vec();
            b.oblivious_transition(states[k], deq, states[index_of(&rest)], vals[c[0]]);
        }
        // Enqueues.
        for (v, &enq) in enqs.iter().enumerate() {
            if c.len() == capacity {
                b.oblivious_transition(states[k], enq, states[k], full);
            } else {
                let mut c2 = c.clone();
                c2.push(v);
                b.oblivious_transition(states[k], enq, states[index_of(&c2)], ok);
            }
        }
    }
    b.build().expect("queue type is well-formed")
}

/// A bounded LIFO stack for `ports` processes, holding up to `capacity`
/// items drawn from `values` symbols. `push{v}` returns `ok` or `full`;
/// `pop` returns the top value or `empty`. Consensus number 2
/// (Herlihy \[7\]). Initialize to `"⟨⟩"` or any state named by its
/// contents, e.g. `"⟨0,1⟩"` (top first).
pub fn stack(capacity: usize, values: usize, ports: usize) -> FiniteType {
    assert!(
        capacity >= 1 && values >= 1,
        "stack needs capacity and values"
    );
    assert!(ports >= 1, "stack needs at least one port");
    let mut b = TypeBuilder::new(format!("stack{capacity}x{values}"), ports);
    // Enumerate all contents of length 0..=capacity, top first.
    let mut contents: Vec<Vec<usize>> = vec![vec![]];
    let mut layer: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..capacity {
        let mut next = Vec::new();
        for c in &layer {
            for v in 0..values {
                let mut c2 = vec![v];
                c2.extend(c.iter().copied());
                next.push(c2);
            }
        }
        contents.extend(next.iter().cloned());
        layer = next;
    }
    let name_of = |c: &[usize]| {
        let inner: Vec<String> = c.iter().map(|v| v.to_string()).collect();
        format!("⟨{}⟩", inner.join(","))
    };
    let states: Vec<_> = contents.iter().map(|c| b.state(&name_of(c))).collect();
    let pop = b.invocation("pop");
    let pushes: Vec<_> = (0..values)
        .map(|v| b.invocation(&format!("push{v}")))
        .collect();
    let vals: Vec<_> = (0..values).map(|v| b.response(&format!("{v}"))).collect();
    let ok = b.response("ok");
    let full = b.response("full");
    let empty = b.response("empty");
    let index_of = |c: &[usize]| {
        contents
            .iter()
            .position(|x| x == c)
            .expect("content enumerated")
    };
    for (k, c) in contents.iter().enumerate() {
        if c.is_empty() {
            b.oblivious_transition(states[k], pop, states[k], empty);
        } else {
            let rest = c[1..].to_vec();
            b.oblivious_transition(states[k], pop, states[index_of(&rest)], vals[c[0]]);
        }
        for (v, &push) in pushes.iter().enumerate() {
            if c.len() == capacity {
                b.oblivious_transition(states[k], push, states[k], full);
            } else {
                let mut c2 = vec![v];
                c2.extend(c.iter().copied());
                b.oblivious_transition(states[k], push, states[index_of(&c2)], ok);
            }
        }
    }
    b.build().expect("stack type is well-formed")
}

/// A sticky bit (Plotkin \[19\]): the first write sticks and every write
/// returns the stuck value, so writes double as consensus proposals;
/// `read` returns `⊥`, `0` or `1`. Consensus number ∞.
/// Initialize to `"⊥"`.
pub fn sticky_bit(ports: usize) -> FiniteType {
    let mut b = TypeBuilder::new("sticky_bit", ports);
    let bot = b.state("⊥");
    let s0 = b.state("0");
    let s1 = b.state("1");
    let w0 = b.invocation("write0");
    let w1 = b.invocation("write1");
    let read = b.invocation("read");
    let rbot = b.response("⊥");
    let r0 = b.response("0");
    let r1 = b.response("1");
    b.oblivious_transition(bot, w0, s0, r0);
    b.oblivious_transition(bot, w1, s1, r1);
    for (s, r) in [(s0, r0), (s1, r1)] {
        b.oblivious_transition(s, w0, s, r);
        b.oblivious_transition(s, w1, s, r);
        b.oblivious_transition(s, read, s, r);
    }
    b.oblivious_transition(bot, read, bot, rbot);
    b.build().expect("sticky bit type is well-formed")
}

/// The paper's archetypal *trivial* type: `|R| = 1`, so no invocation can
/// convey information (Section 5.1). State still evolves, uselessly.
pub fn mute(ports: usize) -> FiniteType {
    let mut b = TypeBuilder::new("mute", ports);
    let a = b.state("a");
    let c = b.state("b");
    let poke = b.invocation("poke");
    let ok = b.response("ok");
    b.oblivious_transition(a, poke, c, ok);
    b.oblivious_transition(c, poke, a, ok);
    b.build().expect("mute type is well-formed")
}

/// A trivial type with `|R| > 1`: each invocation has a fixed response
/// independent of state, so responses are a function of the invocation
/// alone. Trivial under both Section 5.1 and 5.2 definitions.
pub fn constant_responder(ports: usize) -> FiniteType {
    let mut b = TypeBuilder::new("constant_responder", ports);
    let a = b.state("a");
    let c = b.state("b");
    let ping = b.invocation("ping");
    let query = b.invocation("query");
    let ok = b.response("ok");
    let zero = b.response("0");
    for s in [a, c] {
        let other = if s == a { c } else { a };
        b.oblivious_transition(s, ping, other, ok);
        b.oblivious_transition(s, query, s, zero);
    }
    b.build().expect("constant responder type is well-formed")
}

/// The *marked ring*: a two-port, non-oblivious family whose minimal
/// non-trivial pair has `k = m` — the scaling knob for the witness-search
/// experiments (E5/E6).
///
/// States are (phase ∈ `0..m`, marked ∈ {0, 1}). The reader's `probe`
/// (port 0) advances the phase and answers `"y"` exactly when leaving the
/// last phase of a *marked* ring; the writer's `mark` (port 1) is
/// effective only from phase 0 of an unmarked ring. All other accesses
/// are inert, so a fresh mark is invisible until the reader has probed
/// all the way around: detecting it takes exactly `m` probes.
/// Initialize to `"p0m0"`.
pub fn marked_ring(m: usize) -> FiniteType {
    assert!(m >= 1, "a marked ring needs at least one phase");
    let mut b = TypeBuilder::new(format!("marked_ring{m}"), 2);
    let state_of = |p: usize, marked: usize| format!("p{p}m{marked}");
    let states: Vec<Vec<_>> = (0..m)
        .map(|p| (0..2).map(|mk| b.state(&state_of(p, mk))).collect())
        .collect();
    let probe = b.invocation("probe");
    let mark = b.invocation("mark");
    let x = b.response("x");
    let y = b.response("y");
    let ok = b.response("ok");
    let reader = crate::ids::PortId::new(0);
    let writer = crate::ids::PortId::new(1);
    for p in 0..m {
        for marked in 0..2 {
            let s = states[p][marked];
            // Reader probe: advance phase; y only when wrapping a marked ring.
            let resp = if marked == 1 && p == m - 1 { y } else { x };
            b.transition(s, reader, probe, states[(p + 1) % m][marked], resp);
            // Reader mark: inert.
            b.transition(s, reader, mark, s, ok);
            // Writer probe: inert.
            b.transition(s, writer, probe, s, x);
            // Writer mark: effective only from (0, unmarked).
            let next = if p == 0 && marked == 0 {
                states[0][1]
            } else {
                s
            };
            b.transition(s, writer, mark, next, ok);
        }
    }
    b.build().expect("marked ring type is well-formed")
}

/// A `w`-bit shift register (Aspnes 2025: consensus number exactly `w`).
///
/// States are the `2^w` bit strings, most-significant bit first.
/// Invocations `{shl, shr}` perform a logical shift — `shl` drops the
/// leading bit and inserts `0` on the right, `shr` drops the trailing
/// bit and inserts `0` on the left — and return the **new** contents as
/// the response. There is no separate read: the only way to observe the
/// register is to shift it, which is exactly what caps the consensus
/// number at the width. At `w = 1` both operations always yield `"0"`,
/// so the type is *trivial* (responses are a function of the invocation
/// alone — Section 5.1/5.2) and sits at level 1; at `w = 2` the order
/// of a `shl`/`shr` race is recoverable from the responses, giving
/// consensus number 2. Initialize to any bit string, e.g. `"01"`.
pub fn shift_register(w: usize, ports: usize) -> FiniteType {
    assert!((1..=8).contains(&w), "shift register width must be 1..=8");
    let mut b = TypeBuilder::new(format!("shift{w}"), ports);
    let name_of = |v: usize| -> String {
        (0..w)
            .rev()
            .map(|i| if v >> i & 1 == 1 { '1' } else { '0' })
            .collect()
    };
    let mask = (1usize << w) - 1;
    let states: Vec<_> = (0..=mask).map(|v| b.state(&name_of(v))).collect();
    let shl = b.invocation("shl");
    let shr = b.invocation("shr");
    let resps: Vec<_> = (0..=mask).map(|v| b.response(&name_of(v))).collect();
    for v in 0..=mask {
        let left = (v << 1) & mask;
        let right = v >> 1;
        b.oblivious_transition(states[v], shl, states[left], resps[left]);
        b.oblivious_transition(states[v], shr, states[right], resps[right]);
    }
    b.build().expect("shift register type is well-formed")
}

/// The Mostéfaoui–Perrin–Raynal `k`-sliding-window register (the
/// "simple object that spans the whole consensus hierarchy"; consensus
/// number exactly `k`).
///
/// `write0`/`write1` append a value (response `ok`); `read` returns the
/// window of the last `≤ k` written values, oldest first, as a
/// `"⟨…⟩"` response. At `k = 1` the object behaves like a plain
/// register (consensus number 1); at `k = 2` the window preserves the
/// order of the first two writes, so two processes can agree on who
/// wrote first. Initialize to `"⟨⟩"` (nothing written yet).
pub fn mpr(k: usize, ports: usize) -> FiniteType {
    assert!((1..=8).contains(&k), "mpr window size must be 1..=8");
    let mut b = TypeBuilder::new(format!("mpr{k}"), ports);
    // Enumerate all windows of length 0..=k over {0, 1}, oldest first.
    let mut windows: Vec<Vec<usize>> = vec![vec![]];
    let mut layer: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..k {
        let mut next = Vec::new();
        for c in &layer {
            for v in 0..2 {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        windows.extend(next.iter().cloned());
        layer = next;
    }
    let name_of = |c: &[usize]| {
        let inner: Vec<String> = c.iter().map(|v| v.to_string()).collect();
        format!("⟨{}⟩", inner.join(","))
    };
    let states: Vec<_> = windows.iter().map(|c| b.state(&name_of(c))).collect();
    let read = b.invocation("read");
    let writes: Vec<_> = (0..2).map(|v| b.invocation(&format!("write{v}"))).collect();
    let window_resps: Vec<_> = windows.iter().map(|c| b.response(&name_of(c))).collect();
    let ok = b.response("ok");
    let index_of = |c: &[usize]| {
        windows
            .iter()
            .position(|x| x == c)
            .expect("window enumerated")
    };
    for (i, c) in windows.iter().enumerate() {
        b.oblivious_transition(states[i], read, states[i], window_resps[i]);
        for (v, &write) in writes.iter().enumerate() {
            let mut c2 = c.clone();
            c2.push(v);
            if c2.len() > k {
                c2.remove(0);
            }
            b.oblivious_transition(states[i], write, states[index_of(&c2)], ok);
        }
    }
    b.build().expect("mpr type is well-formed")
}

/// Every deterministic type in the zoo, for exhaustive catalog tests.
/// All are built with `ports` ports where the constructor allows it.
pub fn deterministic_zoo(ports: usize) -> Vec<FiniteType> {
    vec![
        register(2, ports),
        register(3, ports),
        test_and_set(ports),
        swap(2, ports),
        fetch_and_add(3, ports),
        compare_and_swap(2, ports),
        queue(2, 2, 2),
        stack(2, 2, 2),
        sticky_bit(ports),
        consensus(ports),
        mute(ports),
        constant_responder(ports),
        shift_register(2, ports),
        mpr(2, ports),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PortId;
    use crate::triviality::{is_trivial, is_trivial_oblivious};

    #[test]
    fn consensus_matches_paper_delta() {
        let c = consensus(2);
        assert!(c.is_deterministic());
        assert!(c.is_oblivious());
        let bot = c.state_id("⊥").unwrap();
        let p0 = c.invocation_id("propose0").unwrap();
        let p1 = c.invocation_id("propose1").unwrap();
        let port = PortId::new(0);
        // δ(⊥, 0) = ⟨0, 0⟩; δ(⊥, 1) = ⟨1, 1⟩.
        let out0 = c.step(bot, port, p0);
        assert_eq!(c.state_name(out0.next), "0");
        assert_eq!(c.response_name(out0.resp), "0");
        // δ(0, 1) = ⟨0, 0⟩: first invocation decides.
        let out01 = c.step(out0.next, port, p1);
        assert_eq!(c.state_name(out01.next), "0");
        assert_eq!(c.response_name(out01.resp), "0");
    }

    #[test]
    fn one_use_bit_matches_paper_delta() {
        let t = one_use_bit();
        assert!(!t.is_deterministic(), "DEAD reads are nondeterministic");
        assert!(t.is_oblivious());
        assert_eq!(t.ports(), 2);
        let unset = t.state_id("UNSET").unwrap();
        let set = t.state_id("SET").unwrap();
        let dead = t.state_id("DEAD").unwrap();
        let read = t.invocation_id("read").unwrap();
        let write = t.invocation_id("write").unwrap();
        let port = PortId::new(0);
        // Reads kill the object and report the bit.
        assert_eq!(t.outcomes(unset, port, read).len(), 1);
        assert_eq!(t.step(unset, port, read).next, dead);
        assert_eq!(t.response_name(t.step(unset, port, read).resp), "0");
        assert_eq!(t.response_name(t.step(set, port, read).resp), "1");
        // DEAD reads may return either value.
        assert_eq!(t.outcomes(dead, port, read).len(), 2);
        // Writes: UNSET → SET → DEAD.
        assert_eq!(t.step(unset, port, write).next, set);
        assert_eq!(t.step(set, port, write).next, dead);
        assert_eq!(t.step(dead, port, write).next, dead);
    }

    #[test]
    fn test_and_set_first_wins() {
        let t = test_and_set(3);
        let q0 = t.state_id("unset").unwrap();
        let tas = t.invocation_id("test_and_set").unwrap();
        let (resps, _) = t.run(q0, PortId::new(0), &[tas, tas, tas]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["0", "1", "1"]);
    }

    #[test]
    fn swap_returns_previous() {
        let t = swap(3, 2);
        let v0 = t.state_id("v0").unwrap();
        let s1 = t.invocation_id("swap1").unwrap();
        let s2 = t.invocation_id("swap2").unwrap();
        let (resps, end) = t.run(v0, PortId::new(0), &[s1, s2]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["0", "1"]);
        assert_eq!(t.state_name(end), "v2");
    }

    #[test]
    fn fetch_and_add_saturates() {
        let t = fetch_and_add(2, 2);
        let q0 = t.state_id("0").unwrap();
        let fa = t.invocation_id("fetch_add").unwrap();
        let (resps, end) = t.run(q0, PortId::new(0), &[fa, fa, fa]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["0", "1", "2"]);
        assert_eq!(t.state_name(end), "2", "saturated at cap");
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let t = compare_and_swap(2, 2);
        let v0 = t.state_id("v0").unwrap();
        let cas01 = t.invocation_id("cas0_1").unwrap();
        let port = PortId::new(0);
        let out = t.step(v0, port, cas01);
        assert_eq!(t.state_name(out.next), "v1");
        assert_eq!(t.response_name(out.resp), "0");
        // A second identical CAS fails (value is now 1) and is a no-op.
        let out2 = t.step(out.next, port, cas01);
        assert_eq!(t.state_name(out2.next), "v1");
        assert_eq!(t.response_name(out2.resp), "1");
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let t = queue(2, 2, 2);
        let empty = t.state_id("⟨⟩").unwrap();
        let enq0 = t.invocation_id("enq0").unwrap();
        let enq1 = t.invocation_id("enq1").unwrap();
        let deq = t.invocation_id("deq").unwrap();
        let (resps, _) = t.run(empty, PortId::new(0), &[enq0, enq1, enq0, deq, deq, deq]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["ok", "ok", "full", "0", "1", "empty"]);
    }

    #[test]
    fn stack_is_lifo_and_bounded() {
        let t = stack(2, 2, 2);
        let empty = t.state_id("⟨⟩").unwrap();
        let push0 = t.invocation_id("push0").unwrap();
        let push1 = t.invocation_id("push1").unwrap();
        let pop = t.invocation_id("pop").unwrap();
        let (resps, _) = t.run(empty, PortId::new(0), &[push0, push1, push0, pop, pop, pop]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["ok", "ok", "full", "1", "0", "empty"]);
    }

    #[test]
    fn sticky_bit_sticks() {
        let t = sticky_bit(3);
        let bot = t.state_id("⊥").unwrap();
        let w0 = t.invocation_id("write0").unwrap();
        let w1 = t.invocation_id("write1").unwrap();
        let (resps, _) = t.run(bot, PortId::new(0), &[w1, w0, w0]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["1", "1", "1"], "first write sticks");
    }

    #[test]
    fn shift_register_shifts_and_returns_new_contents() {
        let t = shift_register(2, 2);
        assert!(t.is_deterministic());
        assert!(t.is_oblivious());
        let init = t.state_id("01").unwrap();
        let shl = t.invocation_id("shl").unwrap();
        let shr = t.invocation_id("shr").unwrap();
        let port = PortId::new(0);
        // "01" —shl→ "10" (drop leading 0, insert 0 on the right).
        let out = t.step(init, port, shl);
        assert_eq!(t.state_name(out.next), "10");
        assert_eq!(t.response_name(out.resp), "10");
        // "10" —shr→ "01" (drop trailing 0, insert 0 on the left).
        let out2 = t.step(out.next, port, shr);
        assert_eq!(t.state_name(out2.next), "01");
        assert_eq!(t.response_name(out2.resp), "01");
        // "01" —shr→ "00": the set bit falls off the right edge.
        let out3 = t.step(init, port, shr);
        assert_eq!(t.state_name(out3.next), "00");
        assert_eq!(t.response_name(out3.resp), "00");
    }

    #[test]
    fn one_bit_shift_register_is_trivial() {
        // Both shifts always produce "0": responses are a function of
        // the invocation alone, so shift1 is trivial (Section 5.1/5.2)
        // and its consensus number is 1 — the w = 1 case of Aspnes's
        // "consensus number equals width".
        let t = shift_register(1, 2);
        let port = PortId::new(0);
        for q in t.states() {
            for i in t.invocations() {
                let out = t.step(q, port, i);
                assert_eq!(t.response_name(out.resp), "0");
                assert_eq!(t.state_name(out.next), "0");
            }
        }
        assert!(is_trivial(&t).unwrap());
        assert!(is_trivial_oblivious(&t).unwrap());
        // Width 2 is already non-trivial: a shl/shr race is observable.
        assert!(!is_trivial(&shift_register(2, 2)).unwrap());
    }

    #[test]
    fn mpr_window_keeps_the_last_k_values_oldest_first() {
        let t = mpr(2, 2);
        assert!(t.is_deterministic());
        assert!(t.is_oblivious());
        assert_eq!(t.state_count(), 7, "windows of length 0..=2 over {{0,1}}");
        let empty = t.state_id("⟨⟩").unwrap();
        let w0 = t.invocation_id("write0").unwrap();
        let w1 = t.invocation_id("write1").unwrap();
        let read = t.invocation_id("read").unwrap();
        let (resps, end) = t.run(empty, PortId::new(0), &[read, w0, w1, read, w1, read]);
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["⟨⟩", "ok", "ok", "⟨0,1⟩", "ok", "⟨1,1⟩"]);
        assert_eq!(t.state_name(end), "⟨1,1⟩");
    }

    #[test]
    fn mpr_is_non_trivial_at_every_window_size() {
        for k in 1..=3 {
            assert!(!is_trivial(&mpr(k, 2)).unwrap(), "mpr{k}");
        }
    }

    #[test]
    fn triviality_classification_of_the_zoo() {
        // The only trivial types in the zoo are `mute` and
        // `constant_responder`; everything else implements one-use bits.
        for t in deterministic_zoo(2) {
            let trivially = is_trivial(&t).unwrap();
            let expected = matches!(t.name(), "mute" | "constant_responder");
            assert_eq!(trivially, expected, "type {}", t.name());
            if t.is_oblivious() {
                assert_eq!(
                    is_trivial_oblivious(&t).unwrap(),
                    expected,
                    "type {}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn marked_ring_witness_takes_m_probes() {
        use crate::witness::find_witness;
        for m in 1..6 {
            let t = marked_ring(m);
            assert!(t.is_deterministic());
            assert!(!t.is_oblivious() || m == 0);
            let w = find_witness(&t)
                .unwrap()
                .expect("marked ring is non-trivial");
            assert_eq!(w.k(), m, "marked_ring{m}");
            assert!(w.verify(&t));
        }
    }

    #[test]
    fn zoo_is_deterministic() {
        for t in deterministic_zoo(2) {
            assert!(t.is_deterministic(), "type {}", t.name());
            assert!(t.is_oblivious(), "type {}", t.name());
        }
    }
}
