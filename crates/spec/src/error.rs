//! Error types for the specification crate.

use std::error::Error;
use std::fmt;

use crate::ids::{InvId, PortId, StateId};

/// An error raised while building a [`FiniteType`](crate::FiniteType).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildTypeError {
    /// The type declares zero ports; the paper requires `n ≥ 1`.
    NoPorts,
    /// The type declares no states.
    NoStates,
    /// The type declares no invocations.
    NoInvocations,
    /// The type declares no responses.
    NoResponses,
    /// The transition function is not total: `δ(q, j, i)` is empty.
    ///
    /// The paper's `δ` is a total function from `Q × N_n × I`; a builder
    /// must define at least one outcome for every combination.
    MissingTransition {
        /// State with the missing transition.
        state: StateId,
        /// Port with the missing transition.
        port: PortId,
        /// Invocation with the missing transition.
        invocation: InvId,
    },
    /// A transition refers to a state, port, invocation, or response that
    /// was never declared.
    UnknownComponent {
        /// Description of the out-of-range component.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The number of declared components of that kind.
        limit: usize,
    },
}

impl fmt::Display for BuildTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTypeError::NoPorts => write!(f, "type must declare at least one port"),
            BuildTypeError::NoStates => write!(f, "type must declare at least one state"),
            BuildTypeError::NoInvocations => {
                write!(f, "type must declare at least one invocation")
            }
            BuildTypeError::NoResponses => write!(f, "type must declare at least one response"),
            BuildTypeError::MissingTransition {
                state,
                port,
                invocation,
            } => write!(
                f,
                "transition function is partial: no outcome for ({state}, {port}, {invocation})"
            ),
            BuildTypeError::UnknownComponent { what, index, limit } => {
                write!(f, "unknown {what} index {index} (only {limit} declared)")
            }
        }
    }
}

impl Error for BuildTypeError {}

/// An error raised by analyses that require a restricted class of types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The analysis is only defined for deterministic types.
    ///
    /// The paper's triviality results (Sections 5.1 and 5.2) apply to
    /// deterministic types; nondeterministic types such as Jayanti's
    /// separating type are handled by the `h_m ≥ 2` case (Section 5.3).
    RequiresDeterministic {
        /// Name of the offending type.
        type_name: String,
    },
    /// The analysis is only defined for oblivious types.
    RequiresOblivious {
        /// Name of the offending type.
        type_name: String,
    },
    /// A port index exceeds the type's port count.
    PortOutOfRange {
        /// The offending port.
        port: PortId,
        /// The type's port count.
        ports: usize,
    },
    /// The type has fewer than two ports, so reader/writer derivations
    /// (Section 5) cannot apply.
    NeedsTwoPorts {
        /// Name of the offending type.
        type_name: String,
    },
    /// The search exhausted a [`control::Budget`](crate::control::Budget)
    /// axis before completing.
    Exhausted(crate::control::Exhausted),
    /// The search's [`CancelToken`](crate::control::CancelToken) was set
    /// before completion.
    Cancelled {
        /// Work completed when the token was observed.
        progress: crate::control::Progress,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::RequiresDeterministic { type_name } => {
                write!(
                    f,
                    "analysis requires a deterministic type, but `{type_name}` is nondeterministic"
                )
            }
            AnalysisError::RequiresOblivious { type_name } => {
                write!(
                    f,
                    "analysis requires an oblivious type, but `{type_name}` is not oblivious"
                )
            }
            AnalysisError::PortOutOfRange { port, ports } => {
                write!(f, "{port} out of range for type with {ports} ports")
            }
            AnalysisError::NeedsTwoPorts { type_name } => {
                write!(
                    f,
                    "`{type_name}` has fewer than two ports; reader/writer derivation needs two"
                )
            }
            AnalysisError::Exhausted(e) => write!(f, "{e}"),
            AnalysisError::Cancelled { .. } => {
                write!(f, "witness search cancelled before completion")
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = BuildTypeError::NoPorts.to_string();
        assert!(e.starts_with("type"));
        assert!(!e.ends_with('.'));

        let e = AnalysisError::RequiresDeterministic {
            type_name: "t".into(),
        }
        .to_string();
        assert!(e.contains("nondeterministic"));
        assert!(!e.ends_with('.'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildTypeError>();
        assert_err::<AnalysisError>();
    }
}
