//! Finite concurrent data types: the paper's 5-tuple `⟨n, Q, I, R, δ⟩`.
//!
//! A [`FiniteType`] is a table-driven representation of a concurrent data
//! type as defined in Section 2.1 of the paper. The transition function `δ`
//! maps a (state, port, invocation) triple to a *set* of (state, response)
//! outcomes; a type is *deterministic* when every such set is a singleton
//! and *oblivious* when outcomes do not depend on the port.
//!
//! Types are constructed with [`TypeBuilder`], which validates that `δ` is
//! total before producing a [`FiniteType`] ([C-VALIDATE]).

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::error::BuildTypeError;
use crate::ids::{InvId, PortId, RespId, StateId};

/// One outcome of the transition function: the successor state and the
/// response returned over the invoking port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Outcome {
    /// The successor state `q'`.
    pub next: StateId,
    /// The response `r` returned to the invoker.
    pub resp: RespId,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.next, self.resp)
    }
}

/// A finite concurrent data type `⟨n, Q, I, R, δ⟩` (paper, Section 2.1).
///
/// # Examples
///
/// ```
/// use wfc_spec::{TypeBuilder, PortId};
///
/// // A two-port bit supporting `read` and `set`.
/// let mut b = TypeBuilder::new("bit", 2);
/// let q0 = b.state("0");
/// let q1 = b.state("1");
/// let read = b.invocation("read");
/// let set = b.invocation("set");
/// let r0 = b.response("0");
/// let r1 = b.response("1");
/// let ok = b.response("ok");
/// b.oblivious_transition(q0, read, q0, r0);
/// b.oblivious_transition(q1, read, q1, r1);
/// b.oblivious_transition(q0, set, q1, ok);
/// b.oblivious_transition(q1, set, q1, ok);
/// let bit = b.build()?;
/// assert!(bit.is_deterministic());
/// assert!(bit.is_oblivious());
/// # Ok::<(), wfc_spec::BuildTypeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FiniteType {
    name: String,
    ports: usize,
    states: Vec<String>,
    invocations: Vec<String>,
    responses: Vec<String>,
    /// `delta[(q * ports + j) * |I| + i]` is the outcome set of `δ(q, j, i)`,
    /// sorted and deduplicated.
    delta: Vec<Vec<Outcome>>,
}

impl FiniteType {
    /// Returns the human-readable name of the type.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of ports `n`.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Returns the number of states `|Q|`.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Returns the number of invocations `|I|`.
    pub fn invocation_count(&self) -> usize {
        self.invocations.len()
    }

    /// Returns the number of responses `|R|`.
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }

    /// Returns the name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.states[q.index()]
    }

    /// Returns the name of an invocation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn invocation_name(&self, i: InvId) -> &str {
        &self.invocations[i.index()]
    }

    /// Returns the name of a response.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn response_name(&self, r: RespId) -> &str {
        &self.responses[r.index()]
    }

    /// Looks up a state by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s == name).map(StateId::new)
    }

    /// Looks up an invocation by name.
    pub fn invocation_id(&self, name: &str) -> Option<InvId> {
        self.invocations
            .iter()
            .position(|s| s == name)
            .map(InvId::new)
    }

    /// Looks up a response by name.
    pub fn response_id(&self, name: &str) -> Option<RespId> {
        self.responses
            .iter()
            .position(|s| s == name)
            .map(RespId::new)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len()).map(StateId::new)
    }

    /// Iterates over all ports.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..self.ports).map(PortId::new)
    }

    /// Iterates over all invocations.
    pub fn invocations(&self) -> impl Iterator<Item = InvId> + '_ {
        (0..self.invocations.len()).map(InvId::new)
    }

    /// Iterates over all responses.
    pub fn responses(&self) -> impl Iterator<Item = RespId> + '_ {
        (0..self.responses.len()).map(RespId::new)
    }

    #[inline]
    fn slot(&self, q: StateId, j: PortId, i: InvId) -> usize {
        debug_assert!(q.index() < self.states.len());
        debug_assert!(j.index() < self.ports);
        debug_assert!(i.index() < self.invocations.len());
        (q.index() * self.ports + j.index()) * self.invocations.len() + i.index()
    }

    /// Returns the outcome set `δ(q, j, i)`.
    ///
    /// The returned slice is non-empty (the builder guarantees totality),
    /// sorted, and free of duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any identifier is out of range.
    pub fn outcomes(&self, q: StateId, j: PortId, i: InvId) -> &[Outcome] {
        &self.delta[self.slot(q, j, i)]
    }

    /// Returns the unique outcome of `δ(q, j, i)` for a deterministic type.
    ///
    /// # Panics
    ///
    /// Panics if the outcome set is not a singleton (i.e. the type is
    /// nondeterministic at this point) or if an identifier is out of range.
    /// Use [`FiniteType::outcomes`] for nondeterministic types.
    pub fn step(&self, q: StateId, j: PortId, i: InvId) -> Outcome {
        let outs = self.outcomes(q, j, i);
        assert!(
            outs.len() == 1,
            "type `{}` is nondeterministic at ({q}, {j}, {i})",
            self.name
        );
        outs[0]
    }

    /// Returns `true` if every outcome set is a singleton (paper: `δ : Q ×
    /// N_n × I ↦ Q × R`).
    pub fn is_deterministic(&self) -> bool {
        self.delta.iter().all(|outs| outs.len() == 1)
    }

    /// Returns `true` if outcomes never depend on the invoking port
    /// (paper: `δ(q, j₁, i) = δ(q, j₂, i)` for all `j₁, j₂`).
    pub fn is_oblivious(&self) -> bool {
        for q in self.states() {
            for i in self.invocations() {
                let first = self.outcomes(q, PortId::new(0), i);
                for j in 1..self.ports {
                    if self.outcomes(q, PortId::new(j), i) != first {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Returns the set of states reachable from `q` (inclusive) via any
    /// sequence of invocations on any ports — the paper's notion of
    /// reachability through sequential histories (Section 2.1).
    ///
    /// The result is sorted by state index.
    pub fn reachable_from(&self, q: StateId) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        seen[q.index()] = true;
        let mut queue = VecDeque::from([q]);
        while let Some(s) = queue.pop_front() {
            for j in self.port_ids() {
                for i in self.invocations() {
                    for out in self.outcomes(s, j, i) {
                        if !seen[out.next.index()] {
                            seen[out.next.index()] = true;
                            queue.push_back(out.next);
                        }
                    }
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(k, _)| StateId::new(k))
            .collect()
    }

    /// Closes `seed` under transitions taken on any port *other than*
    /// `port`. This is the interference closure used by the general
    /// triviality decider (Section 5.2): from any state in the result, the
    /// processes on other ports may have moved the object to any other state
    /// in the result without the observer on `port` taking a step.
    pub fn interference_closure(
        &self,
        seed: &BTreeSet<StateId>,
        port: PortId,
    ) -> BTreeSet<StateId> {
        let mut set = seed.clone();
        let mut queue: VecDeque<StateId> = seed.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for j in self.port_ids() {
                if j == port {
                    continue;
                }
                for i in self.invocations() {
                    for out in self.outcomes(s, j, i) {
                        if set.insert(out.next) {
                            queue.push_back(out.next);
                        }
                    }
                }
            }
        }
        set
    }

    /// Runs a sequence of invocations on a single port of a deterministic
    /// type and returns the responses, in order, together with the final
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the type is nondeterministic along the run or any
    /// identifier is out of range.
    pub fn run(&self, start: StateId, port: PortId, invs: &[InvId]) -> (Vec<RespId>, StateId) {
        let mut q = start;
        let mut resps = Vec::with_capacity(invs.len());
        for &i in invs {
            let out = self.step(q, port, i);
            resps.push(out.resp);
            q = out.next;
        }
        (resps, q)
    }
}

impl fmt::Display for FiniteType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ⟨n={}, |Q|={}, |I|={}, |R|={}⟩",
            self.name,
            self.ports,
            self.states.len(),
            self.invocations.len(),
            self.responses.len()
        )
    }
}

/// Builder for [`FiniteType`] values ([C-BUILDER]).
///
/// Component names are interned on first use; `state`, `invocation` and
/// `response` return the identifier for an existing name rather than
/// creating a duplicate.
#[derive(Clone, Debug, Default)]
pub struct TypeBuilder {
    name: String,
    ports: usize,
    states: Vec<String>,
    invocations: Vec<String>,
    responses: Vec<String>,
    /// (state, port, invocation) → outcomes, collected densely at build time.
    transitions: Vec<(StateId, PortId, InvId, Outcome)>,
}

impl TypeBuilder {
    /// Creates a builder for a type named `name` with `ports` ports.
    pub fn new(name: impl Into<String>, ports: usize) -> Self {
        TypeBuilder {
            name: name.into(),
            ports,
            ..TypeBuilder::default()
        }
    }

    fn intern(list: &mut Vec<String>, name: &str) -> usize {
        if let Some(k) = list.iter().position(|s| s == name) {
            k
        } else {
            list.push(name.to_owned());
            list.len() - 1
        }
    }

    /// Declares (or looks up) a state by name.
    pub fn state(&mut self, name: &str) -> StateId {
        StateId::new(Self::intern(&mut self.states, name))
    }

    /// Declares (or looks up) an invocation by name.
    pub fn invocation(&mut self, name: &str) -> InvId {
        InvId::new(Self::intern(&mut self.invocations, name))
    }

    /// Declares (or looks up) a response by name.
    pub fn response(&mut self, name: &str) -> RespId {
        RespId::new(Self::intern(&mut self.responses, name))
    }

    /// Adds one outcome to `δ(from, port, inv)`.
    ///
    /// Adding more than one distinct outcome to the same triple makes the
    /// type nondeterministic.
    pub fn transition(
        &mut self,
        from: StateId,
        port: PortId,
        inv: InvId,
        to: StateId,
        resp: RespId,
    ) -> &mut Self {
        self.transitions
            .push((from, port, inv, Outcome { next: to, resp }));
        self
    }

    /// Adds the same outcome to `δ(from, j, inv)` for every port `j`:
    /// the oblivious-type convenience used by most of the canonical zoo.
    pub fn oblivious_transition(
        &mut self,
        from: StateId,
        inv: InvId,
        to: StateId,
        resp: RespId,
    ) -> &mut Self {
        for j in 0..self.ports {
            self.transition(from, PortId::new(j), inv, to, resp);
        }
        self
    }

    /// Finalizes the type, verifying that the transition function is total.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTypeError`] if the type has no ports, states,
    /// invocations or responses; if a transition refers to an undeclared
    /// component; or if some `δ(q, j, i)` has no outcome.
    pub fn build(self) -> Result<FiniteType, BuildTypeError> {
        if self.ports == 0 {
            return Err(BuildTypeError::NoPorts);
        }
        if self.states.is_empty() {
            return Err(BuildTypeError::NoStates);
        }
        if self.invocations.is_empty() {
            return Err(BuildTypeError::NoInvocations);
        }
        if self.responses.is_empty() {
            return Err(BuildTypeError::NoResponses);
        }
        let slots = self.states.len() * self.ports * self.invocations.len();
        let mut delta: Vec<Vec<Outcome>> = vec![Vec::new(); slots];
        for (q, j, i, out) in &self.transitions {
            for (what, index, limit) in [
                ("state", q.index(), self.states.len()),
                ("port", j.index(), self.ports),
                ("invocation", i.index(), self.invocations.len()),
                ("state", out.next.index(), self.states.len()),
                ("response", out.resp.index(), self.responses.len()),
            ] {
                if index >= limit {
                    return Err(BuildTypeError::UnknownComponent { what, index, limit });
                }
            }
            let slot = (q.index() * self.ports + j.index()) * self.invocations.len() + i.index();
            delta[slot].push(*out);
        }
        for (slot, outs) in delta.iter_mut().enumerate() {
            if outs.is_empty() {
                let i = slot % self.invocations.len();
                let rest = slot / self.invocations.len();
                let j = rest % self.ports;
                let q = rest / self.ports;
                return Err(BuildTypeError::MissingTransition {
                    state: StateId::new(q),
                    port: PortId::new(j),
                    invocation: InvId::new(i),
                });
            }
            outs.sort_unstable();
            outs.dedup();
        }
        Ok(FiniteType {
            name: self.name,
            ports: self.ports,
            states: self.states,
            invocations: self.invocations,
            responses: self.responses,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_port_bit() -> FiniteType {
        let mut b = TypeBuilder::new("bit", 2);
        let q0 = b.state("0");
        let q1 = b.state("1");
        let read = b.invocation("read");
        let set = b.invocation("set");
        let r0 = b.response("0");
        let r1 = b.response("1");
        let ok = b.response("ok");
        b.oblivious_transition(q0, read, q0, r0);
        b.oblivious_transition(q1, read, q1, r1);
        b.oblivious_transition(q0, set, q1, ok);
        b.oblivious_transition(q1, set, q1, ok);
        b.build().expect("valid type")
    }

    #[test]
    fn builder_interns_names() {
        let mut b = TypeBuilder::new("t", 1);
        let a = b.state("a");
        let a2 = b.state("a");
        assert_eq!(a, a2);
        assert_eq!(b.state("b").index(), 1);
    }

    #[test]
    fn bit_is_deterministic_and_oblivious() {
        let t = two_port_bit();
        assert!(t.is_deterministic());
        assert!(t.is_oblivious());
        assert_eq!(t.ports(), 2);
        assert_eq!(t.state_count(), 2);
    }

    #[test]
    fn step_follows_delta() {
        let t = two_port_bit();
        let q0 = t.state_id("0").unwrap();
        let q1 = t.state_id("1").unwrap();
        let set = t.invocation_id("set").unwrap();
        let read = t.invocation_id("read").unwrap();
        let out = t.step(q0, PortId::new(1), set);
        assert_eq!(out.next, q1);
        assert_eq!(t.response_name(t.step(q1, PortId::new(0), read).resp), "1");
    }

    #[test]
    fn run_collects_responses() {
        let t = two_port_bit();
        let q0 = t.state_id("0").unwrap();
        let read = t.invocation_id("read").unwrap();
        let set = t.invocation_id("set").unwrap();
        let (resps, end) = t.run(q0, PortId::new(0), &[read, set, read]);
        assert_eq!(end, t.state_id("1").unwrap());
        let names: Vec<_> = resps.iter().map(|&r| t.response_name(r)).collect();
        assert_eq!(names, ["0", "ok", "1"]);
    }

    #[test]
    fn reachability_is_inclusive_and_monotone() {
        let t = two_port_bit();
        let q0 = t.state_id("0").unwrap();
        let q1 = t.state_id("1").unwrap();
        assert_eq!(t.reachable_from(q0), vec![q0, q1]);
        // `set` is one-way: q1 cannot reach q0.
        assert_eq!(t.reachable_from(q1), vec![q1]);
    }

    #[test]
    fn interference_closure_excludes_own_port() {
        let t = two_port_bit();
        let q0 = t.state_id("0").unwrap();
        let seed: BTreeSet<StateId> = [q0].into();
        // The other port can run `set`, so both states are possible.
        let clo = t.interference_closure(&seed, PortId::new(0));
        assert_eq!(clo.len(), 2);
    }

    #[test]
    fn partial_delta_is_rejected() {
        let mut b = TypeBuilder::new("partial", 1);
        let q0 = b.state("a");
        let q1 = b.state("b");
        let i = b.invocation("poke");
        let r = b.response("ok");
        b.transition(q0, PortId::new(0), i, q1, r);
        // No transition out of q1.
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildTypeError::MissingTransition { .. }));
    }

    #[test]
    fn empty_components_are_rejected() {
        assert_eq!(
            TypeBuilder::new("t", 0).build().unwrap_err(),
            BuildTypeError::NoPorts
        );
        assert_eq!(
            TypeBuilder::new("t", 1).build().unwrap_err(),
            BuildTypeError::NoStates
        );
    }

    #[test]
    fn out_of_range_components_are_rejected() {
        let mut b = TypeBuilder::new("t", 1);
        let q = b.state("a");
        let i = b.invocation("i");
        let r = b.response("r");
        b.transition(q, PortId::new(5), i, q, r);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildTypeError::UnknownComponent { what: "port", .. }
        ));
    }

    #[test]
    fn nondeterministic_outcomes_are_sorted_and_deduped() {
        let mut b = TypeBuilder::new("nd", 1);
        let q = b.state("a");
        let p = b.state("b");
        let i = b.invocation("flip");
        let r0 = b.response("0");
        let r1 = b.response("1");
        let port = PortId::new(0);
        b.transition(q, port, i, p, r1);
        b.transition(q, port, i, q, r0);
        b.transition(q, port, i, q, r0); // duplicate
        b.transition(p, port, i, p, r1);
        let t = b.build().unwrap();
        assert!(!t.is_deterministic());
        assert_eq!(t.outcomes(q, port, i).len(), 2);
    }

    #[test]
    fn display_mentions_cardinalities() {
        let t = two_port_bit();
        let s = t.to_string();
        assert!(s.contains("n=2"));
        assert!(s.contains("|Q|=2"));
    }
}
