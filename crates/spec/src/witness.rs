//! Minimal non-trivial pairs (paper, Section 5.2, Lemmas 2–4).
//!
//! For a non-trivial deterministic type, the paper proves that a *minimal*
//! non-trivial pair of histories `(H₁, H₂)` has a rigid normal form:
//!
//! * **Lemma 2.** `H₁` consists only of the `k` invocations `ī` on the
//!   reader's port.
//! * **Lemma 3.** The last `k` invocations of `H₂` are all on the reader's
//!   port.
//! * **Lemma 4.** `|H₂| = k + 1`: one invocation `i_w` on a writer port
//!   followed by `ī` on the reader's port.
//!
//! [`find_witness`] searches this normal form directly — for every start
//! state, reader/writer port pair, and writer invocation, it finds the
//! shortest reader sequence distinguishing the written from the unwritten
//! object via a BFS over state pairs — and returns the minimal witness.
//! Because the normal form is complete for minimal pairs, the search
//! succeeds iff the type is non-trivial, which is cross-checked against
//! [`crate::triviality::is_trivial`] in tests (a machine check of
//! Lemmas 2–4).

use std::collections::{HashMap, VecDeque};

use crate::control::{Budget, CancelToken, Progress};
use crate::error::AnalysisError;
use crate::history::SequentialHistory;
use crate::ids::{InvId, PortId, RespId, StateId};
use crate::types::FiniteType;

/// A non-trivial pair in Lemma-4 normal form.
///
/// `H₁` runs `reader_seq` on `reader_port` from `start`; `H₂` first runs
/// `writer_inv` on `writer_port`, then the same `reader_seq`. The two runs
/// return different values at the last invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NonTrivialWitness {
    /// Start state `q` of both histories.
    pub start: StateId,
    /// The reader's port (the paper's port 1).
    pub reader_port: PortId,
    /// The writer's port (the paper's port 2).
    pub writer_port: PortId,
    /// The writer's single invocation `i_w`.
    pub writer_inv: InvId,
    /// The reader's invocation sequence `ī = ⟨i₁, …, i_k⟩`.
    pub reader_seq: Vec<InvId>,
    /// Responses along `H₁` (unwritten object); the last is `H₁`'s return
    /// value, which the derived one-use-bit reader maps to 0.
    pub unwritten_resps: Vec<RespId>,
    /// Responses along the suffix of `H₂` (written object); the last is
    /// `H₂`'s return value.
    pub written_resps: Vec<RespId>,
}

impl NonTrivialWitness {
    /// `k`, the length of the reader sequence.
    pub fn k(&self) -> usize {
        self.reader_seq.len()
    }

    /// `|H₁| + |H₂| = 2k + 1`, the minimality measure of Section 5.2.
    pub fn total_len(&self) -> usize {
        2 * self.k() + 1
    }

    /// `H₁`'s return value: the response signalling "writer has not
    /// written". Any other final response signals "writer has written".
    pub fn unwritten_return(&self) -> RespId {
        *self
            .unwritten_resps
            .last()
            .expect("witness reader sequence is non-empty")
    }

    /// Reconstructs `H₁` as a [`SequentialHistory`].
    pub fn history_unwritten(&self, ty: &FiniteType) -> SequentialHistory {
        let ops: Vec<_> = self
            .reader_seq
            .iter()
            .map(|&i| (self.reader_port, i))
            .collect();
        SequentialHistory::run(ty, self.start, &ops)
    }

    /// Reconstructs `H₂` as a [`SequentialHistory`].
    pub fn history_written(&self, ty: &FiniteType) -> SequentialHistory {
        let mut ops = vec![(self.writer_port, self.writer_inv)];
        ops.extend(self.reader_seq.iter().map(|&i| (self.reader_port, i)));
        SequentialHistory::run(ty, self.start, &ops)
    }

    /// Verifies the witness against the type: both histories are legal, the
    /// reader sequences coincide, and the return values differ. This is the
    /// definition of a non-trivial pair in normal form.
    pub fn verify(&self, ty: &FiniteType) -> bool {
        if self.reader_seq.is_empty() || self.reader_port == self.writer_port {
            return false;
        }
        let h1 = self.history_unwritten(ty);
        let h2 = self.history_written(ty);
        h1.is_legal(ty)
            && h2.is_legal(ty)
            && h1.return_value() != h2.return_value()
            && h1.events().iter().map(|e| e.resp).collect::<Vec<_>>() == self.unwritten_resps
            && h2.events()[1..].iter().map(|e| e.resp).collect::<Vec<_>>() == self.written_resps
    }
}

/// Searches for a minimal non-trivial pair in Lemma-4 normal form.
///
/// Returns `None` exactly when the type is trivial in the general
/// (Section 5.2) sense. When `Some`, the witness has globally minimal `k`
/// over all start states, port pairs, and writer invocations.
///
/// # Errors
///
/// Returns [`AnalysisError::RequiresDeterministic`] for nondeterministic
/// types and [`AnalysisError::NeedsTwoPorts`] for single-port types (with
/// one port there are no "other ports" to observe, so the general
/// definition makes every single-port deterministic type trivial).
pub fn find_witness(ty: &FiniteType) -> Result<Option<NonTrivialWitness>, AnalysisError> {
    find_witness_with(ty, CancelToken::NONE, &Budget::default())
}

/// [`find_witness`] under the workspace control plane: the token and the
/// budget's wall deadline are polled at every `(start, reader_port)`
/// sync point, so a serving layer can preempt the search mid-sweep.
///
/// # Errors
///
/// In addition to [`find_witness`]'s errors, returns
/// [`AnalysisError::Cancelled`] once the token is set and
/// [`AnalysisError::Exhausted`] past the wall deadline, both carrying
/// the number of sync points passed in
/// [`Progress::steps`](crate::control::Progress).
pub fn find_witness_with(
    ty: &FiniteType,
    cancel: CancelToken,
    budget: &Budget,
) -> Result<Option<NonTrivialWitness>, AnalysisError> {
    wfc_obs::counter!("spec.witness_searches");
    if !ty.is_deterministic() {
        return Err(AnalysisError::RequiresDeterministic {
            type_name: ty.name().to_owned(),
        });
    }
    if ty.ports() < 2 {
        return Err(AnalysisError::NeedsTwoPorts {
            type_name: ty.name().to_owned(),
        });
    }
    let mut best: Option<NonTrivialWitness> = None;
    let mut polls: u64 = 0;
    for start in ty.states() {
        for reader_port in ty.port_ids() {
            let progress = Progress {
                steps: polls,
                ..Progress::default()
            };
            polls += 1;
            if cancel.is_cancelled() {
                progress.record();
                return Err(AnalysisError::Cancelled { progress });
            }
            if let Some(e) = budget.wall_exceeded(progress) {
                return Err(AnalysisError::Exhausted(e));
            }
            for writer_port in ty.port_ids() {
                if reader_port == writer_port {
                    continue;
                }
                for writer_inv in ty.invocations() {
                    let written = ty.step(start, writer_port, writer_inv).next;
                    if written == start {
                        continue; // the write is invisible: states coincide
                    }
                    if let Some(seq) =
                        shortest_distinguishing_sequence(ty, reader_port, start, written)
                    {
                        if best.as_ref().is_some_and(|b| b.k() <= seq.len()) {
                            continue;
                        }
                        let (unwritten_resps, _) = ty.run(start, reader_port, &seq);
                        let (written_resps, _) = ty.run(written, reader_port, &seq);
                        best = Some(NonTrivialWitness {
                            start,
                            reader_port,
                            writer_port,
                            writer_inv,
                            reader_seq: seq,
                            unwritten_resps,
                            written_resps,
                        });
                    }
                }
            }
        }
    }
    Ok(best)
}

/// BFS over state pairs: the shortest invocation sequence on `port` whose
/// *last* response differs when run from `a` versus `b`. Classic
/// Moore-style state distinguishability, `O(|Q|² · |I|)`.
fn shortest_distinguishing_sequence(
    ty: &FiniteType,
    port: PortId,
    a: StateId,
    b: StateId,
) -> Option<Vec<InvId>> {
    if a == b {
        return None;
    }
    // parent[(a, b)] = (previous pair, invocation taken)
    let mut parent: HashMap<(StateId, StateId), ((StateId, StateId), InvId)> = HashMap::new();
    let mut queue = VecDeque::from([(a, b)]);
    parent.insert((a, b), ((a, b), InvId::new(usize::MAX)));
    while let Some((x, y)) = queue.pop_front() {
        for inv in ty.invocations() {
            let ox = ty.step(x, port, inv);
            let oy = ty.step(y, port, inv);
            if ox.resp != oy.resp {
                // Reconstruct the path to (x, y), then append `inv`.
                let mut seq = vec![inv];
                let mut cur = (x, y);
                while cur != (a, b) {
                    let (prev, step) = parent[&cur];
                    seq.push(step);
                    cur = prev;
                }
                seq.reverse();
                return Some(seq);
            }
            let next = (ox.next, oy.next);
            if next.0 != next.1 && !parent.contains_key(&next) {
                parent.insert(next, ((x, y), inv));
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triviality::is_trivial;
    use crate::types::TypeBuilder;

    fn settable_bit() -> FiniteType {
        let mut b = TypeBuilder::new("bit", 2);
        let q0 = b.state("0");
        let q1 = b.state("1");
        let read = b.invocation("read");
        let set = b.invocation("set");
        let r0 = b.response("0");
        let r1 = b.response("1");
        let ok = b.response("ok");
        b.oblivious_transition(q0, read, q0, r0);
        b.oblivious_transition(q1, read, q1, r1);
        b.oblivious_transition(q0, set, q1, ok);
        b.oblivious_transition(q1, set, q1, ok);
        b.build().unwrap()
    }

    /// Non-oblivious, non-trivial type whose minimal witness needs k = 2
    /// reader probes. States are (phase, marked) pairs; port 0's `probe`
    /// flips the phase and answers `y` only from (1, marked); port 1's
    /// `mark` is effective only from (0, unmarked); everything else is
    /// inert, so no single probe can detect a fresh mark.
    fn two_probe_type() -> FiniteType {
        let mut b = TypeBuilder::new("delayed2", 2);
        let p0m0 = b.state("p0m0");
        let p1m0 = b.state("p1m0");
        let p0m1 = b.state("p0m1");
        let p1m1 = b.state("p1m1");
        let probe = b.invocation("probe");
        let mark = b.invocation("mark");
        let x = b.response("x");
        let y = b.response("y");
        let ok = b.response("ok");
        let reader = PortId::new(0);
        let writer = PortId::new(1);
        // Port 0: probe flips phase; response y iff marked && phase == 1.
        for (s, t2, r) in [
            (p0m0, p1m0, x),
            (p1m0, p0m0, x),
            (p0m1, p1m1, x),
            (p1m1, p0m1, y),
        ] {
            b.transition(s, reader, probe, t2, r);
        }
        // Port 0: mark is inert.
        for s in [p0m0, p1m0, p0m1, p1m1] {
            b.transition(s, reader, mark, s, ok);
        }
        // Port 1: probe is inert (so a writer probing cannot be detected).
        for s in [p0m0, p1m0, p0m1, p1m1] {
            b.transition(s, writer, probe, s, x);
        }
        // Port 1: mark is effective only from (0, unmarked).
        for (s, t2) in [(p0m0, p0m1), (p1m0, p1m0), (p0m1, p0m1), (p1m1, p1m1)] {
            b.transition(s, writer, mark, t2, ok);
        }
        b.build().unwrap()
    }

    #[test]
    fn bit_has_k1_witness() {
        let t = settable_bit();
        let w = find_witness(&t).unwrap().expect("bit is non-trivial");
        assert_eq!(w.k(), 1);
        assert_eq!(w.total_len(), 3);
        assert!(w.verify(&t));
        assert_eq!(t.invocation_name(w.writer_inv), "set");
        assert_eq!(t.invocation_name(w.reader_seq[0]), "read");
    }

    #[test]
    fn two_probe_type_has_k2_witness() {
        let t = two_probe_type();
        let w = find_witness(&t).unwrap().expect("non-trivial");
        assert_eq!(w.k(), 2, "detection requires two probes");
        assert!(w.verify(&t));
        // Lemma 2: H1 is all on the reader port.
        let h1 = w.history_unwritten(&t);
        assert!(h1.events().iter().all(|e| e.port == w.reader_port));
        // Lemma 4: H2 is one writer invocation then the reader sequence.
        let h2 = w.history_written(&t);
        assert_eq!(h2.len(), w.k() + 1);
        assert_eq!(h2.events()[0].port, w.writer_port);
        assert!(h2.events()[1..].iter().all(|e| e.port == w.reader_port));
    }

    #[test]
    fn witness_agrees_with_triviality_decider() {
        // Machine-check of Lemmas 2–4 on concrete types: normal-form search
        // finds a witness iff the closure-based decider says non-trivial.
        for t in [settable_bit(), two_probe_type()] {
            assert_eq!(
                find_witness(&t).unwrap().is_some(),
                !is_trivial(&t).unwrap(),
                "deciders disagree on {}",
                t.name()
            );
        }
    }

    #[test]
    fn trivial_type_has_no_witness() {
        let mut b = TypeBuilder::new("mute", 2);
        let q = b.state("q");
        let i = b.invocation("poke");
        let ok = b.response("ok");
        b.oblivious_transition(q, i, q, ok);
        let t = b.build().unwrap();
        assert!(find_witness(&t).unwrap().is_none());
        assert!(is_trivial(&t).unwrap());
    }

    #[test]
    fn single_port_type_is_rejected() {
        let mut b = TypeBuilder::new("solo", 1);
        let q = b.state("q");
        let i = b.invocation("poke");
        let ok = b.response("ok");
        b.oblivious_transition(q, i, q, ok);
        let t = b.build().unwrap();
        assert!(matches!(
            find_witness(&t),
            Err(AnalysisError::NeedsTwoPorts { .. })
        ));
    }

    #[test]
    fn cancelled_token_aborts_the_search() {
        use std::sync::atomic::AtomicBool;
        static FLAG: AtomicBool = AtomicBool::new(true);
        let t = settable_bit();
        assert!(matches!(
            find_witness_with(&t, CancelToken::new(&FLAG), &Budget::default()),
            Err(AnalysisError::Cancelled { .. })
        ));
        // An armed-but-unset token changes nothing.
        static CLEAR: AtomicBool = AtomicBool::new(false);
        assert_eq!(
            find_witness_with(&t, CancelToken::new(&CLEAR), &Budget::default()).unwrap(),
            find_witness(&t).unwrap()
        );
    }

    #[test]
    fn verify_rejects_tampered_witness() {
        let t = settable_bit();
        let mut w = find_witness(&t).unwrap().unwrap();
        assert!(w.verify(&t));
        w.writer_inv = w.reader_seq[0]; // `read` does not change state
        assert!(!w.verify(&t));
    }
}
