//! A triple buffer: wait-free single-writer snapshot publication.
//!
//! Three buffers, two owners, one atomic word. At every instant the
//! writer exclusively owns one buffer (its *back* buffer, where the
//! next snapshot is composed), the reader exclusively owns one (its
//! *front* buffer, the snapshot it is looking at), and the third sits
//! in the shared `state` word as the *middle* — the most recently
//! published snapshot, in transit between the two. `state` packs the
//! middle buffer's index (2 bits) with a FRESH flag that says the
//! middle has not been read yet.
//!
//! Publishing is `write back buffer; state.swap(back | FRESH)` — the
//! swap simultaneously publishes the new snapshot and hands the old
//! middle back to the writer as its next back buffer. Reading is
//! symmetric: if FRESH is set, `state.swap(front)` trades the reader's
//! stale front for the fresh middle. Both sides complete in a bounded
//! number of steps regardless of what the other is doing — `swap`
//! cannot fail or retry, which is why [`RawAtomicUsize::swap_acq_rel`]
//! exists (a CAS loop in its place would be merely lock-free).
//!
//! **Safety invariant (the permutation argument):** `{front, middle,
//! back}` is a permutation of `{0, 1, 2}` at all times — each swap
//! exchanges a privately-owned index with the middle, which cannot
//! duplicate an index. The writer therefore never writes the buffer
//! the reader is reading, so reads need no validation loop and can
//! never tear. Release/acquire on the swaps carries the buffer
//! contents: the writer's data write is sequenced before its release
//! swap, which the reader's acquire swap observes before it reads.
//!
//! The price of wait-freedom is *lossiness*: if the writer publishes
//! twice between reads, the older snapshot is overwritten. Callers
//! that need every record (not just the latest state) must publish
//! cumulatively — see `wfc_obs::span` for the pattern.

use std::sync::Arc;

use wfc_registers::{CellProvider, RawAtomicUsize, RawData as _};

/// Index mask: which of the three buffers is the middle.
const IDX: usize = 0b011;
/// Set while the middle buffer holds an unread snapshot.
const FRESH: usize = 0b100;

struct TripleShared<T: Copy + Send + 'static, P: CellProvider> {
    bufs: [P::Data<T>; 3],
    state: P::AtomicUsize,
}

/// The writing half; owning it is the single-writer permit.
pub struct TriplePublisher<T: Copy + Send + 'static, P: CellProvider> {
    shared: Arc<TripleShared<T, P>>,
    back: usize,
}

/// The reading half; owning it is the single-reader permit.
pub struct TripleSubscriber<T: Copy + Send + 'static, P: CellProvider> {
    shared: Arc<TripleShared<T, P>>,
    front: usize,
}

/// Builds a triple buffer with all three buffers holding `init` and
/// splits it into its publisher and subscriber handles.
pub fn triple_buffer<T: Copy + Send + 'static, P: CellProvider>(
    init: T,
) -> (TriplePublisher<T, P>, TripleSubscriber<T, P>) {
    triple_buffer_each([init, init, init])
}

/// [`triple_buffer`], but each buffer gets its own initial value —
/// needed when the values must be *distinct*, as with the boxed
/// pointer wrappers in [`crate::boxed`]. Buffer 0 starts as the
/// reader's front, buffer 1 as the middle, buffer 2 as the writer's
/// back.
pub fn triple_buffer_each<T: Copy + Send + 'static, P: CellProvider>(
    init: [T; 3],
) -> (TriplePublisher<T, P>, TripleSubscriber<T, P>) {
    let [front, middle, back] = init;
    let shared = Arc::new(TripleShared {
        bufs: [
            P::Data::new(front),
            P::Data::new(middle),
            P::Data::new(back),
        ],
        state: P::AtomicUsize::new(1), // middle = buffer 1, not fresh
    });
    (
        TriplePublisher {
            shared: Arc::clone(&shared),
            back: 2,
        },
        TripleSubscriber { shared, front: 0 },
    )
}

impl<T: Copy + Send + 'static, P: CellProvider> TriplePublisher<T, P> {
    /// The value currently in the write buffer (the last thing this
    /// publisher wrote there — or an initial value). The write buffer
    /// is exclusively owned, so this is an ordinary read.
    pub fn back(&self) -> T {
        // Safety: only this publisher ever writes `bufs[self.back]`,
        // and `&self` excludes a concurrent `publish`; the permutation
        // invariant keeps the reader away from the back buffer, so no
        // write can overlap this read.
        unsafe { self.shared.bufs[self.back].read_maybe_torn().assume_init() }
    }

    /// Publishes `value` as the new snapshot, replacing any unread
    /// predecessor. Wait-free: one data write and one atomic swap.
    pub fn publish(&mut self, value: T) {
        self.shared.bufs[self.back].write(value);
        let old = self.shared.state.swap_acq_rel(self.back | FRESH);
        self.back = old & IDX;
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> TripleSubscriber<T, P> {
    /// Takes the latest snapshot into the front buffer if one was
    /// published since the last refresh. Returns whether it advanced.
    /// Wait-free: at most one load and one swap.
    pub fn refresh(&mut self) -> bool {
        if self.shared.state.load_acquire() & FRESH == 0 {
            return false;
        }
        // Only this subscriber clears FRESH, so the flag observed above
        // still holds at the swap — whatever middle we receive (the
        // writer may have republished in between) is a fresh snapshot.
        let old = self.shared.state.swap_acq_rel(self.front);
        self.front = old & IDX;
        true
    }

    /// The snapshot in the front buffer. Stable between refreshes: the
    /// writer can never touch the front buffer (permutation
    /// invariant), so two reads without a [`refresh`](Self::refresh)
    /// in between return the same value.
    pub fn read(&self) -> T {
        // Safety: the permutation invariant keeps the writer's back
        // buffer distinct from `self.front` at all times, so no write
        // overlaps this read; the acquire swap in `refresh` ordered
        // the writer's data write before it.
        unsafe { self.shared.bufs[self.front].read_maybe_torn().assume_init() }
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for TriplePublisher<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriplePublisher")
            .field("back", &self.back)
            .finish_non_exhaustive()
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for TripleSubscriber<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TripleSubscriber")
            .field("front", &self.front)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use wfc_registers::RealProvider;

    use super::*;

    #[test]
    fn latest_snapshot_wins() {
        let (mut w, mut r) = triple_buffer::<u64, RealProvider>(0);
        assert!(!r.refresh(), "nothing published yet");
        assert_eq!(r.read(), 0);
        w.publish(1);
        w.publish(2);
        assert!(r.refresh());
        assert_eq!(r.read(), 2, "lossy: the older snapshot is gone");
        assert!(!r.refresh(), "refresh consumed the freshness");
        assert_eq!(r.read(), 2, "front is stable without a refresh");
    }

    #[test]
    fn alternating_publish_read_sees_everything() {
        let (mut w, mut r) = triple_buffer::<u64, RealProvider>(0);
        for v in 1..=100 {
            w.publish(v);
            assert!(r.refresh());
            assert_eq!(r.read(), v);
        }
    }

    /// The satellite-3 hammer: the writer publishes self-identifying
    /// pairs as fast as it can; the reader asserts every snapshot is
    /// internally consistent (untorn), monotone, and stable across
    /// double-reads — the full atomic-snapshot spec.
    #[test]
    fn hammer_snapshots_are_untorn_monotone_and_stable() {
        const N: u64 = 200_000;
        let pair = |i: u64| (i, i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (mut w, mut r) = triple_buffer::<(u64, u64), RealProvider>(pair(0));
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = crate::tests::SplitMix64::new(42);
                for i in 1..=N {
                    w.publish(pair(i));
                    if rng.next() % 128 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(move || {
                let mut last = 0;
                while last < N {
                    if !r.refresh() {
                        std::thread::yield_now();
                    }
                    let (a, b) = r.read();
                    let again = r.read();
                    assert_eq!((a, b), again, "snapshot changed without a refresh");
                    assert_eq!((a, b), pair(a), "torn snapshot at seq {a}");
                    assert!(a >= last, "snapshot went backwards: {a} after {last}");
                    last = last.max(a);
                }
            });
        });
    }
}
