//! A write-once result cell: one `set`, at-most-one successful `take`.
//!
//! The cell is a tiny state machine driven by a single atomic word:
//!
//! ```text
//! EMPTY --set--> WRITING --(payload write)--> FULL --take--> TAKEN
//! ```
//!
//! `set` claims the cell with one unconditional `swap(WRITING)` — a
//! second setter is a caller bug and panics, it is never silently
//! raced — writes the payload, and release-stores `FULL`. `take`
//! acquire-loads the state; on `FULL` it swaps in `TAKEN` and reads
//! the payload only if *its* swap was the one that observed `FULL`, so
//! even racing takers extract the value exactly once. Both operations
//! are a constant number of atomic steps with no retry loop at all:
//! wait-freedom here is trivial, which is the point — a result slot
//! needs no mutex, because "written exactly once, consumed exactly
//! once" is already a single-writer protocol.
//!
//! The intermediate `WRITING` state is what makes the premature-
//! publication bug expressible (and catchable by the `wfc-sched`
//! fixture twin): publish the state word before the payload and a
//! concurrent `take` hands back the placeholder.

use wfc_registers::{CellProvider, RawAtomicUsize, RawData as _};

const EMPTY: usize = 0;
const WRITING: usize = 1;
const FULL: usize = 2;
const TAKEN: usize = 3;

/// A cell that is written at most once and consumed at most once, with
/// any number of threads polling [`take`](WriteOnce::take).
pub struct WriteOnce<T: Copy + Send + 'static, P: CellProvider> {
    state: P::AtomicUsize,
    slot: P::Data<T>,
}

impl<T: Copy + Send + 'static, P: CellProvider> WriteOnce<T, P> {
    /// Creates an empty cell. `placeholder` fills the slot until `set`
    /// (provider data cells are never uninitialised); it is never
    /// returned by a correct execution.
    pub fn new(placeholder: T) -> WriteOnce<T, P> {
        WriteOnce {
            state: P::AtomicUsize::new(EMPTY),
            slot: P::Data::new(placeholder),
        }
    }

    /// Stores the cell's value. Wait-free: one swap, one data write,
    /// one store.
    ///
    /// # Panics
    ///
    /// If the cell was already set — a write-once cell's writer is
    /// unique by contract, so a second `set` is a logic error upstream,
    /// not a race to arbitrate.
    pub fn set(&self, value: T) {
        let prev = self.state.swap_acq_rel(WRITING);
        assert_eq!(prev, EMPTY, "WriteOnce::set on a non-empty cell");
        self.slot.write(value);
        self.state.store_release(FULL);
    }

    /// Takes the value if it has been set and not yet taken. Racing
    /// takers are safe: exactly one receives `Some`.
    pub fn take(&self) -> Option<T> {
        if self.state.load_acquire() != FULL {
            return None;
        }
        if self.state.swap_acq_rel(TAKEN) != FULL {
            // Another taker's swap got there first; it owns the value.
            return None;
        }
        // Safety: the setter wrote the slot before release-storing
        // FULL, which our acquire swap observed; nothing writes the
        // slot after FULL, so the read is untorn and initialised.
        Some(unsafe { self.slot.read_maybe_torn().assume_init() })
    }

    /// Whether a value is currently available to take.
    pub fn is_full(&self) -> bool {
        self.state.load_acquire() == FULL
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for WriteOnce<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteOnce").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use wfc_registers::RealProvider;

    use super::*;

    #[test]
    fn set_then_take_exactly_once() {
        let cell = WriteOnce::<u64, RealProvider>::new(0);
        assert!(!cell.is_full());
        assert_eq!(cell.take(), None);
        cell.set(7);
        assert!(cell.is_full());
        assert_eq!(cell.take(), Some(7));
        assert_eq!(cell.take(), None, "a value is taken at most once");
        assert!(!cell.is_full());
    }

    #[test]
    #[should_panic(expected = "non-empty cell")]
    fn double_set_is_a_caller_bug() {
        let cell = WriteOnce::<u64, RealProvider>::new(0);
        cell.set(1);
        cell.set(2);
    }

    /// The satellite-3 hammer: one setter thread against several
    /// polling takers, repeated over many fresh cells. Exactly one
    /// taker must win each round, and it must see the set value — never
    /// the placeholder.
    #[test]
    fn hammer_exactly_one_taker_wins() {
        const ROUNDS: u64 = 2_000;
        const TAKERS: usize = 3;
        for round in 0..ROUNDS {
            let cell = WriteOnce::<(u64, u64), RealProvider>::new((u64::MAX, u64::MAX));
            let wins = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut rng = crate::tests::SplitMix64::new(round);
                    if rng.next() % 4 == 0 {
                        std::thread::yield_now();
                    }
                    cell.set((round, round.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                });
                for _ in 0..TAKERS {
                    s.spawn(|| loop {
                        if let Some((a, b)) = cell.take() {
                            assert_eq!(a, round, "taker got the wrong round's value");
                            assert_eq!(b, round.wrapping_mul(0x9e37_79b9_7f4a_7c15), "torn take");
                            wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            break;
                        }
                        if cell.is_full() {
                            continue;
                        }
                        // Either not yet set, or someone else took it.
                        if wins.load(std::sync::atomic::Ordering::Relaxed) > 0 {
                            break;
                        }
                        std::thread::yield_now();
                    });
                }
            });
            assert_eq!(
                wins.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "exactly one taker per round"
            );
        }
    }
}
