//! # `wfc-waitfree` — wait-free primitives for the engine's hot paths
//!
//! The paper this workspace reproduces is about achieving wait-free
//! coordination with registers, yet for nine PRs the engine's own
//! hottest shared structures were lock-based: the span collector was a
//! global `Mutex<Vec<_>>`, the explorer pool parked results behind
//! `Mutex<Option<R>>` slots, and service workers handed response bytes
//! to the IO thread under a per-connection mutex. This crate eats the
//! dogfood: three register-style wait-free primitives, in the spirit of
//! the SRSW→MRSW construction ladder the `wfc-registers` crate builds
//! for the paper itself.
//!
//! * [`spsc`] — a bounded single-producer/single-consumer ring. The
//!   fast path is one acquire load and one release store per operation,
//!   no CAS: with exactly one writer per index cell, plain
//!   publish-by-store suffices (the same single-writer discipline that
//!   lets the paper's constructions avoid stronger objects).
//! * [`triple`] — a triple buffer: wait-free single-writer snapshot
//!   publication through a 2-bit swap word. Writer and reader each own
//!   one of three buffers at all times and trade the third through one
//!   atomic `swap` — never blocking, never tearing, at the cost of
//!   lossiness (a reader sees the *latest* snapshot, not every one).
//! * [`cell`] — a write-once result cell: `set`/`take` through a small
//!   state word, replacing mutexed `Option` slots.
//!
//! ## Written twice: the fixture-before-hot-path rule
//!
//! Every primitive is generic over
//! [`CellProvider`](wfc_registers::CellProvider), so the same
//! unmodified algorithm runs twice: over `RealProvider` (plain
//! hardware atomics — the abstraction compiles away) in production,
//! and over the `wfc-sched` shim provider as a model-checking fixture,
//! where exhaustive DFS enumerates every interleaving *before* the
//! primitive is allowed anywhere near a hot path. Each fixture has a
//! planted-bug negative twin (premature tail publication, a torn
//! triple-buffer swap, state-before-payload publication) that the
//! checker must catch with a replayable counterexample — see
//! `wfc-sched`'s fixture library and DESIGN §2.15.
//!
//! ## Non-`Copy` payloads
//!
//! The raw primitives move `Copy` values through
//! [`RawData`](wfc_registers::RawData) slots. Production callers that
//! need owned payloads (response frames, span batches, arbitrary pool
//! results) use the [`boxed`] wrappers, which move `Box`es through a
//! `usize`-typed primitive and confine the pointer `unsafe` to one
//! audited module.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boxed;
pub mod cell;
pub mod spsc;
pub mod triple;

pub use boxed::{snapshot, BoxRing, ResultCell, SnapshotPublisher, SnapshotSubscriber};
pub use cell::WriteOnce;
pub use spsc::{ring, SpscConsumer, SpscProducer, SpscRing};
pub use triple::{triple_buffer, triple_buffer_each, TriplePublisher, TripleSubscriber};

#[cfg(test)]
pub(crate) mod tests {
    /// The workspace's stock seeded generator, for deterministic pacing
    /// jitter in the hammer tests (mirrors the flight-recorder hammers).
    pub(crate) struct SplitMix64(u64);

    impl SplitMix64 {
        pub(crate) fn new(seed: u64) -> SplitMix64 {
            SplitMix64(seed)
        }

        pub(crate) fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
