//! Owned-payload wrappers over the `Copy`-only raw primitives.
//!
//! The raw ring, triple buffer, and write-once cell move `Copy` values
//! through [`RawData`](wfc_registers::RawData) slots. Hot-path callers
//! need owned payloads — response frames, span batches, arbitrary pool
//! results — so this module moves `Box`es through `usize`-typed
//! primitives instead: a pointer is `Copy`, and ownership transfers
//! with the value. All pointer `unsafe` in the crate outside the
//! primitives themselves is confined here, with one invariant per type:
//!
//! * [`ResultCell`]: a pointer enters at `set` (`Box::into_raw`) and
//!   leaves at exactly one `take` (`Box::from_raw`) — the write-once
//!   cell's exactly-once `take` *is* the no-double-free argument.
//! * [`BoxRing`]: every pushed pointer is popped at most once (SPSC
//!   FIFO delivers each slot value exactly once per lap); `Drop` drains
//!   the stragglers under `&mut` exclusivity.
//! * [`snapshot`]: the same three allocations live in the triple
//!   buffer for its whole life — only their *roles* (front / middle /
//!   back) rotate. The publisher mutates its exclusively-owned back
//!   pointee in place; the shared [`SnapDrop`] frees all three
//!   allocations when the last handle goes away.
//!
//! Everything here runs over [`RealProvider`] only: the model-checked
//! twins in `wfc-sched` exercise the underlying index/state protocols,
//! which is where the concurrency is — the boxing layer adds ownership
//! bookkeeping, not new interleavings.

use std::marker::PhantomData;
use std::sync::Arc;

use wfc_registers::RealProvider;

use crate::cell::WriteOnce;
use crate::spsc::SpscRing;
use crate::triple::{triple_buffer_each, TriplePublisher, TripleSubscriber};

/// A write-once slot for an arbitrary `Send` payload: the boxed
/// counterpart of [`WriteOnce`], used for pool result slots.
pub struct ResultCell<T: Send> {
    cell: WriteOnce<usize, RealProvider>,
    _owns: PhantomData<T>,
}

// Safety: the cell transfers ownership of a `Box<T>` between threads;
// that is exactly `T: Send`. No `&T` is ever shared, so no `Sync` bound
// on `T` is needed.
unsafe impl<T: Send> Send for ResultCell<T> {}
unsafe impl<T: Send> Sync for ResultCell<T> {}

impl<T: Send> ResultCell<T> {
    /// Creates an empty cell.
    pub fn new() -> ResultCell<T> {
        ResultCell {
            // 0 is never a `Box` address, so the placeholder is inert.
            cell: WriteOnce::new(0),
            _owns: PhantomData,
        }
    }

    /// Stores the cell's value, boxing it. Panics if already set, like
    /// [`WriteOnce::set`].
    pub fn set(&self, value: T) {
        self.cell.set(Box::into_raw(Box::new(value)) as usize);
    }

    /// Takes the value if set and not yet taken; exactly one racing
    /// taker receives it.
    pub fn take(&self) -> Option<T> {
        // Safety: this pointer came from `Box::into_raw` in `set`, and
        // the write-once cell yields it to exactly one taker.
        self.cell
            .take()
            .map(|p| *unsafe { Box::from_raw(p as *mut T) })
    }

    /// Whether a value is currently available to take.
    pub fn is_full(&self) -> bool {
        self.cell.is_full()
    }
}

impl<T: Send> Default for ResultCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Drop for ResultCell<T> {
    fn drop(&mut self) {
        // Reclaim an un-taken value; `&mut self` excludes racing takers.
        drop(self.take());
    }
}

impl<T: Send> std::fmt::Debug for ResultCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCell")
            .field("full", &self.is_full())
            .finish()
    }
}

/// A bounded SPSC ring of boxed payloads: the owned counterpart of
/// [`SpscRing`], used for the service's worker→IO response frames.
///
/// Like the raw ring, `push` and `pop` take `&self` and are `unsafe`:
/// the caller designates the single producer and the single consumer.
/// (The service pins `pop` to the IO thread and gives each worker its
/// own ring, so the contract is structural there.)
pub struct BoxRing<T: Send> {
    ring: SpscRing<usize, RealProvider>,
    _owns: PhantomData<T>,
}

// Safety: the ring transfers `Box<T>` ownership between the producer
// and consumer threads (`T: Send`); the index protocol itself is Sync.
unsafe impl<T: Send> Send for BoxRing<T> {}
unsafe impl<T: Send> Sync for BoxRing<T> {}

impl<T: Send> BoxRing<T> {
    /// Creates a ring holding up to `capacity` boxed values.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> BoxRing<T> {
        BoxRing {
            ring: SpscRing::new(capacity, 0),
            _owns: PhantomData,
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Appends `value`, or hands it back if the ring is full.
    ///
    /// # Safety
    ///
    /// At most one thread may call `push` at a time (the single
    /// producer), as for [`SpscRing::push`].
    pub unsafe fn push(&self, value: Box<T>) -> Result<(), Box<T>> {
        let ptr = Box::into_raw(value);
        match self.ring.push(ptr as usize) {
            Ok(()) => Ok(()),
            // Safety: a refused pointer was never shared; reconstitute it.
            Err(p) => Err(Box::from_raw(p as *mut T)),
        }
    }

    /// Removes the oldest value, or `None` if the ring is empty.
    ///
    /// # Safety
    ///
    /// At most one thread may call `pop` at a time (the single
    /// consumer), as for [`SpscRing::pop`].
    pub unsafe fn pop(&self) -> Option<Box<T>> {
        // Safety: each slot value is produced by exactly one
        // `Box::into_raw` in `push` and delivered exactly once by the
        // ring's FIFO protocol.
        self.ring.pop().map(|p| Box::from_raw(p as *mut T))
    }
}

impl<T: Send> Drop for BoxRing<T> {
    fn drop(&mut self) {
        // Safety: `&mut self` makes this thread the sole consumer (and
        // producer) for the duration of the drain.
        while let Some(value) = unsafe { self.pop() } {
            drop(value);
        }
    }
}

impl<T: Send> std::fmt::Debug for BoxRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxRing")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

/// Frees the triple buffer's three permanent allocations when the last
/// snapshot handle drops.
struct SnapDrop<T: Send> {
    ptrs: [usize; 3],
    _owns: PhantomData<T>,
}

// Safety: `SnapDrop` only carries ownership of three `T`s to whichever
// thread drops the last handle.
unsafe impl<T: Send> Send for SnapDrop<T> {}
unsafe impl<T: Send> Sync for SnapDrop<T> {}

impl<T: Send> Drop for SnapDrop<T> {
    fn drop(&mut self) {
        for &p in &self.ptrs {
            // Safety: the three pointers were created by `Box::into_raw`
            // in `snapshot` and never freed elsewhere; both handles are
            // gone (this is the last `Arc` drop), so nothing aliases.
            drop(unsafe { Box::from_raw(p as *mut T) });
        }
    }
}

/// The writing half of a boxed snapshot pair; see [`snapshot`].
pub struct SnapshotPublisher<T: Send> {
    inner: TriplePublisher<usize, RealProvider>,
    _drop: Arc<SnapDrop<T>>,
}

/// The reading half of a boxed snapshot pair; see [`snapshot`].
pub struct SnapshotSubscriber<T: Send> {
    inner: TripleSubscriber<usize, RealProvider>,
    _drop: Arc<SnapDrop<T>>,
}

/// Builds a wait-free snapshot channel for a non-`Copy` state `T`: the
/// boxed counterpart of [`crate::triple_buffer`], used for span-batch
/// publication. `make` is called three times to seed the three buffers
/// (they must be distinct allocations, hence a factory rather than a
/// `Clone` value).
pub fn snapshot<T: Send>(
    mut make: impl FnMut() -> T,
) -> (SnapshotPublisher<T>, SnapshotSubscriber<T>) {
    let ptrs = [
        Box::into_raw(Box::new(make())) as usize,
        Box::into_raw(Box::new(make())) as usize,
        Box::into_raw(Box::new(make())) as usize,
    ];
    let (publisher, subscriber) = triple_buffer_each(ptrs);
    let shared = Arc::new(SnapDrop {
        ptrs,
        _owns: PhantomData,
    });
    (
        SnapshotPublisher {
            inner: publisher,
            _drop: Arc::clone(&shared),
        },
        SnapshotSubscriber {
            inner: subscriber,
            _drop: shared,
        },
    )
}

impl<T: Send> SnapshotPublisher<T> {
    /// Mutates the exclusively-owned back buffer in place, then
    /// publishes it as the new snapshot. Wait-free (one data write and
    /// one swap beyond the caller's own mutation).
    ///
    /// The triple buffer is lossy, so `update` receives whichever of
    /// the three buffers rotated back — **not** necessarily the state
    /// it last published. Callers must rebuild the full state (or keep
    /// it cumulative), not apply a delta.
    pub fn publish_with(&mut self, update: impl FnOnce(&mut T)) {
        let ptr = self.inner.back() as *mut T;
        // Safety: the back pointee is exclusively the publisher's until
        // the `publish` below (triple-buffer permutation invariant).
        update(unsafe { &mut *ptr });
        self.inner.publish(ptr as usize);
    }
}

impl<T: Send> SnapshotSubscriber<T> {
    /// Takes the latest snapshot if one was published since the last
    /// refresh; returns whether it advanced. Wait-free.
    pub fn refresh(&mut self) -> bool {
        self.inner.refresh()
    }

    /// Borrows the current front snapshot. Stable until the next
    /// [`refresh`](Self::refresh).
    pub fn with<R>(&self, read: impl FnOnce(&T) -> R) -> R {
        // Safety: the front pointee is exclusively the subscriber's
        // between refreshes (permutation invariant), so the shared
        // borrow cannot alias a publisher write.
        read(unsafe { &*(self.inner.read() as *const T) })
    }
}

impl<T: Send> std::fmt::Debug for SnapshotPublisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPublisher").finish_non_exhaustive()
    }
}

impl<T: Send> std::fmt::Debug for SnapshotSubscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSubscriber").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use super::*;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn result_cell_round_trips_owned_values() {
        let cell = ResultCell::<String>::new();
        assert_eq!(cell.take(), None);
        cell.set("hello".to_string());
        assert!(cell.is_full());
        assert_eq!(cell.take().as_deref(), Some("hello"));
        assert_eq!(cell.take(), None);
    }

    #[test]
    fn result_cell_drop_frees_untaken_values() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ResultCell::new();
        cell.set(DropCounter(Arc::clone(&drops)));
        drop(cell);
        assert_eq!(drops.load(Ordering::Relaxed), 1, "untaken value reclaimed");
    }

    #[test]
    fn box_ring_is_fifo_and_drop_drains() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ring = BoxRing::new(4);
        // Safety (throughout): this thread is both the producer and the
        // consumer — trivially single on each side.
        unsafe {
            for i in 0..3 {
                ring.push(Box::new((i, DropCounter(Arc::clone(&drops)))))
                    .map_err(|_| "full")
                    .unwrap();
            }
            assert_eq!(ring.pop().map(|b| b.0), Some(0));
        }
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(ring);
        assert_eq!(drops.load(Ordering::Relaxed), 3, "drop drained the rest");
    }

    /// Satellite-3 hammer: worker thread streams 50k boxed frames
    /// through a small ring to a consumer thread; every frame arrives
    /// intact, in order, and is freed exactly once (no leak = the drop
    /// count matches).
    #[test]
    fn hammer_box_ring_delivers_every_frame_once() {
        const N: usize = 50_000;
        let drops = Arc::new(AtomicUsize::new(0));
        let ring = BoxRing::new(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut rng = crate::tests::SplitMix64::new(11);
                for i in 0..N {
                    let mut frame =
                        Box::new((i, format!("frame-{i}"), DropCounter(Arc::clone(&drops))));
                    // Safety: this thread is the sole producer.
                    while let Err(back) = unsafe { ring.push(frame) } {
                        frame = back;
                        std::thread::yield_now();
                    }
                    if rng.next() % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                for i in 0..N {
                    // Safety: this thread is the sole consumer.
                    let frame = loop {
                        match unsafe { ring.pop() } {
                            Some(f) => break f,
                            None => std::thread::yield_now(),
                        }
                    };
                    assert_eq!(frame.0, i);
                    assert_eq!(frame.1, format!("frame-{i}"));
                }
            });
        });
        assert_eq!(drops.load(Ordering::Relaxed), N, "every frame freed once");
    }

    #[test]
    fn snapshot_publishes_latest_state() {
        let (mut w, mut r) = snapshot(Vec::<u64>::new);
        assert!(!r.refresh());
        r.with(|v| assert!(v.is_empty()));
        w.publish_with(|v| {
            v.clear();
            v.extend([1, 2, 3]);
        });
        assert!(r.refresh());
        r.with(|v| assert_eq!(v, &[1, 2, 3]));
        assert!(!r.refresh(), "freshness consumed");
        r.with(|v| assert_eq!(v, &[1, 2, 3], "front stable without refresh"));
    }

    /// Satellite-3 hammer: cumulative publication (the span-flush
    /// pattern) under a racing reader. Each snapshot the reader sees
    /// must be a consistent prefix `0..len` and lengths must be
    /// monotone; when the writer finishes, the final refresh shows the
    /// complete sequence. No leaks: the three buffers are freed with
    /// the handles.
    #[test]
    fn hammer_snapshot_cumulative_prefixes_are_consistent() {
        const N: u64 = 20_000;
        let (mut w, mut r) = snapshot(Vec::<u64>::new);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = crate::tests::SplitMix64::new(7);
                let mut all: Vec<u64> = Vec::new();
                for i in 0..N {
                    all.push(i);
                    // Cumulative: rebuild the full state every publish,
                    // because the back buffer is not the last published.
                    w.publish_with(|v| {
                        v.clear();
                        v.extend_from_slice(&all);
                    });
                    if rng.next() % 256 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(move || {
                let mut last_len = 0;
                while last_len < N as usize {
                    if !r.refresh() {
                        std::thread::yield_now();
                    }
                    let len = r.with(|v| {
                        for (i, &x) in v.iter().enumerate() {
                            assert_eq!(x, i as u64, "snapshot is not a prefix");
                        }
                        v.len()
                    });
                    assert!(len >= last_len, "snapshot length went backwards");
                    last_len = len;
                }
            });
        });
    }
}
