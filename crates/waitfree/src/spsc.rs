//! A bounded single-producer/single-consumer ring with no CAS on any
//! path.
//!
//! ## Why SPSC needs no CAS
//!
//! Each shared index has exactly one writer: the producer alone
//! advances `tail`, the consumer alone advances `head`. A
//! compare-and-swap exists to arbitrate *competing* writers; with the
//! single-writer discipline there is nothing to arbitrate, so each
//! operation is one acquire load plus one release store — wait-free
//! with a constant bound of two shared accesses (the same observation
//! that lets the paper's register ladders build atomicity from
//! single-writer cells without consensus-strength objects).
//!
//! ## Memory ordering
//!
//! The producer writes the slot *then* release-stores the new `tail`;
//! the consumer's acquire load of `tail` therefore makes the slot
//! contents visible before it reads them. Symmetrically, the consumer
//! release-stores `head` only after it has copied the slot out, so the
//! producer's acquire load of `head` proves the slot is free before it
//! overwrites it. Indices free-run (wrapping `usize` arithmetic); the
//! ring is full when `tail - head == capacity`.
//!
//! Each side also keeps a *private* mirror of its own index and a
//! cached copy of the other side's, so the fast path touches shared
//! memory only to publish — an empty-`pop` poll re-reads just `tail`,
//! and a full-`push` poll re-reads just `head`. Besides saving atomic
//! traffic, this keeps every retry loop spinning on a *single* cell,
//! which is exactly the shape the `wfc-sched` spin detector can prove
//! blocked.

use std::cell::UnsafeCell;
use std::sync::Arc;

use wfc_registers::{CellProvider, RawAtomicUsize as _, RawData as _};

#[derive(Clone, Copy, Default)]
struct Mirror {
    /// This side's own index (authoritative; the shared atomic trails).
    own: usize,
    /// Last observed value of the other side's index (a lower bound).
    seen: usize,
}

/// The shared core of the ring. Use [`ring`] for the safe handle pair;
/// the raw `&self` operations are `unsafe` because nothing but the
/// caller enforces the single-producer/single-consumer contract.
pub struct SpscRing<T: Copy + Send + 'static, P: CellProvider> {
    slots: Box<[P::Data<T>]>,
    capacity: usize,
    /// Next slot to pop; written only by the consumer.
    head: P::AtomicUsize,
    /// Next slot to push; written only by the producer.
    tail: P::AtomicUsize,
    /// Producer-private state (see the `push` safety contract).
    prod: UnsafeCell<Mirror>,
    /// Consumer-private state (see the `pop` safety contract).
    cons: UnsafeCell<Mirror>,
}

// Safety: the slots and index cells are `Send + Sync` by their trait
// bounds; the two `UnsafeCell` mirrors are each touched by exactly one
// thread under the documented push/pop contracts.
unsafe impl<T: Copy + Send + 'static, P: CellProvider> Send for SpscRing<T, P> {}
unsafe impl<T: Copy + Send + 'static, P: CellProvider> Sync for SpscRing<T, P> {}

impl<T: Copy + Send + 'static, P: CellProvider> SpscRing<T, P> {
    /// Creates a ring holding up to `capacity` values. Every slot is
    /// initialised to `init` (the provider's data cells are never
    /// uninitialised); `init` is otherwise never observed.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize, init: T) -> SpscRing<T, P> {
        assert!(capacity > 0, "an SPSC ring needs at least one slot");
        SpscRing {
            slots: (0..capacity).map(|_| P::Data::new(init)).collect(),
            capacity,
            head: P::AtomicUsize::new(0),
            tail: P::AtomicUsize::new(0),
            prod: UnsafeCell::new(Mirror::default()),
            cons: UnsafeCell::new(Mirror::default()),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `value`, or hands it back if the ring is full.
    ///
    /// # Safety
    ///
    /// At most one thread may call `push` at a time (the single
    /// *producer*); concurrent `pop` calls by the single consumer are
    /// what the ring synchronises.
    pub unsafe fn push(&self, value: T) -> Result<(), T> {
        let p = &mut *self.prod.get();
        if p.own.wrapping_sub(p.seen) == self.capacity {
            p.seen = self.head.load_acquire();
            if p.own.wrapping_sub(p.seen) == self.capacity {
                return Err(value);
            }
        }
        // The consumer freed this slot before it release-stored the
        // `head` we acquire-loaded into `seen`, so the write cannot
        // race a read of live data.
        self.slots[p.own % self.capacity].write(value);
        p.own = p.own.wrapping_add(1);
        self.tail.store_release(p.own);
        Ok(())
    }

    /// Removes the oldest value, or `None` if the ring is empty.
    ///
    /// # Safety
    ///
    /// At most one thread may call `pop` at a time (the single
    /// *consumer*).
    pub unsafe fn pop(&self) -> Option<T> {
        let c = &mut *self.cons.get();
        if c.own == c.seen {
            c.seen = self.tail.load_acquire();
            if c.own == c.seen {
                return None;
            }
        }
        // Safety of `assume_init`: the producer fully wrote this slot
        // before release-storing the `tail` we acquire-loaded, and it
        // will not write it again until `head` passes it — which only
        // happens at the release store below. No write overlaps the
        // read.
        let value = self.slots[c.own % self.capacity]
            .read_maybe_torn()
            .assume_init();
        c.own = c.own.wrapping_add(1);
        self.head.store_release(c.own);
        Some(value)
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for SpscRing<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// The producing half of a ring; `Send`, not `Clone` — owning it *is*
/// the single-producer permit.
#[derive(Debug)]
pub struct SpscProducer<T: Copy + Send + 'static, P: CellProvider> {
    ring: Arc<SpscRing<T, P>>,
}

impl<T: Copy + Send + 'static, P: CellProvider> SpscProducer<T, P> {
    /// Appends `value`, or hands it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        // Safety: this handle is the unique producer (not `Clone`, and
        // `&mut self` excludes aliased calls).
        unsafe { self.ring.push(value) }
    }
}

/// The consuming half of a ring; `Send`, not `Clone`.
#[derive(Debug)]
pub struct SpscConsumer<T: Copy + Send + 'static, P: CellProvider> {
    ring: Arc<SpscRing<T, P>>,
}

impl<T: Copy + Send + 'static, P: CellProvider> SpscConsumer<T, P> {
    /// Removes the oldest value, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        // Safety: this handle is the unique consumer.
        unsafe { self.ring.pop() }
    }
}

/// Builds a ring and splits it into its producer and consumer handles.
pub fn ring<T: Copy + Send + 'static, P: CellProvider>(
    capacity: usize,
    init: T,
) -> (SpscProducer<T, P>, SpscConsumer<T, P>) {
    let ring = Arc::new(SpscRing::new(capacity, init));
    (
        SpscProducer {
            ring: Arc::clone(&ring),
        },
        SpscConsumer { ring },
    )
}

#[cfg(test)]
mod tests {
    use wfc_registers::RealProvider;

    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut p, mut c) = ring::<u64, RealProvider>(4, 0);
        assert_eq!(c.pop(), None);
        for v in 1..=4 {
            p.push(v).unwrap();
        }
        assert_eq!(p.push(5), Err(5), "full ring refuses");
        for v in 1..=4 {
            assert_eq!(c.pop(), Some(v));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut p, mut c) = ring::<usize, RealProvider>(3, 0);
        for round in 0..1000 {
            p.push(round).unwrap();
            assert_eq!(c.pop(), Some(round));
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_refused() {
        let _ = ring::<u8, RealProvider>(0, 0);
    }

    /// The satellite-3 hammer: a producer and a consumer thread push
    /// 100k self-identifying values through a small ring with seeded
    /// SplitMix64 pacing jitter; the consumer must observe exactly the
    /// pushed sequence — no loss, no duplication, no tearing.
    #[test]
    fn hammer_spsc_is_fifo_and_untorn() {
        const N: u64 = 100_000;
        // Self-identifying payload: both halves derive from `i`, so a
        // torn or stale slot read shows up as an inconsistent pair.
        let encode = |i: u64| (i, i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (mut p, mut c) = ring::<(u64, u64), RealProvider>(8, (0, 0));
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = crate::tests::SplitMix64::new(0xDEAD_BEEF);
                for i in 0..N {
                    let mut v = encode(i);
                    while let Err(back) = p.push(v) {
                        v = back;
                        // Yield, don't spin: on a single CPU the
                        // consumer can't drain until we deschedule.
                        std::thread::yield_now();
                    }
                    if rng.next() % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(move || {
                let mut rng = crate::tests::SplitMix64::new(0xF00D);
                for i in 0..N {
                    let got = loop {
                        match c.pop() {
                            Some(v) => break v,
                            None => std::thread::yield_now(),
                        }
                    };
                    assert_eq!(got, encode(i), "FIFO order and integrity at {i}");
                    if rng.next() % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
                assert_eq!(c.pop(), None, "nothing past the last push");
            });
        });
    }
}
