//! E7 — consensus protocols and §5.3 derivations, at runtime.
//!
//! Two-thread propose latency per protocol family (CAS, TAS+registers,
//! queue+registers, fetch&add+registers, sticky), plus the §5.3
//! consensus-derived one-use bit and a universal-construction operation.
//! Expected shape: raw CAS is cheapest; register-assisted protocols pay
//! the announce round-trip; universal-construction operations pay log
//! replay.

use std::sync::Arc;

use std::hint::black_box;
use wfc_bench::harness::Criterion;
use wfc_bench::{criterion_group, criterion_main};
use wfc_consensus::{
    cas_consensus, fetch_add_consensus_2, queue_consensus_2, sticky_consensus, tas_consensus_2,
    Proposer, UniversalObject,
};
use wfc_core::{one_use_from_consensus, OneUseRead, OneUseWrite};
use wfc_runtime::run_threads;
use wfc_spec::canonical;

fn race2<P: Proposer + 'static>(mk: impl Fn() -> [P; 2]) -> u64 {
    let [a, b] = mk();
    let decisions = run_threads(vec![
        Box::new(move || a.propose(0)) as Box<dyn FnOnce() -> u64 + Send>,
        Box::new(move || b.propose(1)),
    ]);
    decisions[0]
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_consensus_2thread");
    g.bench_function("cas", |b| {
        b.iter(|| {
            let mut hs = cas_consensus(2);
            let h1 = hs.pop().unwrap();
            let h0 = hs.pop().unwrap();
            let decisions = run_threads(vec![
                Box::new(move || h0.propose(0)) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || h1.propose(1)),
            ]);
            black_box(decisions[0])
        })
    });
    g.bench_function("tas+registers", |b| {
        b.iter(|| black_box(race2(tas_consensus_2)))
    });
    g.bench_function("queue+registers", |b| {
        b.iter(|| black_box(race2(queue_consensus_2)))
    });
    g.bench_function("fetch_add+registers", |b| {
        b.iter(|| black_box(race2(fetch_add_consensus_2)))
    });
    g.bench_function("sticky", |b| {
        b.iter(|| {
            let mut hs = sticky_consensus(2);
            let h1 = hs.pop().unwrap();
            let h0 = hs.pop().unwrap();
            let decisions = run_threads(vec![
                Box::new(move || h0.propose(0)) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || h1.propose(1)),
            ]);
            black_box(decisions[0])
        })
    });
    g.finish();

    let mut g = c.benchmark_group("e7_derived_one_use");
    g.bench_function("from_tas_consensus/write+read", |b| {
        b.iter(|| {
            let (w, r) = one_use_from_consensus(tas_consensus_2());
            w.write();
            black_box(r.read())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("e7_universal");
    let ty = Arc::new(canonical::fetch_and_add(64, 2));
    let init = ty.state_id("0").unwrap();
    let fadd = ty.invocation_id("fetch_add").unwrap();
    g.bench_function("fetch_add_op_seq", |b| {
        b.iter_batched(
            || UniversalObject::new(Arc::clone(&ty), init, 64).ports(),
            |mut hs| {
                for _ in 0..8 {
                    black_box(hs[0].invoke(fadd));
                }
            },
            wfc_bench::harness::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
