//! E12 — control-plane poll overhead: what does threading a
//! `Budget`/`CancelToken`/`Wall` through the hot loops cost when the
//! signals never fire?
//!
//! Two engines, two arms each: the explorer's BFS over the TAS
//! consensus tree and the sched DFS over the SRSW conversation, run
//! once with a no-op token (`CancelToken::NONE`, no wall — the poll
//! short-circuits on a `None` flag) and once *armed* (a real
//! `AtomicBool` that never flips plus a far-future wall deadline, so
//! every poll does its full load-and-compare work). The acceptance
//! budget is **< 2 % median overhead** for the armed arm — the polls
//! sit at sync points (BFS level, per-pop stride, schedule boundary),
//! not in the inner step loop, which is what keeps them cheap. The
//! footer prints the measured ratios; with `WFC_OBS_JSON` set the group
//! emits `BENCH_control.json` for `wfc-report`'s trajectory table.

use std::hint::black_box;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use wfc_bench::harness::Criterion;
use wfc_bench::{criterion_group, criterion_main};
use wfc_consensus::tas_consensus_system;
use wfc_explorer::ExploreOptions;
use wfc_sched::{fixtures, Mode, SchedOptions};
use wfc_spec::control::{CancelToken, Wall};

static ARMED: AtomicBool = AtomicBool::new(false);

/// An explorer configuration whose control signals are live but never
/// fire: every poll pays for a real atomic load and a clock compare.
fn armed_explore_options() -> ExploreOptions {
    let mut opts = ExploreOptions::default().with_cancel(CancelToken::new(&ARMED));
    opts.budget.wall = Some(Wall::expires_in(Duration::from_secs(3600)));
    opts
}

fn armed_sched_options(base: SchedOptions) -> SchedOptions {
    let mut opts = base.with_cancel(CancelToken::new(&ARMED));
    opts.budget.wall = Some(Wall::expires_in(Duration::from_secs(3600)));
    opts
}

fn bench_control(c: &mut Criterion) {
    let mut g = c.benchmark_group("control");
    g.sample_size(10);

    let sys = tas_consensus_system([false, true]).system;
    g.bench_function("explore/noop_token", |b| {
        let opts = ExploreOptions::default();
        b.iter(|| black_box(wfc_explorer::explore(&sys, &opts).unwrap()))
    });
    g.bench_function("explore/armed_token", |b| {
        let opts = armed_explore_options();
        b.iter(|| black_box(wfc_explorer::explore(&sys, &opts).unwrap()))
    });

    let base = SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets: true });
    let mut build = fixtures::build("srsw").expect("srsw fixture exists");
    g.bench_function("sched/noop_token", |b| {
        b.iter(|| black_box(wfc_sched::explore(&base, &mut build).unwrap()))
    });
    g.bench_function("sched/armed_token", |b| {
        let opts = armed_sched_options(base);
        b.iter(|| black_box(wfc_sched::explore(&opts, &mut build).unwrap()))
    });

    // Footer: the measured overhead ratios against the 2 % budget. The
    // results land pairwise (noop, armed) per engine.
    for pair in g.results().chunks(2) {
        let [noop, armed] = pair else { continue };
        if noop.median_ns <= 0.0 {
            continue;
        }
        let overhead = (armed.median_ns - noop.median_ns) / noop.median_ns * 100.0;
        let engine = noop.id.split('/').next().unwrap_or("?");
        println!("control/{engine:<40} armed-token overhead: {overhead:+.2}% (budget < 2%)");
    }
    g.finish();
}

criterion_group!(benches, bench_control);
criterion_main!(benches);
