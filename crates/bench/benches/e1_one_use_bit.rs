//! E1 — one-use bit implementations (paper §3, §5).
//!
//! Measures one write+read conversation per implementation: the native
//! atomic bit, witness-derived bits over various substrate types
//! (§5.1–5.2), and the consensus-derived bit (§5.3). Derived bits pay
//! one shared-object invocation per `write` and `k` per `read`.

use std::sync::Arc;

use std::hint::black_box;
use wfc_bench::harness::Criterion;
use wfc_bench::{criterion_group, criterion_main};
use wfc_core::{atomic_one_use_bit, one_use_from_consensus, OneUseRead, OneUseRecipe, OneUseWrite};
use wfc_spec::canonical;

fn bench_one_use(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_one_use_bit");

    g.bench_function("atomic/write+read", |b| {
        b.iter(|| {
            let (w, r) = atomic_one_use_bit();
            w.write();
            black_box(r.read())
        })
    });

    for ty in [
        canonical::test_and_set(2),
        canonical::boolean_register(2),
        canonical::queue(1, 1, 2),
        canonical::marked_ring(4),
    ] {
        let ty = Arc::new(ty);
        let recipe = OneUseRecipe::from_type(&ty).expect("non-trivial");
        g.bench_function(format!("derived/{}/write+read", ty.name()), |b| {
            b.iter(|| {
                let (w, r) = recipe.instantiate();
                w.write();
                black_box(r.read())
            })
        });
    }

    g.bench_function("consensus/tas2/write+read", |b| {
        b.iter(|| {
            let (w, r) = one_use_from_consensus(wfc_consensus::tas_consensus_2());
            w.write();
            black_box(r.read())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_one_use);
criterion_main!(benches);
