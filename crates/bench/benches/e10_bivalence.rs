//! E10 — valency analysis (the FLP structure behind Theorem 5's case 1).
//!
//! Measures `analyze_valency` on consensus systems: full-graph valency
//! classification with backward fixpoint. Expected shape: linear in the
//! configuration-graph size, which the depth columns of E3 predict.

use std::hint::black_box;
use wfc_bench::harness::{BenchmarkId, Criterion};
use wfc_bench::register_protocols;
use wfc_bench::{criterion_group, criterion_main};
use wfc_explorer::bivalence::analyze_valency;
use wfc_explorer::ExploreOptions;

fn bench_bivalence(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let mut g = c.benchmark_group("e10_valency");
    for (label, build) in register_protocols() {
        let cs = build(&[false, true]);
        g.bench_with_input(BenchmarkId::from_parameter(label), &cs, |b, cs| {
            b.iter(|| black_box(analyze_valency(&cs.system, &opts).unwrap()))
        });
    }
    for n in 2..=4 {
        let cs = wfc_consensus::cas_consensus_system(&vec![false; n]);
        g.bench_with_input(BenchmarkId::new("cas_all_zero", n), &cs, |b, cs| {
            b.iter(|| black_box(analyze_valency(&cs.system, &opts).unwrap()))
        });
    }
    // Thread axis: graph discovery is sharded across workers; the valency
    // classification itself is unchanged and the output bit-identical.
    for threads in [1, 2, 4] {
        let topts = opts.with_threads(threads);
        let cs = wfc_consensus::cas_consensus_system(&[false; 4]);
        g.bench_with_input(
            BenchmarkId::new("cas_all_zero_n4_threads", threads),
            &cs,
            |b, cs| b.iter(|| black_box(analyze_valency(&cs.system, &topts).unwrap())),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("e10_impossibility");
    g.sample_size(10);
    g.bench_function("one_round_sweep_1024", |b| {
        b.iter(|| {
            let outcome = wfc_hierarchy::impossibility::search_one_round_protocols(&opts).unwrap();
            assert!(outcome.survivors.is_empty());
            black_box(outcome)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bivalence);
criterion_main!(benches);
