//! E4 — the bounded bit from one-use bits (paper §4.3).
//!
//! Measures a full conversation (w alternating writes, r reads) on the
//! `r·(w+1)` one-use-bit array versus a plain `AtomicBool` baseline, for
//! a grid of budgets. Expected shape: write cost scales with `r` (a row
//! flip touches `r` bits); read cost is amortised-constant (each read
//! walks past each row at most once across the bit's lifetime); the
//! baseline is flat.

use std::sync::atomic::{AtomicBool, Ordering};

use std::hint::black_box;
use wfc_bench::harness::{BenchmarkId, Criterion, Throughput};
use wfc_bench::{criterion_group, criterion_main};
use wfc_core::bounded_bit;

fn conversation(reads: usize, writes: usize) {
    let (mut w, mut r) = bounded_bit(false, reads, writes);
    let mut v = false;
    let mut written = 0;
    for k in 0..reads {
        if written < writes && k % 2 == 0 {
            v = !v;
            w.write(v).unwrap();
            written += 1;
        }
        black_box(r.read().unwrap());
    }
}

fn baseline(reads: usize, writes: usize) {
    let bit = AtomicBool::new(false);
    let mut v = false;
    let mut written = 0;
    for k in 0..reads {
        if written < writes && k % 2 == 0 {
            v = !v;
            bit.store(v, Ordering::Release);
            written += 1;
        }
        black_box(bit.load(Ordering::Acquire));
    }
}

fn bench_bounded_bit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_bounded_bit");
    for (reads, writes) in [(4, 2), (16, 8), (64, 32), (256, 128)] {
        g.throughput(Throughput::Elements(reads as u64));
        g.bench_with_input(
            BenchmarkId::new("one_use_array", format!("r{reads}_w{writes}")),
            &(reads, writes),
            |b, &(r, w)| b.iter(|| conversation(r, w)),
        );
        g.bench_with_input(
            BenchmarkId::new("atomic_bool_baseline", format!("r{reads}_w{writes}")),
            &(reads, writes),
            |b, &(r, w)| b.iter(|| baseline(r, w)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_bounded_bit);
criterion_main!(benches);
