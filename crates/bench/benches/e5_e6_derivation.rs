//! E5/E6 — witness search over non-trivial types (paper §5.1–5.2).
//!
//! E5: the oblivious single-step search on the zoo. E6: the general
//! minimal non-trivial pair search (BFS over state pairs), scaled by the
//! `marked_ring(m)` family whose minimal `k` equals `m`. Expected shape:
//! oblivious search is near-constant on small types; the general search
//! grows with `|Q|²·|I|` and the witness length grows linearly in `m`.

use std::sync::Arc;

use std::hint::black_box;
use wfc_bench::harness::{BenchmarkId, Criterion};
use wfc_bench::{criterion_group, criterion_main};
use wfc_spec::triviality::oblivious_witness;
use wfc_spec::witness::find_witness;
use wfc_spec::{canonical, triviality};

fn bench_derivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_oblivious_witness");
    for ty in canonical::deterministic_zoo(2) {
        if matches!(ty.name(), "mute" | "constant_responder") || !ty.is_oblivious() {
            continue;
        }
        let ty = Arc::new(ty);
        g.bench_with_input(BenchmarkId::from_parameter(ty.name()), &ty, |b, ty| {
            b.iter(|| black_box(oblivious_witness(ty).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_general_witness");
    for m in [2usize, 4, 8, 16, 32] {
        let ty = Arc::new(canonical::marked_ring(m));
        g.bench_with_input(BenchmarkId::new("marked_ring", m), &ty, |b, ty| {
            b.iter(|| black_box(find_witness(ty).unwrap()))
        });
    }
    for ty in [canonical::compare_and_swap(3, 2), canonical::queue(2, 2, 2)] {
        let ty = Arc::new(ty);
        g.bench_with_input(BenchmarkId::new("zoo", ty.name()), &ty, |b, ty| {
            b.iter(|| black_box(find_witness(ty).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_triviality_decider");
    for m in [2usize, 4, 8, 16] {
        let ty = Arc::new(canonical::marked_ring(m));
        g.bench_with_input(BenchmarkId::new("closure", m), &ty, |b, ty| {
            b.iter(|| black_box(triviality::is_trivial(ty).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_derivation);
criterion_main!(benches);
