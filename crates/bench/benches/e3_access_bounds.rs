//! E3 — computing the §4.2 access bounds by exhaustive exploration.
//!
//! Measures the cost of building all `2^n` execution trees and
//! extracting `D`, `r_b`, `w_b` — per protocol, and for the register-free
//! CAS protocol as `n` grows (the state space, and hence the time, grows
//! with the number of processes: the paper's finiteness is qualitative,
//! the constant is exponential).

use std::hint::black_box;
use wfc_bench::harness::Criterion;
use wfc_bench::register_protocols;
use wfc_bench::{criterion_group, criterion_main};
use wfc_core::access_bounds;
use wfc_explorer::ExploreOptions;

fn bench_access_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_access_bounds");
    let opts = ExploreOptions::default();

    for (label, build) in register_protocols() {
        g.bench_function(format!("{label}/n=2"), |b| {
            b.iter(|| black_box(access_bounds(2, build, &opts).unwrap()))
        });
    }

    for n in 2..=4 {
        g.bench_function(format!("cas/n={n}"), |b| {
            b.iter(|| {
                black_box(access_bounds(n, wfc_consensus::cas_consensus_system, &opts).unwrap())
            })
        });
    }

    // The thread axis: same analysis, 2^n trees fanned across workers.
    // Results are bit-identical to threads=1; only wall-clock changes.
    for threads in [1, 2, 4, 8] {
        let topts = opts.with_threads(threads);
        g.bench_function(format!("cas_announce/n=3/threads={threads}"), |b| {
            b.iter(|| {
                black_box(
                    access_bounds(3, wfc_consensus::cas_announce_consensus_system, &topts).unwrap(),
                )
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_access_bounds);
criterion_main!(benches);
