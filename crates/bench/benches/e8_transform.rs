//! E8 — the Theorem 5 register-elimination compiler.
//!
//! Measures (a) the pure rewrite (`eliminate_registers`) and (b) the
//! full certified pipeline (`check_theorem5`: bounds + rewrite + re-model
//! checking over all input vectors), per protocol × substrate. Expected
//! shape: the rewrite is microseconds; re-verification dominates and
//! grows with the eliminated system's state space (recipe substrates
//! with longer reader sequences cost more than native `T_1u` bits).

use std::hint::black_box;
use wfc_bench::harness::{BenchmarkId, Criterion};
use wfc_bench::{criterion_group, criterion_main};
use wfc_bench::{register_protocols, substrates};
use wfc_core::{access_bounds, check_theorem5, eliminate_registers};
use wfc_explorer::ExploreOptions;

fn bench_transform(c: &mut Criterion) {
    let opts = ExploreOptions::default();

    let mut g = c.benchmark_group("e8_rewrite_only");
    for (plabel, build) in register_protocols() {
        let bounds = access_bounds(2, build, &opts).unwrap();
        let cs = build(&[true, false]);
        for (slabel, source) in substrates() {
            g.bench_with_input(BenchmarkId::new(plabel, &slabel), &source, |b, source| {
                b.iter(|| black_box(eliminate_registers(&cs, &bounds.registers, source).unwrap()))
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("e8_full_pipeline");
    g.sample_size(10);
    for (plabel, build) in register_protocols() {
        for (slabel, source) in substrates() {
            g.bench_with_input(BenchmarkId::new(plabel, &slabel), &source, |b, source| {
                b.iter(|| black_box(check_theorem5(2, build, source, &opts).unwrap()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
