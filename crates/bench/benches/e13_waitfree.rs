//! E13 — wait-free primitive cost: what did replacing the engine's
//! lock-based rendezvous points with `wfc-waitfree` primitives buy on
//! the uncontended fast path?
//!
//! Three pairs, one per primitive, each against the mutexed structure
//! it replaced: the SPSC ring vs a `Mutex<VecDeque>` (the worker→IO
//! response path), the triple buffer vs a mutexed slot (span-batch
//! publication), and the write-once cell vs `Mutex<Option<_>>` (pool
//! result slots). Both arms run the same operation sequence on one
//! thread, so the pair isolates *protocol* cost — the atomics and
//! fences — from scheduling noise.
//!
//! The footer prints the measured ratios. They are **informational**,
//! not acceptance gates: CI runs on a single-CPU container, where an
//! uncontended `futex` lock is near its best case and the wait-free
//! progress guarantee (no producer ever parks behind a descheduled
//! lock-holder) never gets to show up — the property the primitives
//! were actually adopted for. With `WFC_OBS_JSON` set the group emits
//! `BENCH_waitfree.json` for `wfc-report`'s trajectory table.

use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::Mutex;

use wfc_bench::harness::Criterion;
use wfc_bench::{criterion_group, criterion_main};
use wfc_registers::RealProvider;
use wfc_waitfree::{ring, triple_buffer, WriteOnce};

/// Operations per measured iteration, so one sample amortises the
/// iteration bookkeeping over a ring's worth of work.
const OPS: usize = 64;

fn bench_waitfree(c: &mut Criterion) {
    let mut g = c.benchmark_group("waitfree");
    g.sample_size(30);

    // --- SPSC ring vs Mutex<VecDeque> -------------------------------
    let (mut producer, mut consumer) = ring::<usize, RealProvider>(OPS, 0);
    g.bench_function("spsc/ring_push_pop", |b| {
        b.iter(|| {
            for i in 0..OPS {
                producer.push(black_box(i)).expect("ring sized for OPS");
            }
            for _ in 0..OPS {
                black_box(consumer.pop().expect("ring holds OPS"));
            }
        })
    });
    let deque: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::with_capacity(OPS));
    g.bench_function("spsc/mutex_deque_push_pop", |b| {
        b.iter(|| {
            for i in 0..OPS {
                deque.lock().unwrap().push_back(black_box(i));
            }
            for _ in 0..OPS {
                black_box(deque.lock().unwrap().pop_front().expect("deque holds OPS"));
            }
        })
    });

    // --- Triple buffer vs mutexed slot ------------------------------
    let (mut publisher, mut subscriber) = triple_buffer::<usize, RealProvider>(0);
    g.bench_function("triple/publish_refresh_read", |b| {
        b.iter(|| {
            for i in 0..OPS {
                publisher.publish(black_box(i));
                subscriber.refresh();
                black_box(subscriber.read());
            }
        })
    });
    let slot: Mutex<usize> = Mutex::new(0);
    g.bench_function("triple/mutex_slot_store_load", |b| {
        b.iter(|| {
            for i in 0..OPS {
                *slot.lock().unwrap() = black_box(i);
                black_box(*slot.lock().unwrap());
            }
        })
    });

    // --- Write-once cell vs Mutex<Option> ---------------------------
    // A write-once cell is single-shot, so both arms pay one fresh
    // structure per round trip — construction is part of the protocol
    // being compared (the pool builds one slot per item).
    g.bench_function("cell/writeonce_set_take", |b| {
        b.iter(|| {
            for i in 0..OPS {
                let cell = WriteOnce::<usize, RealProvider>::new(0);
                cell.set(black_box(i));
                black_box(cell.take().expect("just set"));
            }
        })
    });
    g.bench_function("cell/mutex_option_set_take", |b| {
        b.iter(|| {
            for i in 0..OPS {
                let cell: Mutex<Option<usize>> = Mutex::new(None);
                *cell.lock().unwrap() = Some(black_box(i));
                black_box(cell.lock().unwrap().take().expect("just set"));
            }
        })
    });

    // Footer: pairwise ratios (wait-free, mutex) per primitive — see
    // the module docs for why these are informational on one CPU.
    for pair in g.results().chunks(2) {
        let [wait_free, mutexed] = pair else { continue };
        if wait_free.median_ns <= 0.0 {
            continue;
        }
        let ratio = mutexed.median_ns / wait_free.median_ns;
        let primitive = wait_free.id.split('/').next().unwrap_or("?");
        println!("waitfree/{primitive:<8} mutex-baseline ratio: {ratio:.2}x (informational)");
    }
    println!(
        "waitfree: single-CPU container — uncontended ratios only; the wait-free win \
         (no producer parks behind a descheduled lock-holder) needs real contention"
    );
    g.finish();
}

criterion_group!(benches, bench_waitfree);
criterion_main!(benches);
