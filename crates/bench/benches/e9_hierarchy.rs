//! E9 — re-verifying the hierarchy catalog.
//!
//! Measures `verify_entry` per catalog row: the cheap rows (definitional
//! or cited) versus the heavyweight ones whose `h_m` lower bound reruns
//! the whole Theorem 5 pipeline. Expected shape: orders of magnitude
//! between a triviality check and a full register-elimination proof.

use std::hint::black_box;
use wfc_bench::harness::{BenchmarkId, Criterion};
use wfc_bench::{criterion_group, criterion_main};
use wfc_hierarchy::{catalog, verify_entry};

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_verify_entry");
    g.sample_size(10);
    for entry in catalog() {
        g.bench_with_input(
            BenchmarkId::from_parameter(entry.ty.name().to_owned()),
            &entry,
            |b, e| b.iter(|| black_box(verify_entry(e))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
