//! E2 — the register construction chain (paper §4.1).
//!
//! Per-layer read and write latency, bottom to top: base SRSW atomic
//! cell, Lamport MRSW regular bit, unary multi-value regular register,
//! MRSW atomic (helping matrix), MRMW atomic (Vitányi–Awerbuch), and the
//! assembled `Register` façade. The expected shape: cost grows with the
//! layer's fan-out (number of base cells touched per operation).

use std::hint::black_box;
use wfc_bench::harness::Criterion;
use wfc_bench::{criterion_group, criterion_main};
use wfc_registers::{
    atomic_bit, atomic_reg, mrsw_atomic_register, mrsw_regular_bit, unary_regular_register,
    BitReader, BitWriter, RegReader, RegWriter, Register, Stamped,
};

const READERS: usize = 4;

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_register_chain");

    let (mut w, mut r) = atomic_bit(false);
    g.bench_function("L0_srsw_atomic_bit/write+read", |b| {
        b.iter(|| {
            w.write(true);
            black_box(r.read())
        })
    });

    let (mut w, mut rs) = mrsw_regular_bit(false, READERS, |init| {
        let (w, r) = atomic_bit(init);
        (
            Box::new(w) as Box<dyn BitWriter>,
            Box::new(r) as Box<dyn BitReader>,
        )
    });
    g.bench_function("L1_mrsw_regular_bit/write+read", |b| {
        b.iter(|| {
            w.write(true);
            black_box(rs[0].read())
        })
    });

    let (mut w, mut rs) = unary_regular_register(0, 8, READERS, |init, n| {
        mrsw_regular_bit(init, n, |i| {
            let (w, r) = atomic_bit(i);
            (
                Box::new(w) as Box<dyn BitWriter>,
                Box::new(r) as Box<dyn BitReader>,
            )
        })
    });
    g.bench_function("L2_unary_regular_8val/write+read", |b| {
        let mut v = 0usize;
        b.iter(|| {
            v = (v + 1) % 8;
            w.write(v);
            black_box(rs[0].read())
        })
    });

    let (mut w, mut rs) = mrsw_atomic_register(0u64, READERS, |init| {
        let (w, r) = atomic_reg(init);
        (
            Box::new(w) as Box<dyn RegWriter<Stamped<u64>>>,
            Box::new(r) as Box<dyn RegReader<Stamped<u64>>>,
        )
    });
    g.bench_function("L3_mrsw_atomic/write+read", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            w.write(v);
            black_box(rs[0].read())
        })
    });

    let (mut ws, mut rs) = Register::new(0u64, 2, READERS);
    g.bench_function("L4_mrmw_register/write+read", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            ws[0].write(v);
            black_box(rs[0].read())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
