//! E11 — the `wfc-sched` model checker: schedules per second, DFS
//! versus PCT, on the 1-write/2-read SRSW conversation.
//!
//! Each schedule is one from-scratch execution carried by real OS
//! threads handshaking through a mutex/condvar, so the dominant cost is
//! context switching, not the register code under test. The throughput
//! lines therefore read as schedules/second, which is the number that
//! decides what budgets CI smoke runs can afford. Expected shape:
//! sleep-set DFS explores fewer schedules than plain DFS for the same
//! verdict, and PCT's cost is linear in its configured run count.

use std::hint::black_box;
use wfc_bench::harness::{Criterion, Throughput};
use wfc_bench::{criterion_group, criterion_main};
use wfc_sched::{explore, fixtures, Mode, SchedOptions};

fn bench_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched");
    g.sample_size(10);
    let cases = [
        ("dfs_sleep_on", Mode::Exhaustive { sleep_sets: true }),
        ("dfs_sleep_off", Mode::Exhaustive { sleep_sets: false }),
        (
            "pct_seed1_runs32",
            Mode::Pct {
                seed: 1,
                runs: 32,
                depth: 3,
            },
        ),
    ];
    for (label, mode) in cases {
        let options = SchedOptions::default().with_mode(mode);
        let mut build = fixtures::build("srsw").expect("srsw fixture exists");
        // The verdict is deterministic, so one warm-up run tells us the
        // per-exploration schedule count for the throughput line.
        let schedules = explore(&options, &mut build)
            .expect("srsw fits the default budgets")
            .schedules;
        g.throughput(Throughput::Elements(schedules));
        g.bench_function(format!("srsw/{label}"), |b| {
            b.iter(|| black_box(explore(&options, &mut build).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
