//! A minimal, dependency-free benchmark harness with a
//! criterion-compatible surface.
//!
//! The workspace builds fully offline, so the E1–E10 benches cannot pull
//! in an external harness. This module reimplements the small slice of
//! the criterion API they use — `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over
//! `std::time::Instant`.
//!
//! Measurement model: each benchmark is calibrated to pick an iteration
//! count whose batch lasts roughly [`TARGET_BATCH`], then `sample_size`
//! batches are timed and the median per-iteration time is reported. Set
//! `WFC_BENCH_FAST=1` to cut sample counts for smoke runs (CI compiles
//! benches but does not need statistically stable numbers).

use std::time::{Duration, Instant};

/// Per-sample time budget the calibrator aims for.
const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Top-level harness handle; create one per bench binary (the
/// [`criterion_group!`] macro does this for you).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: default_sample_size(),
            throughput: None,
            results: Vec::new(),
        }
    }
}

fn default_sample_size() -> usize {
    if std::env::var_os("WFC_BENCH_FAST").is_some() {
        3
    } else {
        20
    }
}

/// Unit the group's results are normalised against.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` amortises per timing batch.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is cheap to create; one per iteration.
    SmallInput,
    /// Setup output is expensive; still one per iteration here.
    LargeInput,
}

/// A benchmark's identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// One benchmark's aggregated timing, as collected by its group.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// The benchmark id within the group.
    pub id: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Fastest sample.
    pub lo_ns: f64,
    /// Slowest sample.
    pub hi_ns: f64,
    /// Number of timed batches.
    pub samples: usize,
}

/// A named set of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var_os("WFC_BENCH_FAST").is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Declares the work per iteration for derived throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Times `f` on `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Prints the group footer and, when an emission destination is
    /// configured (`WFC_OBS=1` or `WFC_OBS_JSON=<dir>`), emits the
    /// group's results as a `BENCH_<group>` run report — the input to
    /// `cargo run -p wfc-bench --bin report -- --check`.
    pub fn finish(&mut self) {
        if wfc_obs::emission_requested() {
            self.to_report().emit();
        }
    }

    /// The group's collected results as a `wfc-obs/v1` run report named
    /// `BENCH_<group>`, with a `bench` section carrying one entry per
    /// benchmark.
    pub fn to_report(&self) -> wfc_obs::report::RunReport {
        use wfc_obs::json::Json;
        let mut report = wfc_obs::report::RunReport::collect(&format!("BENCH_{}", self.name));
        let results = self
            .results
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("id", Json::Str(r.id.clone())),
                    ("median_ns", Json::F64(r.median_ns)),
                    ("lo_ns", Json::F64(r.lo_ns)),
                    ("hi_ns", Json::F64(r.hi_ns)),
                    ("samples", Json::U64(r.samples as u64)),
                ])
            })
            .collect();
        report.section(
            "bench",
            Json::obj(vec![
                ("group", Json::Str(self.name.clone())),
                ("sample_size", Json::U64(self.sample_size as u64)),
                (
                    "fast_mode",
                    Json::Bool(std::env::var_os("WFC_BENCH_FAST").is_some()),
                ),
                ("results", Json::Arr(results)),
            ]),
        );
        report
    }

    /// The results collected so far, one entry per benchmark.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn report(&mut self, id: &BenchmarkId, samples: &[f64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let lo = sorted.first().copied().unwrap_or(0.0);
        let hi = sorted.last().copied().unwrap_or(0.0);
        self.results.push(BenchResult {
            id: id.name.clone(),
            median_ns: median,
            lo_ns: lo,
            hi_ns: hi,
            samples: sorted.len(),
        });
        println!(
            "{}/{:<40} time: [{} {} {}]",
            self.name,
            id.name,
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0.0 && count > 0 {
                let per_sec = count as f64 / (median * 1e-9);
                println!(
                    "{}/{:<40} thrpt: {:.3} M{unit}/s",
                    self.name,
                    id.name,
                    per_sec / 1e6
                );
            }
        }
    }
}

/// Renders a nanosecond figure with a human-friendly unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Passed into each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per timed batch.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, repeating it enough to smooth out clock noise.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fill the target batch time?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_smoke");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |n| n * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn group_report_is_valid_and_carries_results() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("report_smoke");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(g.results().len(), 1);
        assert_eq!(g.results()[0].id, "noop");
        assert!(g.results()[0].samples >= 1);
        let rendered = g.to_report().render();
        let parsed = wfc_obs::json::parse(&rendered).expect("report parses");
        wfc_obs::report::validate(&parsed).expect("report validates");
        assert_eq!(
            parsed.get("name").and_then(|j| j.as_str()),
            Some("BENCH_report_smoke")
        );
        let bench = parsed
            .get("sections")
            .and_then(|s| s.get("bench"))
            .expect("bench section present");
        assert_eq!(
            bench.get("group").and_then(|j| j.as_str()),
            Some("report_smoke")
        );
        let results = bench
            .get("results")
            .and_then(|j| j.as_arr())
            .expect("results array");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("id").and_then(|j| j.as_str()), Some("noop"));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").name, "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).name, "3");
        assert_eq!(BenchmarkId::from("lit").name, "lit");
    }
}
