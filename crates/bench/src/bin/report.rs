//! `wfc-report` — regenerate every experiment table in EXPERIMENTS.md.
//!
//! The paper is pure theory (no measured tables of its own); this report
//! is the quantitative record of its constructions: execution-tree
//! depths, access bounds, one-use-bit costs, witness lengths, transform
//! blow-ups, hierarchy values and valency statistics. Timings are
//! measured by the Criterion benches (`cargo bench`); this binary checks
//! and prints the *functional* numbers.
//!
//! Run with: `cargo run --release --bin wfc-report`
//!
//! Modes:
//! - no arguments — regenerate the tables, then print the bench
//!   trajectory from any `BENCH_*.json` run reports found in the
//!   observability directory (`WFC_OBS_JSON`, default `obs-reports`).
//!   Missing or empty directories are reported, not fatal.
//! - `--check [dir]` — validate every `.json` file in `dir` against the
//!   `wfc-obs/v1` schema and exit non-zero if any is invalid. Used by CI
//!   after a `WFC_OBS_JSON=… cargo bench` smoke run.
//! - `--diff <dirA> <dirB>` — side-by-side bench trajectory of two
//!   report directories with percent deltas on the medians; benchmarks
//!   present in only one directory are marked `new`/`gone`. Compares
//!   two recorded runs (e.g. before/after an optimisation).

use std::error::Error;
use std::path::{Path, PathBuf};
use std::time::Instant;

use wfc_bench::harness::fmt_ns;
use wfc_bench::{register_protocols, substrates, witness_types};
use wfc_consensus as consensus;
use wfc_core as core;
use wfc_explorer::bivalence::analyze_valency;
use wfc_explorer::ExploreOptions;
use wfc_hierarchy as hierarchy;
use wfc_spec::witness::find_witness;
use wfc_spec::{canonical, triviality};

/// Where bench run reports are read from: `WFC_OBS_JSON` if set, else
/// the conventional `obs-reports` directory.
fn obs_reports_dir() -> PathBuf {
    std::env::var_os("WFC_OBS_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("obs-reports"))
}

/// The `.json` files under `dir` whose names match `prefix`, sorted for
/// deterministic output. Missing or unreadable directories yield an
/// empty list — callers decide whether that is an error.
fn json_files(dir: &Path, prefix: &str) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|ext| ext == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    files.sort();
    files
}

/// Parses and schema-validates one JSON artifact, dispatching on its
/// `schema`/`proto` field: `wfc-svc-cache/v1` files (the service's disk
/// cache entries and `cache-meta.json`) go to the cache validator,
/// `wfc-stats/v1` snapshots (scraped from a live server's `stats`
/// query) go to the stats validator,
/// `wfc-repl/v1` status frames (captured by the cluster smoke script)
/// go to the replication status validator,
/// `wfc-scenario/v1` documents (produced by `wfc scenario run` and the
/// served `scenario` query) go to the scenario validator,
/// `wfc-svc/v1` frames (responses captured by smoke scripts — notably
/// `deadline-exceeded` errors, whose `budget`/`used`/`resource`/
/// `partial` shape the wire validator enforces) go to the response
/// validator, anything else must be a `wfc-obs/v1` run report.
fn load_report(path: &Path) -> Result<wfc_obs::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = wfc_obs::json::parse(&text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(|s| s.as_str()) == Some(wfc_service::CACHE_SCHEMA) {
        wfc_service::validate_cache_json(&doc)?;
    } else if doc.get("schema").and_then(|s| s.as_str()) == Some(wfc_service::STATS_SCHEMA) {
        wfc_service::validate_stats_json(&doc)?;
    } else if doc.get("schema").and_then(|s| s.as_str()) == Some(wfc_scenario::SCHEMA) {
        wfc_scenario::validate_scenario_json(&doc)?;
    } else if doc.get("proto").and_then(|s| s.as_str()) == Some(wfc_repl::PROTO) {
        wfc_repl::msg::validate_status_json(&doc)?;
    } else if doc.get("proto").and_then(|s| s.as_str()) == Some(wfc_service::PROTO) {
        wfc_service::validate_response_json(&doc)?;
    } else {
        wfc_obs::report::validate(&doc)?;
    }
    Ok(doc)
}

/// `--check [dir]`: every `.json` file in `dir` must be a valid
/// `wfc-obs/v1` run report, `wfc-svc-cache/v1` cache document,
/// `wfc-stats/v1` introspection snapshot, `wfc-scenario/v1` scenario
/// document, `wfc-repl/v1` status frame, or `wfc-svc/v1` response
/// frame.
fn check_reports(dir: &Path) -> Result<(), Box<dyn Error>> {
    if !dir.is_dir() {
        return Err(format!(
            "--check: report directory {} does not exist (run with WFC_OBS_JSON={} first)",
            dir.display(),
            dir.display()
        )
        .into());
    }
    let files = json_files(dir, "");
    if files.is_empty() {
        return Err(format!("--check: no .json reports in {}", dir.display()).into());
    }
    let mut invalid = 0usize;
    for path in &files {
        match load_report(path) {
            Ok(_) => println!("ok      {}", path.display()),
            Err(e) => {
                eprintln!("INVALID {}: {e}", path.display());
                invalid += 1;
            }
        }
    }
    if invalid > 0 {
        return Err(format!("{invalid} of {} report(s) invalid", files.len()).into());
    }
    println!("{} report(s) valid", files.len());
    Ok(())
}

/// Prints the bench trajectory from `BENCH_*.json` run reports, or a
/// pointer on how to record them when none exist yet.
fn print_bench_trajectory(dir: &Path) {
    println!();
    println!("==================================================================");
    println!(" Bench trajectory ({}/BENCH_*.json)", dir.display());
    println!("==================================================================");
    let files = json_files(dir, "BENCH_");
    if files.is_empty() {
        println!(
            "no bench reports found — record them with \
             `WFC_OBS_JSON={} cargo bench -p wfc-bench`",
            dir.display()
        );
        return;
    }
    println!(
        "{:<20} {:<44} {:>12} {:>12} {:>12} {:>8}",
        "group", "benchmark", "lo", "median", "hi", "samples"
    );
    for path in &files {
        let doc = match load_report(path) {
            Ok(doc) => doc,
            Err(e) => {
                println!("(skipping {}: {e})", path.display());
                continue;
            }
        };
        let Some(bench) = doc.get("sections").and_then(|s| s.get("bench")) else {
            println!("(skipping {}: no bench section)", path.display());
            continue;
        };
        let group = bench.get("group").and_then(|j| j.as_str()).unwrap_or("?");
        let results = bench
            .get("results")
            .and_then(|j| j.as_arr())
            .unwrap_or_default();
        if results.is_empty() {
            println!("{group:<20} (no results recorded)");
            continue;
        }
        for r in results {
            println!(
                "{:<20} {:<44} {:>12} {:>12} {:>12} {:>8}",
                group,
                r.get("id").and_then(|j| j.as_str()).unwrap_or("?"),
                fmt_ns(r.get("lo_ns").and_then(|j| j.as_f64()).unwrap_or(0.0)),
                fmt_ns(r.get("median_ns").and_then(|j| j.as_f64()).unwrap_or(0.0)),
                fmt_ns(r.get("hi_ns").and_then(|j| j.as_f64()).unwrap_or(0.0)),
                r.get("samples").and_then(|j| j.as_u64()).unwrap_or(0),
            );
        }
    }
}

/// `group/benchmark → (lo_ns, median_ns, hi_ns)` across every
/// `BENCH_*.json` report in `dir`; later files win on a duplicate id.
fn collect_bench_results(dir: &Path) -> std::collections::BTreeMap<String, (f64, f64, f64)> {
    let mut out = std::collections::BTreeMap::new();
    for path in json_files(dir, "BENCH_") {
        let Ok(doc) = load_report(&path) else {
            eprintln!("(skipping unreadable {})", path.display());
            continue;
        };
        let Some(bench) = doc.get("sections").and_then(|s| s.get("bench")) else {
            continue;
        };
        let group = bench.get("group").and_then(|j| j.as_str()).unwrap_or("?");
        for r in bench
            .get("results")
            .and_then(|j| j.as_arr())
            .unwrap_or_default()
        {
            let id = r.get("id").and_then(|j| j.as_str()).unwrap_or("?");
            out.insert(
                format!("{group}/{id}"),
                (
                    r.get("lo_ns").and_then(|j| j.as_f64()).unwrap_or(0.0),
                    r.get("median_ns").and_then(|j| j.as_f64()).unwrap_or(0.0),
                    r.get("hi_ns").and_then(|j| j.as_f64()).unwrap_or(0.0),
                ),
            );
        }
    }
    out
}

/// `--diff <dirA> <dirB>`: the two trajectories side by side, with the
/// median's percent change (negative = B is faster).
fn diff_reports(dir_a: &Path, dir_b: &Path) -> Result<(), Box<dyn Error>> {
    let a = collect_bench_results(dir_a);
    let b = collect_bench_results(dir_b);
    if a.is_empty() && b.is_empty() {
        return Err(format!(
            "--diff: no BENCH_*.json reports in {} or {}",
            dir_a.display(),
            dir_b.display()
        )
        .into());
    }
    println!(
        "bench trajectory diff: A = {}, B = {}",
        dir_a.display(),
        dir_b.display()
    );
    println!(
        "{:<56} {:>12} {:>12} {:>9}",
        "benchmark", "A median", "B median", "delta"
    );
    let ids: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for id in ids {
        match (a.get(id), b.get(id)) {
            (Some(&(_, ma, _)), Some(&(_, mb, _))) => {
                let delta = if ma > 0.0 {
                    format!("{:+.1}%", (mb - ma) / ma * 100.0)
                } else {
                    "n/a".to_owned()
                };
                println!(
                    "{:<56} {:>12} {:>12} {:>9}",
                    id,
                    fmt_ns(ma),
                    fmt_ns(mb),
                    delta
                );
            }
            (Some(&(_, ma, _)), None) => {
                println!("{:<56} {:>12} {:>12} {:>9}", id, fmt_ns(ma), "—", "gone");
            }
            (None, Some(&(_, mb, _))) => {
                println!("{:<56} {:>12} {:>12} {:>9}", id, "—", fmt_ns(mb), "new");
            }
            (None, None) => unreachable!("id came from one of the maps"),
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let dir = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(obs_reports_dir);
            return check_reports(&dir);
        }
        Some("--diff") => {
            let (Some(dir_a), Some(dir_b)) = (args.get(1), args.get(2)) else {
                return Err("--diff needs two report directories: --diff <dirA> <dirB>".into());
            };
            return diff_reports(Path::new(dir_a), Path::new(dir_b));
        }
        Some(other) => {
            return Err(format!(
                "unknown argument {other:?}; usage: report [--check [dir] | --diff <dirA> <dirB>]"
            )
            .into());
        }
        None => {}
    }

    let opts = ExploreOptions::default();

    println!("==================================================================");
    println!(" E1 — one-use bit implementations (paper §3, §5)");
    println!("==================================================================");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "implementation", "write cost", "read cost", "objects used"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "atomic (native)", "1 store", "1 load", "1 AtomicBool"
    );
    for ty in [
        wfc_spec::canonical::test_and_set(2),
        wfc_spec::canonical::boolean_register(2),
        wfc_spec::canonical::queue(1, 1, 2),
        wfc_spec::canonical::marked_ring(4),
    ] {
        let ty = std::sync::Arc::new(ty);
        let recipe = core::OneUseRecipe::from_type(&ty)?;
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            format!("derived/{}", ty.name()),
            "1 invocation",
            format!("{} invocations", recipe.read_cost()),
            format!("1 × {}", ty.name()),
        );
    }
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "consensus (§5.3)", "1 propose", "1 propose", "1 consensus"
    );
    println!("(timings: cargo bench --bench e1_one_use_bit)");

    println!();
    println!("==================================================================");
    println!(" E2 — register chain layer costs (paper §4.1), 4 readers");
    println!("==================================================================");
    println!(
        "{:<28} {:>22} {:>22}",
        "layer", "base cells / write", "base cells / read"
    );
    let n = 4usize;
    for (layer, wr, rd) in [
        ("L0 srsw atomic cell", 1, 1),
        ("L1 mrsw regular bit", n, 1),
        ("L2 unary regular (8 vals)", 8 * n, 8), // worst case scan/clear
        ("L3 mrsw atomic (matrix)", n, 2 * n - 1),
        ("L4 mrmw (2 writers)", 2 * n + 1, 2 * n), // scan both + write own
    ] {
        println!("{:<28} {:>22} {:>22}", layer, wr, rd);
    }
    println!("(worst-case counts; timings: cargo bench --bench e2_register_chain)");

    println!();
    println!("==================================================================");
    println!(" E3 — access bounds in wait-free consensus (paper §4.2)");
    println!("==================================================================");
    println!(
        "{:<16} {:>3} {:>16} {:>4} {:>9} {:>14}",
        "protocol", "n", "d per tree", "D", "configs", "(r_b, w_b)/reg"
    );
    for (label, build) in register_protocols() {
        let b = core::access_bounds(2, build, &opts)?;
        println!(
            "{:<16} {:>3} {:>16} {:>4} {:>9} {:>14}",
            label,
            2,
            format!("{:?}", b.depth_per_tree),
            b.d_max,
            b.total_configs,
            format!(
                "{:?}",
                b.registers
                    .iter()
                    .map(|r| (r.reads, r.writes))
                    .collect::<Vec<_>>()
            ),
        );
    }
    for n in 2..=3 {
        let b = core::access_bounds(n, consensus::cas_consensus_system, &opts)?;
        println!(
            "{:<16} {:>3} {:>16} {:>4} {:>9} {:>14}",
            "cas (reg-free)",
            n,
            format!("{:?}", b.depth_per_tree),
            b.d_max,
            b.total_configs,
            "[]",
        );
    }
    for n in 2..=3 {
        let b = core::access_bounds(n, consensus::cas_announce_consensus_system, &opts)?;
        println!(
            "{:<16} {:>3} {:>16} {:>4} {:>9} {:>14}",
            "cas+announce",
            n,
            format!(
                "(min d {}, max d {})",
                b.depth_per_tree.iter().min().unwrap(),
                b.depth_per_tree.iter().max().unwrap()
            ),
            b.d_max,
            b.total_configs,
            format!("{} regs, all (1,1)", b.registers.len()),
        );
    }
    // Per-process wait-freedom bounds (the "finite number of own steps").
    {
        let cs = consensus::tas_consensus_system([false, true]);
        let e = wfc_explorer::explore(&cs.system, &opts)?;
        println!(
            "per-process step bounds, tas+regs (0,1): {:?} (wait-freedom constants)",
            e.per_process_steps
        );
    }

    println!();
    println!("==================================================================");
    println!(" E4 — one-use bits required: r_b · (w_b + 1) (paper §4.3)");
    println!("==================================================================");
    print!("{:>8}", "r\\w");
    for w in 0..6 {
        print!("{:>6}", w);
    }
    println!();
    for r in 1..6 {
        print!("{:>8}", r);
        for w in 0..6 {
            print!("{:>6}", core::cost(r, w));
        }
        println!();
    }

    println!();
    println!("==================================================================");
    println!(" E5/E6 — one-use bits from non-trivial types (paper §5.1–5.2)");
    println!("==================================================================");
    println!(
        "{:<16} {:>7} {:>7} {:>5} {:>6} {:>12}",
        "type", "|Q|", "obliv", "k", "|H1|+|H2|", "search µs"
    );
    for ty in witness_types() {
        let t0 = Instant::now();
        let w = find_witness(&ty)?.expect("non-trivial");
        let micros = t0.elapsed().as_micros();
        println!(
            "{:<16} {:>7} {:>7} {:>5} {:>6} {:>12}",
            ty.name(),
            ty.state_count(),
            ty.is_oblivious(),
            w.k(),
            w.total_len(),
            micros,
        );
        assert!(w.verify(&ty));
    }
    // Triviality deciders agree (Lemmas 2–4 cross-check) on the zoo.
    for ty in canonical::deterministic_zoo(2) {
        let trivial = triviality::is_trivial(&ty)?;
        let witness = find_witness(&ty)?.is_some();
        assert_eq!(trivial, !witness, "{}", ty.name());
    }
    println!("(cross-check: closure decider ≡ normal-form search on the whole zoo ✓)");

    println!();
    println!("==================================================================");
    println!(" E8 — Theorem 5 register elimination grid");
    println!("==================================================================");
    println!(
        "{:<16} {:<16} {:>5} {:>9} {:>9} {:>8} {:>8}",
        "protocol", "substrate", "bits", "D before", "D after", "correct", "objects"
    );
    for (plabel, build) in register_protocols() {
        for (slabel, source) in substrates() {
            let cert = core::check_theorem5(2, build, &source, &opts)?;
            let sample = build(&[true, false]);
            let elim = core::eliminate_registers(&sample, &cert.bounds.registers, &source)?;
            println!(
                "{:<16} {:<16} {:>5} {:>9} {:>9} {:>8} {:>8}",
                plabel,
                slabel,
                cert.one_use_bits,
                cert.before.d_max,
                cert.after.d_max,
                cert.holds(),
                elim.system.objects().len(),
            );
            assert!(cert.holds());
        }
    }

    // Ablation: paper-uniform sizing (r_b = w_b = D) vs exact bounds.
    {
        let build = |i: &[bool]| consensus::tas_consensus_system([i[0], i[1]]);
        let bounds = core::access_bounds(2, build, &opts)?;
        let cs = build(&[true, false]);
        let exact =
            core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::OneUseBits)?;
        let uniform = core::eliminate_registers(
            &cs,
            &bounds.paper_uniform(),
            &core::OneUseSource::OneUseBits,
        )?;
        println!(
            "ablation (tas+regs): exact bounds → {} bits; paper-uniform r=w=D → {} bits",
            exact.one_use_bits, uniform.one_use_bits
        );
    }
    // Scale: the 3-process CAS+announce protocol (6 registers).
    {
        let cert = core::check_theorem5(
            3,
            consensus::cas_announce_consensus_system,
            &core::OneUseSource::OneUseBits,
            &opts,
        )?;
        println!(
            "{:<16} {:<16} {:>5} {:>9} {:>9} {:>8} {:>8}",
            "cas+announce n=3",
            "T_1u",
            cert.one_use_bits,
            cert.before.d_max,
            cert.after.d_max,
            cert.holds(),
            "-",
        );
        assert!(cert.holds());
    }

    println!();
    println!("==================================================================");
    println!(" E7 — consensus protocols at runtime (paper §5.3 substrate)");
    println!("==================================================================");
    for _ in 0..1 {
        use wfc_consensus::Proposer;
        use wfc_runtime::run_threads;
        let decisions = run_threads(
            wfc_consensus::cas_consensus(4)
                .into_iter()
                .enumerate()
                .map(|(k, h)| move || h.propose(k as u64))
                .collect::<Vec<_>>(),
        );
        println!(
            "cas_consensus(4) live race: decisions {:?} (agreement ✓)",
            decisions
        );
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }
    println!("(latency series: cargo bench --bench e7_consensus)");

    println!();
    println!("==================================================================");
    println!(" E9 — hierarchy catalog (paper §2.3, §6)");
    println!("==================================================================");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}  {:>9} {:>8}",
        "type", "h_1", "h_1^r", "h_m", "h_m^r", "det?", "verified"
    );
    let rows = hierarchy::catalog();
    for row in &rows {
        let ok = hierarchy::verify_entry(row);
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6}  {:>9} {:>8}",
            row.ty.name(),
            row.value(hierarchy::Hierarchy::H1).to_string(),
            row.value(hierarchy::Hierarchy::H1R).to_string(),
            row.value(hierarchy::Hierarchy::HM).to_string(),
            row.value(hierarchy::Hierarchy::HMR).to_string(),
            row.ty.is_deterministic(),
            ok,
        );
        assert!(ok);
    }
    let violations = hierarchy::robustness::check_no_weak_to_strong(
        &rows,
        &hierarchy::robustness::implementation_facts(),
    );
    println!("robustness audit violations: {}", violations.len());
    assert!(violations.is_empty());

    println!();
    println!("==================================================================");
    println!(" E10 — valency analysis of consensus systems (FLP structure)");
    println!("==================================================================");
    println!(
        "{:<28} {:>8} {:>9} {:>9} {:>9} {:>6}",
        "system", "configs", "bivalent", "univalent", "critical", "cycle"
    );
    for (label, build) in register_protocols() {
        let cs = build(&[false, true]);
        let a = analyze_valency(&cs.system, &opts)?;
        println!(
            "{:<28} {:>8} {:>9} {:>9} {:>9} {:>6}",
            format!("{label} (0,1)"),
            a.configs,
            a.bivalent,
            a.univalent,
            a.critical,
            a.has_cycle,
        );
        assert!(a.initially_bivalent(), "mixed inputs race: bivalent start");
        assert!(a.critical >= 1, "a decision point exists");
    }

    // Crash tolerance (paper §1): every scenario of the TAS protocol,
    // before and after elimination.
    {
        use wfc_explorer::crash::check_crash_tolerance;
        let cs = consensus::tas_consensus_system([false, true]);
        let before = check_crash_tolerance(&cs.system, &[0, 1], &opts)?;
        let bounds =
            core::access_bounds(2, |i| consensus::tas_consensus_system([i[0], i[1]]), &opts)?;
        let elim =
            core::eliminate_registers(&cs, &bounds.registers, &core::OneUseSource::OneUseBits)?;
        let after = check_crash_tolerance(&elim.system, &[0, 1], &opts)?;
        println!(
            "crash tolerance (tas+regs 0,1): before {} scenarios / {} bad; after {} scenarios / {} bad",
            before.scenarios,
            before.stuck_scenarios + before.disagreements + before.invalid,
            after.scenarios,
            after.stuck_scenarios + after.disagreements + after.invalid,
        );
        assert!(before.holds() && after.holds());
    }

    // Sampling mode: the scaling strategy beyond exhaustive reach —
    // 4-process CAS+announce, 2 000 random schedules.
    {
        use wfc_explorer::simulate::sample_executions;
        let cs = consensus::cas_announce_consensus_system(&[false, true, true, false]);
        let stats = sample_executions(&cs.system, 2_000, 500, 20260705)?;
        println!(
            "sampling (cas+announce n=4, mixed inputs): {} runs, max depth {}, agreement {}, timeouts {}",
            stats.executions,
            stats.max_depth,
            stats.decisions_agree(),
            stats.timeouts,
        );
        assert!(stats.decisions_agree());
        assert_eq!(stats.timeouts, 0);
    }

    // The bounded exhaustive impossibility: no one-round register-only
    // protocol solves 2-process consensus.
    let outcome = hierarchy::impossibility::search_one_round_protocols(&opts)?;
    println!(
        "one-round register protocols: {} candidates, {} explorations, {} survivors \
         (classical impossibility, exhaustively verified on this family)",
        outcome.candidates,
        outcome.explorations,
        outcome.survivors.len(),
    );
    assert!(outcome.survivors.is_empty());

    print_bench_trajectory(&obs_reports_dir());

    println!();
    println!("all experiment tables regenerated and their invariants re-checked");
    Ok(())
}
