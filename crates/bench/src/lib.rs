//! # `wfc-bench` — benchmark and report harness
//!
//! One Criterion bench per experiment (E1–E10, see DESIGN.md §3), plus
//! the `wfc-report` binary that regenerates every experiment table
//! recorded in EXPERIMENTS.md.
//!
//! This library holds the shared fixtures so that the benches and the
//! report agree on what is measured, and the in-repo [`harness`] the
//! benches run on (the workspace builds offline, so criterion itself is
//! not available).

#![warn(missing_docs)]

pub mod harness;

use std::sync::Arc;

use wfc_consensus::ConsensusSystem;
use wfc_core::{OneUseRecipe, OneUseSource};
use wfc_spec::{canonical, FiniteType};

/// A labelled per-input-vector protocol builder.
pub type LabelledProtocol = (&'static str, fn(&[bool]) -> ConsensusSystem);

/// The register-using consensus protocols of experiment E8, as
/// `(label, builder)` pairs.
pub fn register_protocols() -> Vec<LabelledProtocol> {
    fn tas(i: &[bool]) -> ConsensusSystem {
        wfc_consensus::tas_consensus_system([i[0], i[1]])
    }
    fn queue(i: &[bool]) -> ConsensusSystem {
        wfc_consensus::queue_consensus_system([i[0], i[1]])
    }
    fn fadd(i: &[bool]) -> ConsensusSystem {
        wfc_consensus::fetch_add_consensus_system([i[0], i[1]])
    }
    fn stack(i: &[bool]) -> ConsensusSystem {
        wfc_consensus::stack_consensus_system([i[0], i[1]])
    }
    fn swap(i: &[bool]) -> ConsensusSystem {
        wfc_consensus::swap_consensus_system([i[0], i[1]])
    }
    vec![
        ("tas+regs", tas),
        ("queue+regs", queue),
        ("fetch_add+regs", fadd),
        ("stack+regs", stack),
        ("swap+regs", swap),
    ]
}

/// The one-use-bit substrates of experiment E8, as `(label, source)`.
pub fn substrates() -> Vec<(String, OneUseSource)> {
    let mut out = vec![("T_1u".to_owned(), OneUseSource::OneUseBits)];
    for ty in [
        canonical::test_and_set(2),
        canonical::queue(1, 1, 2),
        canonical::fetch_and_add(2, 2),
        canonical::boolean_register(2),
    ] {
        let ty = Arc::new(ty);
        let recipe = OneUseRecipe::from_type(&ty).expect("zoo types are non-trivial");
        out.push((ty.name().to_owned(), OneUseSource::Recipe(recipe)));
    }
    out
}

/// The non-trivial deterministic types whose witnesses E5/E6 measure.
pub fn witness_types() -> Vec<Arc<FiniteType>> {
    let mut tys: Vec<Arc<FiniteType>> = canonical::deterministic_zoo(2)
        .into_iter()
        .filter(|t| !matches!(t.name(), "mute" | "constant_responder"))
        .map(Arc::new)
        .collect();
    for m in [1, 2, 4, 8, 16] {
        tys.push(Arc::new(canonical::marked_ring(m)));
    }
    tys
}
