//! Deriving one-use bits from other types (paper, Section 5).
//!
//! Three derivations, one per subsection:
//!
//! * [`OneUseRecipe::from_oblivious`] — Section 5.1: any non-trivial
//!   *oblivious* deterministic type yields a one-use bit from the
//!   single-step witness `(q, i', i)`.
//! * [`OneUseRecipe::from_type`] — Section 5.2: any non-trivial
//!   deterministic type (oblivious or not) yields a one-use bit from a
//!   minimal non-trivial pair in Lemma-4 normal form.
//! * [`one_use_from_consensus`] — Section 5.3: any type with
//!   `h_m(T) ≥ 2` yields a one-use bit from a 2-process consensus object
//!   (reader proposes 0 = "read precedes write", writer proposes 1).
//!
//! A [`OneUseRecipe`] is *data*: the object type, its initial state, the
//! reader/writer ports and invocation sequences, and the "unwritten"
//! response to compare against. The same recipe drives both the runtime
//! instantiation ([`OneUseRecipe::instantiate`]) and the program inlining
//! performed by the Theorem 5 compiler in [`crate::transform`].

use std::sync::Arc;

use wfc_runtime::{Nondeterminism, PortHandle, SpecObject};
use wfc_spec::triviality::oblivious_witness;
use wfc_spec::witness::find_witness;
use wfc_spec::{FiniteType, InvId, PortId, RespId, StateId};

use crate::error::DeriveError;
use crate::one_use::{OneUseRead, OneUseWrite};

/// A recipe for implementing a one-use bit from one object of a
/// non-trivial deterministic type (Sections 5.1–5.2).
#[derive(Clone, Debug)]
pub struct OneUseRecipe {
    ty: Arc<FiniteType>,
    init: StateId,
    reader_port: PortId,
    writer_port: PortId,
    reader_seq: Vec<InvId>,
    writer_inv: InvId,
    unwritten_last: RespId,
}

impl OneUseRecipe {
    /// Derives a recipe from a non-trivial oblivious deterministic type
    /// (Section 5.1): find states `q →^{i'} p` distinguished by a probe
    /// `i`; the writer performs `i'`, the reader performs `i` and compares
    /// against `r_q`.
    ///
    /// # Errors
    ///
    /// [`DeriveError::Trivial`] if the type is trivial;
    /// [`DeriveError::Analysis`] if it is nondeterministic, non-oblivious,
    /// or has fewer than two ports.
    pub fn from_oblivious(ty: &Arc<FiniteType>) -> Result<OneUseRecipe, DeriveError> {
        if ty.ports() < 2 {
            return Err(DeriveError::Analysis(
                wfc_spec::AnalysisError::NeedsTwoPorts {
                    type_name: ty.name().to_owned(),
                },
            ));
        }
        let w = oblivious_witness(ty)?.ok_or_else(|| DeriveError::Trivial {
            type_name: ty.name().to_owned(),
        })?;
        Ok(OneUseRecipe {
            ty: Arc::clone(ty),
            init: w.unset,
            reader_port: PortId::new(0),
            writer_port: PortId::new(1),
            reader_seq: vec![w.probe_inv],
            writer_inv: w.step_inv,
            unwritten_last: w.resp_unset,
        })
    }

    /// Derives a recipe from any non-trivial deterministic type
    /// (Section 5.2): find a minimal non-trivial pair `(H₁, H₂)`; the
    /// writer performs `i_w`, the reader performs `ī` and compares the
    /// last response against `H₁`'s return value.
    ///
    /// # Errors
    ///
    /// [`DeriveError::Trivial`] if the type is trivial;
    /// [`DeriveError::Analysis`] if it is nondeterministic or has fewer
    /// than two ports.
    pub fn from_type(ty: &Arc<FiniteType>) -> Result<OneUseRecipe, DeriveError> {
        let w = find_witness(ty)?.ok_or_else(|| DeriveError::Trivial {
            type_name: ty.name().to_owned(),
        })?;
        debug_assert!(w.verify(ty));
        Ok(OneUseRecipe {
            ty: Arc::clone(ty),
            init: w.start,
            reader_port: w.reader_port,
            writer_port: w.writer_port,
            reader_seq: w.reader_seq.clone(),
            writer_inv: w.writer_inv,
            unwritten_last: w.unwritten_return(),
        })
    }

    /// The object type the recipe uses.
    pub fn ty(&self) -> &Arc<FiniteType> {
        &self.ty
    }

    /// The object's required initial state (the paper's `q`).
    pub fn init(&self) -> StateId {
        self.init
    }

    /// The port the reading process must hold.
    pub fn reader_port(&self) -> PortId {
        self.reader_port
    }

    /// The port the writing process must hold.
    pub fn writer_port(&self) -> PortId {
        self.writer_port
    }

    /// The reader's invocation sequence `ī` (length `k ≥ 1`).
    pub fn reader_seq(&self) -> &[InvId] {
        &self.reader_seq
    }

    /// The writer's single invocation `i_w`.
    pub fn writer_inv(&self) -> InvId {
        self.writer_inv
    }

    /// `H₁`'s return value: if the reader's last response equals this, the
    /// bit reads 0; any other response means the writer has written.
    pub fn unwritten_last(&self) -> RespId {
        self.unwritten_last
    }

    /// The number of `T`-object accesses a read costs.
    pub fn read_cost(&self) -> usize {
        self.reader_seq.len()
    }

    /// Instantiates the recipe over a fresh runtime object, returning the
    /// one-use bit's two capabilities.
    pub fn instantiate(&self) -> (RecipeOneUseWriter, RecipeOneUseReader) {
        let object = SpecObject::new(Arc::clone(&self.ty), self.init, Nondeterminism::First);
        let mut handles: Vec<Option<PortHandle>> = object.ports().into_iter().map(Some).collect();
        let reader_handle = handles[self.reader_port.index()]
            .take()
            .expect("distinct ports");
        let writer_handle = handles[self.writer_port.index()]
            .take()
            .expect("distinct ports");
        (
            RecipeOneUseWriter {
                handle: writer_handle,
                inv: self.writer_inv,
            },
            RecipeOneUseReader {
                handle: reader_handle,
                seq: self.reader_seq.clone(),
                unwritten_last: self.unwritten_last,
            },
        )
    }
}

/// Write capability of a recipe-derived one-use bit: performs `i_w` once.
#[derive(Debug)]
pub struct RecipeOneUseWriter {
    handle: PortHandle,
    inv: InvId,
}

impl OneUseWrite for RecipeOneUseWriter {
    fn write(self) {
        let _ = self.handle.invoke(self.inv);
    }
}

/// Read capability of a recipe-derived one-use bit: performs `ī` once and
/// compares the final response against `H₁`'s return value.
#[derive(Debug)]
pub struct RecipeOneUseReader {
    handle: PortHandle,
    seq: Vec<InvId>,
    unwritten_last: RespId,
}

impl OneUseRead for RecipeOneUseReader {
    fn read(self) -> bool {
        let mut last = None;
        for &inv in &self.seq {
            last = Some(self.handle.invoke(inv));
        }
        // The paper: a response that is neither H₁'s nor H₂'s still means
        // the writer has written, so anything ≠ H₁'s return value reads 1.
        last.expect("reader sequence is non-empty") != self.unwritten_last
    }
}

/// A one-use bit from any 2-process consensus object (Section 5.3): the
/// reader proposes 0 ("read precedes write"), the writer proposes 1
/// ("write precedes read"); the consensus value is the bit.
///
/// Works for *any* type with `h_m(T) ≥ 2`, including nondeterministic
/// ones — pass handles of a consensus object implemented from `T`.
pub fn one_use_from_consensus<P: wfc_consensus::Proposer>(
    pair: [P; 2],
) -> (ConsensusOneUseWriter<P>, ConsensusOneUseReader<P>) {
    let [reader_end, writer_end] = pair;
    (
        ConsensusOneUseWriter { end: writer_end },
        ConsensusOneUseReader { end: reader_end },
    )
}

/// Write capability of a consensus-derived one-use bit.
#[derive(Debug)]
pub struct ConsensusOneUseWriter<P> {
    end: P,
}

impl<P: wfc_consensus::Proposer> OneUseWrite for ConsensusOneUseWriter<P> {
    fn write(self) {
        let _ = self.end.propose(1);
    }
}

/// Read capability of a consensus-derived one-use bit.
#[derive(Debug)]
pub struct ConsensusOneUseReader<P> {
    end: P,
}

impl<P: wfc_consensus::Proposer> OneUseRead for ConsensusOneUseReader<P> {
    fn read(self) -> bool {
        self.end.propose(0) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_spec::canonical;

    #[test]
    fn register_recipe_round_trips() {
        let ty = Arc::new(canonical::boolean_register(2));
        let recipe = OneUseRecipe::from_type(&ty).unwrap();
        // Unwritten bit reads 0.
        let (_w, r) = recipe.instantiate();
        assert!(!r.read());
        // Written bit reads 1.
        let (w, r) = recipe.instantiate();
        w.write();
        assert!(r.read());
    }

    #[test]
    fn every_non_trivial_zoo_type_yields_a_working_bit() {
        for ty in canonical::deterministic_zoo(2) {
            if matches!(ty.name(), "mute" | "constant_responder") {
                continue;
            }
            let ty = Arc::new(ty);
            for recipe in [
                OneUseRecipe::from_type(&ty).unwrap(),
                OneUseRecipe::from_oblivious(&ty).unwrap(),
            ] {
                let (_w, r) = recipe.instantiate();
                assert!(!r.read(), "{}: unwritten reads 0", ty.name());
                let (w, r) = recipe.instantiate();
                w.write();
                assert!(r.read(), "{}: written reads 1", ty.name());
            }
        }
    }

    #[test]
    fn trivial_types_are_rejected() {
        let mute = Arc::new(canonical::mute(2));
        assert!(matches!(
            OneUseRecipe::from_type(&mute),
            Err(DeriveError::Trivial { .. })
        ));
        assert!(matches!(
            OneUseRecipe::from_oblivious(&mute),
            Err(DeriveError::Trivial { .. })
        ));
    }

    #[test]
    fn nondeterministic_types_are_rejected_by_witness_derivations() {
        let oub = Arc::new(canonical::one_use_bit());
        assert!(matches!(
            OneUseRecipe::from_type(&oub),
            Err(DeriveError::Analysis(_))
        ));
    }

    #[test]
    fn consensus_derivation_reads_what_happened() {
        // Sequential write-then-read: bit is 1.
        let (w, r) = one_use_from_consensus(wfc_consensus::tas_consensus_2());
        w.write();
        assert!(r.read());
        // Sequential read without write: bit is 0.
        let (_w, r) = one_use_from_consensus(wfc_consensus::tas_consensus_2());
        assert!(!r.read());
        // Works from any 2-consensus: queue and fetch-add too.
        let (w, r) = one_use_from_consensus(wfc_consensus::queue_consensus_2());
        w.write();
        assert!(r.read());
        let (_w, r) = one_use_from_consensus(wfc_consensus::fetch_add_consensus_2());
        assert!(!r.read());
    }

    #[test]
    fn consensus_derivation_is_race_safe() {
        use wfc_runtime::run_threads;
        for _ in 0..100 {
            let (w, r) = one_use_from_consensus(wfc_consensus::tas_consensus_2());
            let results = run_threads(vec![
                Box::new(move || {
                    w.write();
                    false
                }) as Box<dyn FnOnce() -> bool + Send>,
                Box::new(move || r.read()),
            ]);
            // Any boolean outcome is linearizable for overlapping ops;
            // the point is agreement inside the consensus object held.
            let _ = results;
        }
    }

    #[test]
    fn recipe_reports_costs() {
        let ty = Arc::new(canonical::test_and_set(2));
        let recipe = OneUseRecipe::from_type(&ty).unwrap();
        assert_eq!(recipe.read_cost(), 1);
        assert_eq!(recipe.reader_seq().len(), 1);
        assert_eq!(recipe.ty().name(), "test_and_set");
    }
}
