//! A bounded-use SRSW bit from one-use bits (paper, Section 4.3).
//!
//! The paper's central construction: a single-reader single-writer bit
//! `b`, initialised to `v`, read at most `r_b` times and written at most
//! `w_b` times (counting only value-*changing* writes), is implemented
//! from `r_b · (w_b + 1)` one-use bits arranged as a `(w_b + 1) × r_b`
//! array:
//!
//! * each **write** flips every bit of the next row;
//! * each **read** walks down a fresh **column**, counting fully-flipped
//!   rows; the parity of that count against the initial value is the
//!   bit's value.
//!
//! Using a fresh column per read guarantees no one-use bit is read twice;
//! each row is flipped at most once. The extra `(w_b + 1)`-th row is never
//! written — it only lets the reader's walk terminate uniformly (the
//! paper makes the same remark).
//!
//! [`cost`] is the exact object count `r_b · (w_b + 1)`, the quantity
//! experiment E4 measures against the paper's formula.

use crate::error::BoundedBitError;
use crate::one_use::{
    atomic_one_use_bit, AtomicOneUseReader, AtomicOneUseWriter, OneUseRead, OneUseWrite,
};

/// The number of one-use bits consumed by the construction:
/// `reads · (writes + 1)` (paper, Section 4.3).
pub const fn cost(reads: usize, writes: usize) -> usize {
    reads * (writes + 1)
}

/// Builds a bounded SRSW bit over one-use bits supplied by `alloc`,
/// returning the writer and reader ends.
///
/// `init` is the bit's initial value; the budgets are `reads` (`r_b`) and
/// `writes` (`w_b`, value-changing writes only).
pub fn bounded_bit_with<W, R>(
    init: bool,
    reads: usize,
    writes: usize,
    mut alloc: impl FnMut() -> (W, R),
) -> (BoundedBitWriter<W>, BoundedBitReader<R>)
where
    W: OneUseWrite,
    R: OneUseRead,
{
    // bits[i][j]: row i (0 ..= writes), column j (0 .. reads).
    let mut write_rows = Vec::with_capacity(writes + 1);
    let mut read_rows = Vec::with_capacity(writes + 1);
    for _ in 0..=writes {
        let (ws, rs): (Vec<W>, Vec<R>) = (0..reads).map(|_| alloc()).unzip();
        write_rows.push(ws.into_iter().map(Some).collect());
        read_rows.push(rs.into_iter().map(Some).collect());
    }
    (
        BoundedBitWriter {
            rows: write_rows,
            i_w: 0,
            current: init,
            budget: writes,
        },
        BoundedBitReader {
            rows: read_rows,
            i_r: 0,
            j_r: 0,
            init,
            budget: reads,
        },
    )
}

/// Builds a bounded SRSW bit over [`atomic_one_use_bit`]s.
///
/// # Examples
///
/// ```
/// use wfc_core::bounded_bit;
///
/// let (mut w, mut r) = bounded_bit(false, 3, 2);
/// assert_eq!(r.read()?, false);
/// w.write(true)?;
/// assert_eq!(r.read()?, true);
/// w.write(false)?;
/// assert_eq!(r.read()?, false);
/// # Ok::<(), wfc_core::BoundedBitError>(())
/// ```
pub fn bounded_bit(
    init: bool,
    reads: usize,
    writes: usize,
) -> (
    BoundedBitWriter<AtomicOneUseWriter>,
    BoundedBitReader<AtomicOneUseReader>,
) {
    bounded_bit_with(init, reads, writes, atomic_one_use_bit)
}

/// Writer end of a bounded bit: flips one row per value-changing write.
#[derive(Debug)]
pub struct BoundedBitWriter<W> {
    rows: Vec<Vec<Option<W>>>,
    i_w: usize,
    current: bool,
    budget: usize,
}

impl<W: OneUseWrite> BoundedBitWriter<W> {
    /// Writes `v`. Writing the bit's current value is a no-op and does not
    /// consume write budget (the paper assumes the writer "only writes
    /// when its value is being changed"; we enforce the assumption).
    ///
    /// # Errors
    ///
    /// Returns [`BoundedBitError::WriteBudgetExhausted`] when more than
    /// `w_b` value-changing writes are attempted.
    pub fn write(&mut self, v: bool) -> Result<(), BoundedBitError> {
        if v == self.current {
            return Ok(());
        }
        if self.i_w >= self.budget {
            return Err(BoundedBitError::WriteBudgetExhausted {
                budget: self.budget,
            });
        }
        for cell in &mut self.rows[self.i_w] {
            cell.take().expect("row flipped at most once").write();
        }
        self.i_w += 1;
        self.current = v;
        Ok(())
    }

    /// The number of value-changing writes performed so far.
    pub fn writes_used(&self) -> usize {
        self.i_w
    }
}

/// Reader end of a bounded bit: walks a fresh column per read.
#[derive(Debug)]
pub struct BoundedBitReader<R> {
    rows: Vec<Vec<Option<R>>>,
    i_r: usize,
    j_r: usize,
    init: bool,
    budget: usize,
}

impl<R: OneUseRead> BoundedBitReader<R> {
    /// Reads the bit.
    ///
    /// # Errors
    ///
    /// Returns [`BoundedBitError::ReadBudgetExhausted`] when more than
    /// `r_b` reads are attempted.
    pub fn read(&mut self) -> Result<bool, BoundedBitError> {
        if self.j_r >= self.budget {
            return Err(BoundedBitError::ReadBudgetExhausted {
                budget: self.budget,
            });
        }
        // Walk down column j_r: count fully flipped rows. The final row
        // (index = writes budget) is never written, so the walk stops.
        while self.rows[self.i_r][self.j_r]
            .take()
            .expect("each one-use bit read at most once")
            .read()
        {
            self.i_r += 1;
        }
        self.j_r += 1;
        // i_r rows have been completely flipped: the value changed i_r
        // times from `init`.
        Ok(self.init ^ (self.i_r % 2 == 1))
    }

    /// The number of reads performed so far.
    pub fn reads_used(&self) -> usize {
        self.j_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_the_paper_formula() {
        assert_eq!(cost(1, 1), 2);
        assert_eq!(cost(3, 2), 9);
        assert_eq!(cost(10, 0), 10);
    }

    #[test]
    fn sequential_alternation_tracks_writes() {
        let (mut w, mut r) = bounded_bit(true, 5, 4);
        assert!(r.read().unwrap());
        w.write(false).unwrap();
        assert!(!r.read().unwrap());
        w.write(true).unwrap();
        w.write(false).unwrap();
        assert!(!r.read().unwrap());
        w.write(true).unwrap();
        assert!(r.read().unwrap());
        assert_eq!(w.writes_used(), 4);
        assert_eq!(r.reads_used(), 4);
    }

    #[test]
    fn same_value_writes_are_free() {
        let (mut w, mut r) = bounded_bit(false, 2, 1);
        w.write(false).unwrap();
        w.write(false).unwrap();
        assert_eq!(w.writes_used(), 0);
        w.write(true).unwrap();
        assert!(r.read().unwrap());
    }

    #[test]
    fn read_budget_is_enforced() {
        let (_w, mut r) = bounded_bit(false, 1, 1);
        let _ = r.read().unwrap();
        assert_eq!(
            r.read().unwrap_err(),
            BoundedBitError::ReadBudgetExhausted { budget: 1 }
        );
    }

    #[test]
    fn write_budget_is_enforced() {
        let (mut w, _r) = bounded_bit(false, 1, 1);
        w.write(true).unwrap();
        assert_eq!(
            w.write(false).unwrap_err(),
            BoundedBitError::WriteBudgetExhausted { budget: 1 }
        );
    }

    #[test]
    fn multiple_reads_between_writes_are_consistent() {
        let (mut w, mut r) = bounded_bit(false, 6, 2);
        assert!(!r.read().unwrap());
        assert!(!r.read().unwrap());
        w.write(true).unwrap();
        assert!(r.read().unwrap());
        assert!(r.read().unwrap());
        w.write(false).unwrap();
        assert!(!r.read().unwrap());
        assert!(!r.read().unwrap());
    }

    /// Differential test against a reference bit over random schedules of
    /// a *sequential* interleaving (reads and writes alternating in all
    /// orders): the construction must agree with a plain bool whenever
    /// operations do not overlap.
    #[test]
    fn differential_against_reference_bit() {
        // Enumerate all interleavings of 3 writes (toggle) and 4 reads as
        // bitmasks: bit k = 1 means step k is a write.
        for mask in 0u32..(1 << 7) {
            let writes = (0..7).filter(|k| mask & (1 << k) != 0).count();
            let reads = 7 - writes;
            if writes > 3 || reads > 4 {
                continue;
            }
            let (mut w, mut r) = bounded_bit(false, 4.max(reads), 3.max(writes));
            let mut reference = false;
            for k in 0..7 {
                if mask & (1 << k) != 0 {
                    reference = !reference;
                    w.write(reference).unwrap();
                } else {
                    assert_eq!(r.read().unwrap(), reference, "mask {mask:#b} step {k}");
                }
            }
        }
    }

    /// Concurrent stress: one writer, one reader, overlapping; the
    /// recorded history must linearize against the boolean register type.
    #[test]
    fn concurrent_history_linearizes() {
        use wfc_explorer::linearizability::is_linearizable;
        use wfc_runtime::{run_threads, EventLog};
        use wfc_spec::{canonical, PortId};

        let ty = canonical::boolean_register(2);
        let v0 = ty.state_id("v0").unwrap();
        let read_inv = ty.invocation_id("read").unwrap();
        let ok = ty.response_id("ok").unwrap();
        for _ in 0..50 {
            let (mut w, mut r) = bounded_bit(false, 8, 8);
            let log = EventLog::new();
            run_threads(vec![
                Box::new(|| {
                    for k in 0..8 {
                        let v = k % 2 == 0;
                        let inv = ty
                            .invocation_id(if v { "write1" } else { "write0" })
                            .unwrap();
                        let t0 = log.stamp();
                        w.write(v).unwrap();
                        let t1 = log.stamp();
                        log.record(PortId::new(0), inv, ok, t0, t1);
                    }
                }) as Box<dyn FnOnce() + Send>,
                Box::new(|| {
                    for _ in 0..8 {
                        let t0 = log.stamp();
                        let v = r.read().unwrap();
                        let t1 = log.stamp();
                        let resp = ty.response_id(if v { "1" } else { "0" }).unwrap();
                        log.record(PortId::new(1), read_inv, resp, t0, t1);
                    }
                }),
            ]);
            let h = log.take_history();
            assert!(is_linearizable(&ty, v0, &h), "history: {h:?}");
        }
    }
}
