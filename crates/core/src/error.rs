//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// An error from the bounded-bit construction (Section 4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundedBitError {
    /// The reader exceeded its declared read budget `r_b`.
    ReadBudgetExhausted {
        /// The declared budget.
        budget: usize,
    },
    /// The writer exceeded its declared write budget `w_b` (counting only
    /// value-changing writes, per the paper's convention).
    WriteBudgetExhausted {
        /// The declared budget.
        budget: usize,
    },
}

impl fmt::Display for BoundedBitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundedBitError::ReadBudgetExhausted { budget } => {
                write!(f, "read budget r_b = {budget} exhausted")
            }
            BoundedBitError::WriteBudgetExhausted { budget } => {
                write!(f, "write budget w_b = {budget} exhausted")
            }
        }
    }
}

impl Error for BoundedBitError {}

/// An error from deriving a one-use bit out of a type (Section 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeriveError {
    /// The type is trivial: no information can be extracted from it, so
    /// no one-use bit exists. The paper shows such types have
    /// `h_m^r = h_m = 1` (Theorem 5, first case).
    Trivial {
        /// Name of the trivial type.
        type_name: String,
    },
    /// The underlying spec analysis failed (nondeterministic type,
    /// too few ports, …).
    Analysis(wfc_spec::AnalysisError),
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::Trivial { type_name } => {
                write!(
                    f,
                    "type `{type_name}` is trivial; no one-use bit can be derived"
                )
            }
            DeriveError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DeriveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeriveError::Analysis(e) => Some(e),
            DeriveError::Trivial { .. } => None,
        }
    }
}

impl From<wfc_spec::AnalysisError> for DeriveError {
    fn from(e: wfc_spec::AnalysisError) -> Self {
        DeriveError::Analysis(e)
    }
}

/// An error from the register-elimination compiler (Theorem 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// A program addresses objects through a computed operand; the
    /// compiler requires constant object indices to re-map them.
    DynamicObjectIndex {
        /// The offending process.
        process: usize,
        /// The offending instruction index.
        at: usize,
    },
    /// A process other than the annotated reader/writer accesses a
    /// register, violating the SRSW discipline the compiler assumes.
    NotSrsw {
        /// The register's object index.
        obj: usize,
        /// The offending process.
        process: usize,
    },
    /// The annotated writer reads (or the reader writes) the register.
    WrongRole {
        /// The register's object index.
        obj: usize,
        /// The offending process.
        process: usize,
        /// The invocation it performed.
        inv: String,
    },
    /// Access-bound analysis failed (e.g. the input is not wait-free).
    Explore(wfc_explorer::ExplorerError),
    /// One-use bits could not be derived from the target type.
    Derive(DeriveError),
    /// A rewritten program failed to assemble.
    Program(wfc_explorer::ProgramError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::DynamicObjectIndex { process, at } => write!(
                f,
                "process {process}, instruction {at}: computed object index not supported"
            ),
            TransformError::NotSrsw { obj, process } => write!(
                f,
                "register object {obj} accessed by process {process}, violating SRSW annotation"
            ),
            TransformError::WrongRole { obj, process, inv } => write!(
                f,
                "process {process} performed `{inv}` on register {obj} against its annotated role"
            ),
            TransformError::Explore(e) => write!(f, "{e}"),
            TransformError::Derive(e) => write!(f, "{e}"),
            TransformError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Explore(e) => Some(e),
            TransformError::Derive(e) => Some(e),
            TransformError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wfc_explorer::ExplorerError> for TransformError {
    fn from(e: wfc_explorer::ExplorerError) -> Self {
        TransformError::Explore(e)
    }
}

impl From<DeriveError> for TransformError {
    fn from(e: DeriveError) -> Self {
        TransformError::Derive(e)
    }
}

impl From<wfc_explorer::ProgramError> for TransformError {
    fn from(e: wfc_explorer::ProgramError) -> Self {
        TransformError::Program(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_std_errors_with_sources() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BoundedBitError>();
        assert_err::<DeriveError>();
        assert_err::<TransformError>();
        let e = TransformError::Derive(DeriveError::Trivial {
            type_name: "mute".into(),
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mute"));
    }
}
