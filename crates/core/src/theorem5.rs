//! Theorem 5, end to end: `h_m(T) = h_m^r(T)` for deterministic types.
//!
//! The paper's proof is a case analysis; this module makes each case
//! executable for concrete types and protocols:
//!
//! 1. **`T` deterministic and trivial** — objects of `T` are locally
//!    simulable, so registers+`T` is no stronger than registers alone,
//!    and registers cannot solve 2-process consensus \[4,7,14\]:
//!    `h_m^r(T) = 1 = h_m(T)`. [`classify_deterministic`] detects this
//!    case.
//! 2. **`T` deterministic and non-trivial** — run the register
//!    eliminator with one-use bits implemented from `T`
//!    ([`OneUseSource::Recipe`]); re-verify the output. This is
//!    [`check_theorem5`].
//! 3. **`h_m(T) ≥ 2`** — one-use bits come from a 2-process consensus
//!    object implemented from `T` (Section 5.3); realised at runtime by
//!    [`crate::one_use_from_consensus`], which works even for
//!    nondeterministic `T`.
//!
//! A [`Theorem5Certificate`] packages the evidence: the access bounds
//! that sized the arrays, the bit count, and the model-checking verdicts
//! before and after elimination.

use std::sync::Arc;

use wfc_consensus::{binary_input_vectors, ConsensusSystem, ProtocolVerdict};
use wfc_explorer::{explore, ExploreOptions};
use wfc_spec::triviality::is_trivial;
use wfc_spec::FiniteType;

use crate::access_bounds::{access_bounds, AccessBounds};
use crate::error::{DeriveError, TransformError};
use crate::recipe::OneUseRecipe;
use crate::transform::{eliminate_registers, OneUseSource};

/// The case of Theorem 5's proof that applies to a deterministic type.
#[derive(Clone, Debug)]
pub enum Theorem5Classification {
    /// Case 1: the type is trivial; `h_m^r(T) = h_m(T) = 1`.
    Trivial,
    /// Case 2: the type is non-trivial; the recipe implements one-use
    /// bits from it, so registers can be eliminated.
    NonTrivial(OneUseRecipe),
}

/// Classifies a deterministic type into Theorem 5's first two cases.
///
/// # Errors
///
/// Returns [`DeriveError::Analysis`] for nondeterministic types (those
/// are Theorem 5's third case, `h_m(T) ≥ 2`, which needs a consensus
/// implementation rather than a witness — see
/// [`crate::one_use_from_consensus`]).
pub fn classify_deterministic(ty: &Arc<FiniteType>) -> Result<Theorem5Classification, DeriveError> {
    if is_trivial(ty)? {
        return Ok(Theorem5Classification::Trivial);
    }
    Ok(Theorem5Classification::NonTrivial(OneUseRecipe::from_type(
        ty,
    )?))
}

/// The evidence produced by [`check_theorem5`].
#[derive(Clone, Debug)]
pub struct Theorem5Certificate {
    /// Section 4.2 access bounds of the input implementation.
    pub bounds: AccessBounds,
    /// One-use bits allocated by the Section 4.3 replacement.
    pub one_use_bits: usize,
    /// Model-checking verdict of the original (register-using) system.
    pub before: ProtocolVerdict,
    /// Model-checking verdict of the register-free system.
    pub after: ProtocolVerdict,
}

impl Theorem5Certificate {
    /// `true` when both systems are correct wait-free consensus — i.e.
    /// the elimination preserved correctness, witnessing
    /// `h_m^r ≤ h_m` for this implementation.
    pub fn holds(&self) -> bool {
        self.before.holds() && self.after.holds()
    }
}

/// Runs the full Theorem 5 pipeline on a consensus protocol builder:
/// access bounds (Section 4.2) → register elimination (Sections 4.3 + 5)
/// → re-verification over all `2^n` input vectors.
///
/// # Errors
///
/// Propagates analysis, transformation and exploration failures.
pub fn check_theorem5(
    n: usize,
    build: impl Fn(&[bool]) -> ConsensusSystem + Sync,
    source: &OneUseSource,
    opts: &ExploreOptions,
) -> Result<Theorem5Certificate, TransformError> {
    let _span = wfc_obs::span::enter_lazy(opts.obs.spans, "check_theorem5", || format!("n={n}"));
    if opts.obs.metrics {
        wfc_obs::metrics::Registry::global()
            .counter("core.theorem5.checks")
            .add(1);
    }
    let bounds = access_bounds(n, &build, opts)?;
    let before = wfc_consensus::verify_consensus_protocol(n, &build, opts)?;

    let vectors = binary_input_vectors(n);
    let threads = opts.effective_threads();
    // With several vectors in flight, explore each eliminated system
    // single-threaded — the outer fan-out already fills the pool.
    let inner = if threads > 1 {
        opts.with_threads(1)
    } else {
        *opts
    };
    type TreeResult = Result<(usize, usize, bool, bool, usize), TransformError>;
    let per_tree = wfc_explorer::pool::parallel_map(threads, &vectors, |inputs| -> TreeResult {
        let _span = wfc_obs::span::enter_if(
            opts.obs.spans,
            "theorem5.eliminate_and_reverify",
            String::new(),
        );
        let cs = build(inputs);
        let eliminated = eliminate_registers(&cs, &bounds.registers, source)?;
        // Structural register-freedom: every annotated register was
        // removed, and only the survivors plus the freshly allocated bit
        // substrate objects remain. (The substrate *type* may itself be
        // a register type — using registers as a generic `T` exercises
        // the machinery — but the protocol's register *objects* are gone.)
        debug_assert_eq!(
            eliminated.system.objects().len(),
            cs.system.objects().len() - cs.registers.len() + eliminated.one_use_bits,
            "output must contain exactly the survivors plus the bit objects"
        );
        let e = explore(&eliminated.system, &inner)?;
        let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
        Ok((
            e.depth,
            e.configs,
            e.decisions_agree(),
            e.decisions_within(&allowed),
            eliminated.one_use_bits,
        ))
    });

    // Merge in lexicographic input order; the bit count comes from the
    // first vector (the compiler sizes arrays from `bounds`, which are
    // shared, so every vector allocates the same number).
    let mut depth_per_tree = Vec::new();
    let mut total_configs = 0;
    let mut agreement = true;
    let mut validity = true;
    let mut one_use_bits = 0;
    for (k, tree) in per_tree.into_iter().enumerate() {
        let (depth, configs, agrees, valid, bits) = tree?;
        depth_per_tree.push(depth);
        total_configs += configs;
        agreement &= agrees;
        validity &= valid;
        if k == 0 {
            one_use_bits = bits;
        } else {
            debug_assert_eq!(one_use_bits, bits, "bit allocation is input-independent");
        }
    }
    let after = ProtocolVerdict {
        d_max: depth_per_tree.iter().copied().max().unwrap_or(0),
        depth_per_tree,
        total_configs,
        agreement,
        validity,
    };
    Ok(Theorem5Certificate {
        bounds,
        one_use_bits,
        before,
        after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_consensus::{fetch_add_consensus_system, queue_consensus_system, tas_consensus_system};
    use wfc_spec::canonical;

    #[test]
    fn classification_covers_the_zoo() {
        for ty in canonical::deterministic_zoo(2) {
            let expected_trivial = matches!(ty.name(), "mute" | "constant_responder");
            match classify_deterministic(&Arc::new(ty)).unwrap() {
                Theorem5Classification::Trivial => assert!(expected_trivial),
                Theorem5Classification::NonTrivial(_) => assert!(!expected_trivial),
            }
        }
    }

    #[test]
    fn nondeterministic_types_are_deferred_to_case_three() {
        let oub = Arc::new(canonical::one_use_bit());
        assert!(classify_deterministic(&oub).is_err());
    }

    /// Section 4.3 in isolation: replace the TAS protocol's registers
    /// with native one-use bits; the protocol must remain correct.
    #[test]
    fn tas_protocol_survives_one_use_bit_replacement() {
        let cert = check_theorem5(
            2,
            |i| tas_consensus_system([i[0], i[1]]),
            &OneUseSource::OneUseBits,
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{cert:?}");
        // Each announce register: r_b = w_b = 1 → 1·(1+1) = 2 bits; two
        // registers → 4 bits (the paper's r·(w+1) formula).
        assert_eq!(cert.one_use_bits, 4);
        assert!(
            cert.after.d_max > cert.before.d_max,
            "inlined subroutines lengthen executions"
        );
    }

    /// The full Theorem 5 pipeline: a TAS+registers consensus becomes a
    /// TAS-only consensus (one-use bits are implemented from TAS itself),
    /// witnessing h_m(TAS) ≥ 2 without registers.
    #[test]
    fn tas_consensus_becomes_register_free_tas_only() {
        let tas = Arc::new(canonical::test_and_set(2));
        let recipe = OneUseRecipe::from_type(&tas).unwrap();
        let cert = check_theorem5(
            2,
            |i| tas_consensus_system([i[0], i[1]]),
            &OneUseSource::Recipe(recipe),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{cert:?}");
        // Verify the output object inventory: TAS only.
        let cs = tas_consensus_system([true, false]);
        let eliminated = crate::transform::eliminate_registers(
            &cs,
            &cert.bounds.registers,
            &OneUseSource::Recipe(OneUseRecipe::from_type(&tas).unwrap()),
        )
        .unwrap();
        assert!(eliminated
            .system
            .objects()
            .iter()
            .all(|o| o.ty().name() == "test_and_set"));
    }

    /// Cross-type elimination: the queue protocol's registers implemented
    /// from fetch-and-add objects — any non-trivial deterministic type
    /// serves as the bit substrate.
    #[test]
    fn queue_consensus_with_fetch_add_bits() {
        let fa = Arc::new(canonical::fetch_and_add(2, 2));
        let recipe = OneUseRecipe::from_type(&fa).unwrap();
        let cert = check_theorem5(
            2,
            |i| queue_consensus_system([i[0], i[1]]),
            &OneUseSource::Recipe(recipe),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{cert:?}");
    }

    /// Three processes, six SRSW registers: the compiler scales beyond
    /// the two-process case, and the output — CAS plus one-use bits —
    /// still solves 3-process consensus on every schedule of every
    /// input vector.
    #[test]
    fn three_process_cas_announce_survives_elimination() {
        let cert = check_theorem5(
            3,
            wfc_consensus::cas_announce_consensus_system,
            &OneUseSource::OneUseBits,
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{cert:?}");
        // Six registers, each read ≤ 1 and written ≤ 1 time → 12 bits.
        assert_eq!(cert.one_use_bits, 12);
        assert_eq!(cert.bounds.depth_per_tree.len(), 8, "2^3 trees");
    }

    /// Ablation: the paper's generic `r_b = w_b = D` sizing also works —
    /// larger arrays are merely wasteful (60 bits instead of 4) — which
    /// isolates the value of computing exact per-register bounds.
    #[test]
    fn paper_uniform_sizing_is_correct_but_wasteful() {
        let opts = ExploreOptions::default();
        let bounds =
            crate::access_bounds::access_bounds(2, |i| tas_consensus_system([i[0], i[1]]), &opts)
                .unwrap();
        let uniform = bounds.paper_uniform();
        let d = bounds.d_max as u32;
        assert!(uniform.iter().all(|r| r.reads == d && r.writes == d));
        let cs = tas_consensus_system([true, false]);
        let exact = eliminate_registers(&cs, &bounds.registers, &OneUseSource::OneUseBits).unwrap();
        let wasteful = eliminate_registers(&cs, &uniform, &OneUseSource::OneUseBits).unwrap();
        assert_eq!(exact.one_use_bits, 4);
        assert_eq!(wasteful.one_use_bits, 2 * (d as usize) * (d as usize + 1)); // 60
                                                                                // Both systems remain correct consensus on this input vector.
        for system in [&exact.system, &wasteful.system] {
            let e = explore(system, &opts).unwrap();
            assert!(e.decisions_agree());
            assert!(e.decisions_within(&[0, 1]));
        }
    }

    #[test]
    fn fetch_add_consensus_survives_elimination() {
        let cert = check_theorem5(
            2,
            |i| fetch_add_consensus_system([i[0], i[1]]),
            &OneUseSource::OneUseBits,
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{cert:?}");
    }
}
