//! # `wfc-core` — the contributions of Bazzi–Neiger–Peterson (PODC 1994)
//!
//! This crate implements the paper's own machinery, on top of the
//! substrates in `wfc-spec` / `wfc-explorer` / `wfc-registers` /
//! `wfc-consensus`:
//!
//! | paper | here |
//! |---|---|
//! | §3 the one-use bit `T_{1u}` | [`atomic_one_use_bit`], consuming [`OneUseRead`]/[`OneUseWrite`] capabilities |
//! | §4.2 access bounds via execution trees | [`access_bounds`] (exact `D`, `r_b`, `w_b`) |
//! | §4.3 bounded bit from `r·(w+1)` one-use bits | [`bounded_bit`], [`cost`] |
//! | §5.1–5.2 one-use bits from non-trivial deterministic types | [`OneUseRecipe`] |
//! | §5.3 one-use bits from 2-process consensus | [`one_use_from_consensus`] |
//! | Theorem 5 `h_m = h_m^r` | [`eliminate_registers`], [`check_theorem5`] |
//!
//! ## Example: run the Theorem 5 pipeline
//!
//! ```
//! use std::sync::Arc;
//! use wfc_core::{check_theorem5, OneUseRecipe, OneUseSource};
//! use wfc_consensus::tas_consensus_system;
//! use wfc_explorer::ExploreOptions;
//! use wfc_spec::canonical;
//!
//! // A 2-process consensus from test-and-set *plus registers* …
//! let tas = Arc::new(canonical::test_and_set(2));
//! let recipe = OneUseRecipe::from_type(&tas)?;
//! // … compiled into a register-free, TAS-only implementation and
//! // re-model-checked over every schedule and input vector:
//! let cert = check_theorem5(
//!     2,
//!     |i| tas_consensus_system([i[0], i[1]]),
//!     &OneUseSource::Recipe(recipe),
//!     &ExploreOptions::default(),
//! )?;
//! assert!(cert.holds());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access_bounds;
mod bounded_bit;
mod error;
mod one_use;
mod recipe;
mod theorem5;
mod transform;

pub use access_bounds::{access_bounds, AccessBounds, RegisterBounds};
pub use bounded_bit::{bounded_bit, bounded_bit_with, cost, BoundedBitReader, BoundedBitWriter};
pub use error::{BoundedBitError, DeriveError, TransformError};
pub use one_use::{
    atomic_one_use_bit, AtomicOneUseReader, AtomicOneUseWriter, OneUseRead, OneUseWrite,
};
pub use recipe::{
    one_use_from_consensus, ConsensusOneUseReader, ConsensusOneUseWriter, OneUseRecipe,
    RecipeOneUseReader, RecipeOneUseWriter,
};
pub use theorem5::{
    check_theorem5, classify_deterministic, Theorem5Certificate, Theorem5Classification,
};
pub use transform::{eliminate_registers, EliminatedSystem, OneUseSource};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::AtomicOneUseWriter>();
        assert_send::<crate::OneUseRecipe>();
        assert_send::<crate::EliminatedSystem>();
    }
}
