//! Access bounds in wait-free consensus (paper, Section 4.2).
//!
//! The paper's argument: model all executions of a wait-free consensus
//! implementation as `2^n` trees (one per input vector); wait-freedom
//! plus König's Lemma make every tree finite; hence there is a depth
//! bound `D`, and no object is accessed more than `D` times — in
//! particular every register bit `b` has finite read/write bounds
//! `r_b, w_b`.
//!
//! [`access_bounds`] computes all of this *exactly* for a concrete
//! protocol: per-tree depths, `D`, and per-register `(r_b, w_b)` maxima
//! over every execution of every tree. These bounds are what sizes the
//! one-use-bit arrays in the Theorem 5 compiler ([`crate::transform`]).

use wfc_consensus::{binary_input_vectors, ConsensusSystem};
use wfc_explorer::{explore, ExploreOptions, ExplorerError};
use wfc_obs::json::Json;
use wfc_obs::report::RunReport;

/// Read/write bounds for one register across all execution trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterBounds {
    /// The register's object index (within each per-vector system).
    pub obj: usize,
    /// `r_b`: the maximum number of reads in any execution.
    pub reads: u32,
    /// `w_b`: the maximum number of writes in any execution.
    pub writes: u32,
}

/// The Section 4.2 analysis result for one consensus implementation.
#[derive(Clone, Debug)]
pub struct AccessBounds {
    /// Depth `d` of each of the `2^n` execution trees, in
    /// lexicographic input order.
    pub depth_per_tree: Vec<usize>,
    /// The paper's `D`: the maximum depth over all trees.
    pub d_max: usize,
    /// Per-register read/write bounds, maxima over all trees.
    pub registers: Vec<RegisterBounds>,
    /// Total distinct configurations explored across all trees.
    pub total_configs: usize,
}

impl AccessBounds {
    /// The total number of one-use bits the Section 4.3 replacement will
    /// allocate: `Σ_b r_b · (w_b + 1)`.
    pub fn one_use_bits_required(&self) -> usize {
        self.registers
            .iter()
            .map(|r| crate::bounded_bit::cost(r.reads as usize, r.writes as usize))
            .sum()
    }

    /// The paper's generic sizing: it proves only `r_b = w_b = D` and
    /// sizes every array uniformly (Section 4.2 closes with exactly this
    /// choice). Returns bounds with every register widened to `(D, D)` —
    /// the ablation baseline against the exact per-register bounds this
    /// analysis computes. Oversized arrays stay correct; they only waste
    /// one-use bits (`D·(D+1)` per register instead of `r_b·(w_b+1)`).
    pub fn paper_uniform(&self) -> Vec<RegisterBounds> {
        let d = self.d_max as u32;
        self.registers
            .iter()
            .map(|r| RegisterBounds {
                obj: r.obj,
                reads: d,
                writes: d,
            })
            .collect()
    }
}

/// Computes the paper's Section 4.2 quantities for a consensus protocol
/// given as a per-input-vector builder.
///
/// Wait-freedom is verified as a side effect (a non-wait-free protocol
/// has no access bounds; the paper's König argument is exactly this
/// dichotomy).
///
/// # Errors
///
/// Propagates exploration failures, notably
/// [`ExplorerError::NotWaitFree`].
///
/// # Observability
///
/// With observability on ([`ObsOptions`](wfc_explorer::ObsOptions) via
/// `opts.obs`, or `WFC_OBS=1`), the analysis emits an `access_bounds`
/// [`RunReport`] — explorer metrics plus a section carrying the paper
/// quantities (`D`, per-tree depths, per-register `r_b`/`w_b`) — to
/// `WFC_OBS_JSON` or stderr. On failure the report's section records the
/// error instead (including budget consumption for budget errors).
pub fn access_bounds(
    n: usize,
    build: impl Fn(&[bool]) -> ConsensusSystem + Sync,
    opts: &ExploreOptions,
) -> Result<AccessBounds, ExplorerError> {
    let result = {
        let _span = wfc_obs::span::enter_lazy(opts.obs.spans, "access_bounds", || format!("n={n}"));
        compute_access_bounds(n, build, opts)
    };
    if opts.obs.any() {
        emit_report(n, &result);
    }
    result
}

fn compute_access_bounds(
    n: usize,
    build: impl Fn(&[bool]) -> ConsensusSystem + Sync,
    opts: &ExploreOptions,
) -> Result<AccessBounds, ExplorerError> {
    let vectors = binary_input_vectors(n);
    let threads = opts.effective_threads();
    // With several trees in flight, explore each one single-threaded —
    // the outer fan-out already fills the pool.
    let inner = if threads > 1 {
        opts.with_threads(1)
    } else {
        *opts
    };
    type TreeResult = Result<(usize, usize, Vec<RegisterBounds>), ExplorerError>;
    let per_tree = wfc_explorer::pool::parallel_map(threads, &vectors, |inputs| -> TreeResult {
        let cs = build(inputs);
        let e = explore(&cs.system, &inner)?;
        let bounds: Vec<RegisterBounds> = cs
            .registers
            .iter()
            .map(|info| {
                let ty = cs.system.objects()[info.obj].ty();
                let read_ix = ty
                    .invocation_id("read")
                    .expect("register type has a read")
                    .index();
                RegisterBounds {
                    obj: info.obj,
                    reads: e.access.max_for(info.obj, read_ix),
                    // Writes: the exact maximum of total writes (any
                    // value) along a single execution, tracked by the
                    // explorer. Summing the per-value write maxima
                    // instead would over-approximate, since those maxima
                    // can each be attained on different executions.
                    writes: e.access.max_writes_for(info.obj),
                }
            })
            .collect();
        Ok((e.depth, e.configs, bounds))
    });

    // Merge in lexicographic input order (the order of `vectors`), so
    // results — and which error surfaces — are identical no matter how
    // the trees were scheduled across threads.
    let mut depth_per_tree = Vec::new();
    let mut total_configs = 0usize;
    let mut registers: Vec<RegisterBounds> = Vec::new();
    for tree in per_tree {
        let (depth, configs, bounds): (usize, usize, Vec<RegisterBounds>) = tree?;
        depth_per_tree.push(depth);
        total_configs += configs;
        for (k, b) in bounds.into_iter().enumerate() {
            match registers.get_mut(k) {
                Some(slot) => {
                    debug_assert_eq!(slot.obj, b.obj, "builder must be shape-stable");
                    slot.reads = slot.reads.max(b.reads);
                    slot.writes = slot.writes.max(b.writes);
                }
                None => registers.push(b),
            }
        }
    }
    Ok(AccessBounds {
        d_max: depth_per_tree.iter().copied().max().unwrap_or(0),
        depth_per_tree,
        registers,
        total_configs,
    })
}

/// Assembles and emits the `access_bounds` run report: the collected
/// metrics/spans plus a section with the paper's Section 4.2 quantities.
/// Collecting resets the global registry, so the report covers exactly
/// this analysis (plus anything else recorded since the last collect).
fn emit_report(n: usize, result: &Result<AccessBounds, ExplorerError>) {
    let mut report = RunReport::collect("access_bounds");
    let section = match result {
        Ok(b) => Json::obj(vec![
            ("n", Json::U64(n as u64)),
            ("D", Json::U64(b.d_max as u64)),
            (
                "depth_per_tree",
                Json::Arr(
                    b.depth_per_tree
                        .iter()
                        .map(|&d| Json::U64(d as u64))
                        .collect(),
                ),
            ),
            ("total_configs", Json::U64(b.total_configs as u64)),
            (
                "registers",
                Json::Arr(
                    b.registers
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("obj", Json::U64(r.obj as u64)),
                                ("r_b", Json::U64(r.reads as u64)),
                                ("w_b", Json::U64(r.writes as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "one_use_bits_required",
                Json::U64(b.one_use_bits_required() as u64),
            ),
        ]),
        Err(e) => {
            let mut fields = vec![
                ("n", Json::U64(n as u64)),
                ("error", Json::Str(e.to_string())),
            ];
            if let ExplorerError::Exhausted(e) = e {
                fields.push(("budget", Json::U64(e.budget)));
                fields.push(("used", Json::U64(e.used)));
            }
            Json::obj(fields)
        }
    };
    report.section("access_bounds", section);
    report.emit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_consensus::{cas_consensus_system, tas_consensus_system};

    #[test]
    fn tas_bounds_match_hand_analysis() {
        let b = access_bounds(
            2,
            |i| tas_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        // Every tree: winner takes 2 steps, loser 3 → d = 5 in all four.
        assert_eq!(b.depth_per_tree, vec![5, 5, 5, 5]);
        assert_eq!(b.d_max, 5);
        // Each announce register: written once by its owner, read at most
        // once by the loser.
        assert_eq!(b.registers.len(), 2);
        for r in &b.registers {
            assert_eq!((r.reads, r.writes), (1, 1));
        }
        // Replacement cost: 2 registers × r·(w+1) = 2 × 2 = 4 one-use bits.
        assert_eq!(b.one_use_bits_required(), 4);
    }

    #[test]
    fn register_free_protocols_have_no_register_bounds() {
        let b = access_bounds(2, cas_consensus_system, &ExploreOptions::default()).unwrap();
        assert!(b.registers.is_empty());
        assert_eq!(b.one_use_bits_required(), 0);
        assert_eq!(b.d_max, 2);
    }

    #[test]
    fn depth_grows_with_process_count() {
        let b2 = access_bounds(2, cas_consensus_system, &ExploreOptions::default()).unwrap();
        let b3 = access_bounds(3, cas_consensus_system, &ExploreOptions::default()).unwrap();
        assert!(b3.d_max > b2.d_max);
        assert_eq!(b3.depth_per_tree.len(), 8, "2^3 trees");
    }
}
