//! The register-elimination compiler (paper, Theorem 5).
//!
//! Input: a wait-free consensus implementation that uses objects of some
//! type `T` *plus* single-reader single-writer boolean registers (a
//! [`ConsensusSystem`] with its registers annotated). Output: an
//! equivalent implementation that uses **no registers**, assembled from
//! the paper's ingredients:
//!
//! 1. **Section 4.2** — compute exact access bounds `r_b`, `w_b` for each
//!    register over all executions ([`crate::access_bounds`]).
//! 2. **Section 4.3** — replace each register with a
//!    `(w_b + 1) × r_b` array of one-use bits, inlining the row-flipping
//!    write and column-walking read subroutines into the programs.
//! 3. **Section 5** — optionally instantiate each one-use bit as one
//!    object of a non-trivial deterministic type `T`, inlining the
//!    witness-derived reader/writer sequences ([`OneUseRecipe`]).
//!
//! The output is re-model-checked by the caller (see
//! [`crate::theorem5`]): wait-freedom, agreement and validity must
//! survive the transformation — that is the computational content of
//! `h_m^r(T) ≤ h_m(T)`.

use std::sync::Arc;

use wfc_consensus::{ConsensusSystem, SrswRegisterInfo};
use wfc_explorer::program::{BinOp, Instr, Operand, Program, ProgramBuilder, Var};
use wfc_explorer::{ObjectInstance, System};
use wfc_spec::{canonical, PortId};

use crate::access_bounds::RegisterBounds;
use crate::error::TransformError;
use crate::recipe::OneUseRecipe;

/// How the compiler realises the one-use bits of step 2.
#[derive(Clone, Debug)]
pub enum OneUseSource {
    /// Use native one-use-bit objects (`T_{1u}` itself): the Section 4.3
    /// replacement in isolation.
    OneUseBits,
    /// Implement each one-use bit from one object of a non-trivial
    /// deterministic type via the given recipe (Sections 5.1–5.2): the
    /// full Theorem 5 pipeline.
    Recipe(OneUseRecipe),
}

/// The result of register elimination.
#[derive(Clone, Debug)]
pub struct EliminatedSystem {
    /// The register-free implementation.
    pub system: System,
    /// Number of one-use bits allocated (`Σ_b r_b · (w_b + 1)`).
    pub one_use_bits: usize,
    /// The per-register bounds that sized the arrays.
    pub register_bounds: Vec<RegisterBounds>,
}

struct RegisterPlan {
    info: SrswRegisterInfo,
    bounds: RegisterBounds,
    /// Index of the first bit object for this register in the output
    /// system's object list.
    base: usize,
}

/// Rewrites `cs` into a register-free system, sizing the one-use-bit
/// arrays by `bounds` (obtain them from [`crate::access_bounds`], maxima
/// over all input vectors, so the same sizes work for every tree).
///
/// # Errors
///
/// Returns [`TransformError`] when programs address objects dynamically,
/// when register accesses violate the annotated SRSW roles, or when a
/// rewritten program fails to assemble.
pub fn eliminate_registers(
    cs: &ConsensusSystem,
    bounds: &[RegisterBounds],
    source: &OneUseSource,
) -> Result<EliminatedSystem, TransformError> {
    let objects = cs.system.objects();
    let is_register: Vec<bool> = {
        let mut v = vec![false; objects.len()];
        for info in &cs.registers {
            v[info.obj] = true;
        }
        v
    };

    // Survivor remap: old object index → new object index.
    let mut remap: Vec<Option<usize>> = vec![None; objects.len()];
    let mut new_objects: Vec<ObjectInstance> = Vec::new();
    for (k, obj) in objects.iter().enumerate() {
        if !is_register[k] {
            remap[k] = Some(new_objects.len());
            new_objects.push(obj.clone());
        }
    }

    // Bit-object template per the source.
    let one_use_ty = Arc::new(canonical::one_use_bit());
    let (bit_ty, bit_init, bit_writer_port, bit_reader_port) = match source {
        OneUseSource::OneUseBits => {
            let init = one_use_ty.state_id("UNSET").expect("T_1u has UNSET");
            (
                Arc::clone(&one_use_ty),
                init,
                PortId::new(0),
                PortId::new(1),
            )
        }
        OneUseSource::Recipe(r) => (
            Arc::clone(r.ty()),
            r.init(),
            r.writer_port(),
            r.reader_port(),
        ),
    };

    // Allocate bit arrays.
    let processes = cs.system.processes();
    let mut plans: Vec<RegisterPlan> = Vec::new();
    let mut one_use_bits = 0usize;
    for info in &cs.registers {
        let b = bounds
            .iter()
            .find(|b| b.obj == info.obj)
            .copied()
            .unwrap_or(RegisterBounds {
                obj: info.obj,
                reads: 0,
                writes: 0,
            });
        let base = new_objects.len();
        let count = (b.writes as usize + 1) * b.reads as usize;
        for _ in 0..count {
            let mut ports = vec![None; processes];
            ports[info.writer_process] = Some(bit_writer_port);
            ports[info.reader_process] = Some(bit_reader_port);
            new_objects.push(ObjectInstance::new(Arc::clone(&bit_ty), bit_init, ports));
        }
        one_use_bits += count;
        plans.push(RegisterPlan {
            info: *info,
            bounds: b,
            base,
        });
    }

    // Rewrite each program.
    let mut new_programs = Vec::with_capacity(processes);
    for (p, program) in cs.system.programs().iter().enumerate() {
        new_programs.push(rewrite_program(
            p,
            program,
            objects,
            &is_register,
            &remap,
            &plans,
            source,
        )?);
    }

    Ok(EliminatedSystem {
        system: System::new(new_objects, new_programs),
        one_use_bits,
        register_bounds: plans.iter().map(|p| p.bounds).collect(),
    })
}

/// Rewrites process `p`'s program, inlining register accesses.
#[allow(clippy::too_many_arguments)]
fn rewrite_program(
    p: usize,
    program: &Program,
    objects: &[ObjectInstance],
    is_register: &[bool],
    remap: &[Option<usize>],
    plans: &[RegisterPlan],
    source: &OneUseSource,
) -> Result<Program, TransformError> {
    let mut b = ProgramBuilder::new();
    // Recreate original variables first so operand indices carry over.
    for (k, &init) in program.init_vars().iter().enumerate() {
        let v = b.var_init(&format!("v{k}"), init);
        debug_assert_eq!(v, Var(k));
    }
    // Persistent per-register state for this process.
    let reg_vars: Vec<RegVars> = plans
        .iter()
        .enumerate()
        .map(|(k, plan)| RegVars {
            i_w: b.var(&format!("reg{k}_i_w")),
            cur: b.var_init(&format!("reg{k}_cur"), i64::from(plan.info.init)),
            wj: b.var(&format!("reg{k}_wj")),
            i_r: b.var(&format!("reg{k}_i_r")),
            j_r: b.var(&format!("reg{k}_j_r")),
            t: b.var(&format!("reg{k}_t")),
            tmp: b.var(&format!("reg{k}_tmp")),
        })
        .collect();

    // One label per original instruction boundary (targets of jumps).
    let labels: Vec<_> = (0..=program.code().len())
        .map(|_| b.fresh_label())
        .collect();

    for (at, instr) in program.code().iter().enumerate() {
        b.bind(labels[at]);
        match *instr {
            Instr::Compute { dst, lhs, op, rhs } => b.compute(dst, lhs, op, rhs),
            Instr::Copy { dst, src } => b.copy(dst, src),
            Instr::JumpIfZero { cond, target } => b.jump_if_zero(cond, labels[target]),
            Instr::Jump { target } => b.jump(labels[target]),
            Instr::Return { value } => b.ret(value),
            Instr::Invoke { obj, inv, store } => {
                let Operand::Const(obj_ix) = obj else {
                    return Err(TransformError::DynamicObjectIndex { process: p, at });
                };
                let obj_ix = usize::try_from(obj_ix)
                    .map_err(|_| TransformError::DynamicObjectIndex { process: p, at })?;
                if !is_register.get(obj_ix).copied().unwrap_or(false) {
                    let new_ix = remap[obj_ix].expect("survivor remapped") as i64;
                    b.invoke(new_ix, inv, store);
                    continue;
                }
                // A register access: resolve the plan and the role.
                let (k, plan) = plans
                    .iter()
                    .enumerate()
                    .find(|(_, pl)| pl.info.obj == obj_ix)
                    .expect("annotated register has a plan");
                let Operand::Const(inv_ix) = inv else {
                    return Err(TransformError::DynamicObjectIndex { process: p, at });
                };
                let reg_ty = objects[obj_ix].ty();
                let inv_name = reg_ty
                    .invocation_name(wfc_spec::InvId::new(inv_ix as usize))
                    .to_owned();
                let vars = &reg_vars[k];
                match inv_name.as_str() {
                    "read" => {
                        if p != plan.info.reader_process {
                            return Err(TransformError::WrongRole {
                                obj: obj_ix,
                                process: p,
                                inv: inv_name,
                            });
                        }
                        emit_read(&mut b, plan, vars, store, source, reg_ty);
                    }
                    "write0" | "write1" => {
                        if p != plan.info.writer_process {
                            return Err(TransformError::WrongRole {
                                obj: obj_ix,
                                process: p,
                                inv: inv_name,
                            });
                        }
                        let value = i64::from(inv_name == "write1");
                        emit_write(&mut b, plan, vars, value, store, source, reg_ty);
                    }
                    other => {
                        return Err(TransformError::WrongRole {
                            obj: obj_ix,
                            process: p,
                            inv: other.to_owned(),
                        });
                    }
                }
            }
        }
    }
    b.bind(labels[program.code().len()]);
    b.build().map_err(TransformError::Program)
}

/// Emits one one-use-bit **write** (set to 1) at the object index held in
/// `vars.tmp`.
fn emit_bit_write(b: &mut ProgramBuilder, vars_tmp: Var, source: &OneUseSource) {
    match source {
        OneUseSource::OneUseBits => {
            // T_1u: invocation "write" has index 1 ("read" is 0).
            b.invoke(vars_tmp, 1_i64, None);
        }
        OneUseSource::Recipe(r) => {
            b.invoke(vars_tmp, r.writer_inv().index() as i64, None);
        }
    }
}

/// Emits one one-use-bit **read** at the object index in `vars.tmp`,
/// leaving the bit value (0/1) in `vars.t`.
fn emit_bit_read(b: &mut ProgramBuilder, vars: (Var, Var), source: &OneUseSource) {
    let (tmp, t) = vars;
    match source {
        OneUseSource::OneUseBits => {
            // T_1u responses: "0" → 0, "1" → 1, so the response *is* the bit.
            b.invoke(tmp, 0_i64, Some(t));
        }
        OneUseSource::Recipe(r) => {
            for &inv in r.reader_seq() {
                b.invoke(tmp, inv.index() as i64, Some(t));
            }
            // Bit = (last response ≠ H₁'s return value).
            b.compute(t, t, BinOp::Eq, r.unwritten_last().index() as i64);
            b.compute(t, 1_i64, BinOp::Sub, t);
        }
    }
}

/// Inlines the Section 4.3 write: flip row `i_w` if the value changes.
#[allow(clippy::too_many_arguments)]
fn emit_write(
    b: &mut ProgramBuilder,
    plan: &RegisterPlan,
    vars: &RegVars,
    value: i64,
    store: Option<Var>,
    source: &OneUseSource,
    reg_ty: &Arc<wfc_spec::FiniteType>,
) {
    let r_b = plan.bounds.reads as i64;
    let skip = b.fresh_label();
    let loop_top = b.fresh_label();
    let loop_end = b.fresh_label();
    // diff = cur - value; if zero, the write is a no-op.
    b.compute(vars.tmp, vars.cur, BinOp::Sub, value);
    b.jump_if_zero(vars.tmp, skip);
    // Flip row i_w: columns 0 .. r_b.
    b.copy(vars.wj, 0_i64);
    b.bind(loop_top);
    b.compute(vars.t, vars.wj, BinOp::Lt, r_b);
    b.jump_if_zero(vars.t, loop_end);
    // tmp = base + i_w * r_b + wj.
    b.compute(vars.tmp, vars.i_w, BinOp::Mul, r_b);
    b.compute(vars.tmp, vars.tmp, BinOp::Add, vars.wj);
    b.compute(vars.tmp, vars.tmp, BinOp::Add, plan.base as i64);
    emit_bit_write(b, vars.tmp, source);
    b.compute(vars.wj, vars.wj, BinOp::Add, 1_i64);
    b.jump(loop_top);
    b.bind(loop_end);
    b.compute(vars.i_w, vars.i_w, BinOp::Add, 1_i64);
    b.copy(vars.cur, value);
    b.bind(skip);
    if let Some(dst) = store {
        let ok = reg_ty.response_id("ok").expect("register has ok").index() as i64;
        b.copy(dst, ok);
    }
}

/// Inlines the Section 4.3 read: walk down column `j_r`.
fn emit_read(
    b: &mut ProgramBuilder,
    plan: &RegisterPlan,
    vars: &RegVars,
    store: Option<Var>,
    source: &OneUseSource,
    _reg_ty: &Arc<wfc_spec::FiniteType>,
) {
    let r_b = plan.bounds.reads as i64;
    let read_top = b.fresh_label();
    let read_done = b.fresh_label();
    b.bind(read_top);
    // tmp = base + i_r * r_b + j_r.
    b.compute(vars.tmp, vars.i_r, BinOp::Mul, r_b);
    b.compute(vars.tmp, vars.tmp, BinOp::Add, vars.j_r);
    b.compute(vars.tmp, vars.tmp, BinOp::Add, plan.base as i64);
    emit_bit_read(b, (vars.tmp, vars.t), source);
    b.jump_if_zero(vars.t, read_done);
    b.compute(vars.i_r, vars.i_r, BinOp::Add, 1_i64);
    b.jump(read_top);
    b.bind(read_done);
    b.compute(vars.j_r, vars.j_r, BinOp::Add, 1_i64);
    if let Some(dst) = store {
        // value = (init + i_r) mod 2 — and the register type's responses
        // "0"/"1" are numbered 0/1, so the value is the response index.
        b.compute(dst, vars.i_r, BinOp::Add, i64::from(plan.info.init));
        b.compute(dst, dst, BinOp::Mod, 2_i64);
    }
}

/// Persistent per-register variables of one process's rewritten program.
#[derive(Clone, Copy, Debug)]
struct RegVars {
    i_w: Var,
    cur: Var,
    wj: Var,
    i_r: Var,
    j_r: Var,
    t: Var,
    tmp: Var,
}
