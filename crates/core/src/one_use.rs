//! The one-use bit `T_{1u}` at runtime (paper, Section 3).
//!
//! A one-use bit is a bit, initially 0, that can be *read at most once*
//! and *set at most once*. The spec-level type lives in
//! [`wfc_spec::canonical::one_use_bit`]; this module provides runtime
//! instances whose use-at-most-once discipline is enforced by the type
//! system: [`OneUseRead::read`] and [`OneUseWrite::write`] consume their
//! handle, so a second use is a compile error — the runtime analogue of
//! the spec's `DEAD` state is simply that no handle remains.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The consuming read capability of a one-use bit.
pub trait OneUseRead: Send + Sized {
    /// Reads the bit, consuming the capability.
    fn read(self) -> bool;
}

/// The consuming write capability of a one-use bit.
pub trait OneUseWrite: Send + Sized {
    /// Sets the bit to 1, consuming the capability.
    fn write(self);
}

/// Creates an atomic one-use bit (initially 0), returning its write and
/// read capabilities.
///
/// # Examples
///
/// ```
/// use wfc_core::{atomic_one_use_bit, OneUseRead, OneUseWrite};
///
/// let (w, r) = atomic_one_use_bit();
/// w.write();
/// assert!(r.read());
/// // `w.write()` or `r.read()` again would not compile: moved values.
/// ```
pub fn atomic_one_use_bit() -> (AtomicOneUseWriter, AtomicOneUseReader) {
    let cell = Arc::new(AtomicBool::new(false));
    (
        AtomicOneUseWriter {
            cell: Arc::clone(&cell),
        },
        AtomicOneUseReader { cell },
    )
}

/// Write capability of an [`atomic_one_use_bit`].
#[derive(Debug)]
pub struct AtomicOneUseWriter {
    cell: Arc<AtomicBool>,
}

/// Read capability of an [`atomic_one_use_bit`].
#[derive(Debug)]
pub struct AtomicOneUseReader {
    cell: Arc<AtomicBool>,
}

impl OneUseWrite for AtomicOneUseWriter {
    fn write(self) {
        self.cell.store(true, Ordering::Release);
    }
}

impl OneUseRead for AtomicOneUseReader {
    fn read(self) -> bool {
        self.cell.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_bit_reads_zero() {
        let (_w, r) = atomic_one_use_bit();
        assert!(!r.read());
    }

    #[test]
    fn written_bit_reads_one() {
        let (w, r) = atomic_one_use_bit();
        w.write();
        assert!(r.read());
    }

    #[test]
    fn concurrent_read_write_returns_some_bit() {
        // Overlapping read and write linearize either way; the read may
        // return 0 or 1 but must not crash or hang.
        for _ in 0..100 {
            let (w, r) = atomic_one_use_bit();
            let results = wfc_runtime::run_threads(vec![
                Box::new(move || {
                    w.write();
                    true
                }) as Box<dyn FnOnce() -> bool + Send>,
                Box::new(move || r.read()),
            ]);
            assert!(results[0]);
        }
    }
}
