//! Property tests for the paper's constructions over random inputs.
//!
//! Randomness comes from the in-repo [`SplitMix64`] generator (the
//! workspace builds offline, without a property-testing framework);
//! every case reproduces from the seed in the assertion message.

use std::sync::Arc;

use wfc_core::{bounded_bit, cost, BoundedBitError, OneUseRead, OneUseRecipe, OneUseWrite};
use wfc_spec::prng::SplitMix64;
use wfc_spec::{FiniteType, PortId, TypeBuilder};

const CASES: u64 = 512;

/// A random deterministic 2-port type (same construction as the spec
/// crate's property tests).
fn random_deterministic_type(rng: &mut SplitMix64) -> FiniteType {
    let states = rng.gen_range(2, 6);
    let invs = rng.gen_range(1, 4);
    let resps = rng.gen_range(2, 4);
    let mut b = TypeBuilder::new("random", 2);
    let qs: Vec<_> = (0..states).map(|k| b.state(&format!("q{k}"))).collect();
    let is_: Vec<_> = (0..invs).map(|k| b.invocation(&format!("i{k}"))).collect();
    let rs: Vec<_> = (0..resps).map(|k| b.response(&format!("r{k}"))).collect();
    for q in 0..states {
        for port in 0..2 {
            #[allow(clippy::needless_range_loop)] // i indexes is_
            for i in 0..invs {
                let next = rng.gen_range(0, states);
                let resp = rng.gen_range(0, resps);
                b.transition(qs[q], PortId::new(port), is_[i], qs[next], rs[resp]);
            }
        }
    }
    b.build().unwrap()
}

/// One step of a register conversation: a read, or a write of a bit.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read,
    Write(bool),
}

fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(0, max_len + 1);
    (0..len)
        .map(|_| {
            if rng.gen_bool() {
                Op::Read
            } else {
                Op::Write(rng.gen_bool())
            }
        })
        .collect()
}

/// Section 4.3 differential: over any sequential conversation within
/// budget, the one-use-bit array agrees with a plain boolean.
#[test]
fn bounded_bit_matches_reference() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0xB0B1 ^ seed);
        let init = rng.gen_bool();
        let ops = random_ops(&mut rng, 24);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read)).count();
        let writes = ops.len() - reads;
        let (mut w, mut r) = bounded_bit(init, reads.max(1), writes);
        let mut reference = init;
        for op in ops {
            match op {
                Op::Read => assert_eq!(r.read().unwrap(), reference, "seed {seed}"),
                Op::Write(v) => {
                    w.write(v).unwrap();
                    reference = v;
                }
            }
        }
    }
}

/// Budgets are exact: `reads` reads always fit, the `reads + 1`-st
/// always errors; same for value-changing writes.
///
/// The case space is small, so cover it exhaustively rather than
/// sampling.
#[test]
fn budgets_are_exact() {
    for reads in 1..8usize {
        for writes in 0..8usize {
            assert_eq!(cost(reads, writes), reads * (writes + 1));
            let (mut w, mut r) = bounded_bit(false, reads, writes);
            for k in 0..writes {
                w.write(k % 2 == 0).unwrap();
            }
            assert_eq!(
                w.write(writes % 2 == 0).unwrap_err(),
                BoundedBitError::WriteBudgetExhausted { budget: writes }
            );
            for _ in 0..reads {
                r.read().unwrap();
            }
            assert_eq!(
                r.read().unwrap_err(),
                BoundedBitError::ReadBudgetExhausted { budget: reads }
            );
        }
    }
}

/// Section 5.2 on random types: whenever a recipe derives, the
/// resulting one-use bit is sequentially correct — unwritten reads 0,
/// written reads 1 — no matter what the underlying type looks like.
#[test]
fn random_recipes_yield_working_bits() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x0B17 ^ seed);
        let ty = Arc::new(random_deterministic_type(&mut rng));
        if let Ok(recipe) = OneUseRecipe::from_type(&ty) {
            let (_w, r) = recipe.instantiate();
            assert!(!r.read(), "seed {seed}: unwritten bit must read 0");
            let (w, r) = recipe.instantiate();
            w.write();
            assert!(r.read(), "seed {seed}: written bit must read 1");
            assert!(recipe.read_cost() >= 1, "seed {seed}");
        }
    }
}
