//! Property tests for the paper's constructions over random inputs.

use std::sync::Arc;

use proptest::prelude::*;

use wfc_core::{bounded_bit, cost, BoundedBitError, OneUseRead, OneUseRecipe, OneUseWrite};
use wfc_spec::{FiniteType, PortId, TypeBuilder};

/// A random deterministic 2-port type (same construction as the spec
/// crate's property tests).
fn arb_deterministic_type() -> impl Strategy<Value = FiniteType> {
    (2..=5usize, 1..=3usize, 2..=3usize)
        .prop_flat_map(|(states, invs, resps)| {
            let table =
                proptest::collection::vec((0..states, 0..resps), states * 2 * invs);
            (Just((states, invs, resps)), table)
        })
        .prop_map(|((states, invs, resps), table)| {
            let mut b = TypeBuilder::new("random", 2);
            let qs: Vec<_> = (0..states).map(|k| b.state(&format!("q{k}"))).collect();
            let is_: Vec<_> = (0..invs).map(|k| b.invocation(&format!("i{k}"))).collect();
            let rs: Vec<_> = (0..resps).map(|k| b.response(&format!("r{k}"))).collect();
            let mut it = table.into_iter();
            for q in 0..states {
                for port in 0..2 {
                    #[allow(clippy::needless_range_loop)] // i indexes is_
                    for i in 0..invs {
                        let (next, resp) = it.next().unwrap();
                        b.transition(qs[q], PortId::new(port), is_[i], qs[next], rs[resp]);
                    }
                }
            }
            b.build().unwrap()
        })
}

/// One step of a register conversation: a read, or a write of a bit.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read,
    Write(bool),
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::Read),
            any::<bool>().prop_map(Op::Write),
        ],
        0..=max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Section 4.3 differential: over any sequential conversation within
    /// budget, the one-use-bit array agrees with a plain boolean.
    #[test]
    fn bounded_bit_matches_reference(init in any::<bool>(), ops in arb_ops(24)) {
        let reads = ops.iter().filter(|o| matches!(o, Op::Read)).count();
        let writes = ops.len() - reads;
        let (mut w, mut r) = bounded_bit(init, reads.max(1), writes);
        let mut reference = init;
        for op in ops {
            match op {
                Op::Read => prop_assert_eq!(r.read().unwrap(), reference),
                Op::Write(v) => {
                    w.write(v).unwrap();
                    reference = v;
                }
            }
        }
    }

    /// Budgets are exact: `reads` reads always fit, the `reads + 1`-st
    /// always errors; same for value-changing writes.
    #[test]
    fn budgets_are_exact(reads in 1..8usize, writes in 0..8usize) {
        prop_assert_eq!(cost(reads, writes), reads * (writes + 1));
        let (mut w, mut r) = bounded_bit(false, reads, writes);
        for k in 0..writes {
            w.write(k % 2 == 0).unwrap();
        }
        prop_assert_eq!(
            w.write(writes % 2 == 0).unwrap_err(),
            BoundedBitError::WriteBudgetExhausted { budget: writes }
        );
        for _ in 0..reads {
            r.read().unwrap();
        }
        prop_assert_eq!(
            r.read().unwrap_err(),
            BoundedBitError::ReadBudgetExhausted { budget: reads }
        );
    }

    /// Section 5.2 on random types: whenever a recipe derives, the
    /// resulting one-use bit is sequentially correct — unwritten reads 0,
    /// written reads 1 — no matter what the underlying type looks like.
    #[test]
    fn random_recipes_yield_working_bits(ty in arb_deterministic_type()) {
        let ty = Arc::new(ty);
        if let Ok(recipe) = OneUseRecipe::from_type(&ty) {
            let (_w, r) = recipe.instantiate();
            prop_assert!(!r.read(), "unwritten bit must read 0");
            let (w, r) = recipe.instantiate();
            w.write();
            prop_assert!(r.read(), "written bit must read 1");
            prop_assert!(recipe.read_cost() >= 1);
        }
    }
}
