//! Exhaustive model checking of the Section 4.3 construction under
//! genuine concurrency, including its *atomicity*.
//!
//! Strategy: build a tiny two-process system in which a writer performs
//! register writes and a reader performs several register reads, with
//! each process deciding an encoding of everything it observed. Explore
//! **all** schedules of (a) the original register system and (b) the
//! system after the compiler replaces the register with a one-use-bit
//! array. The set of reachable observations of (b) must be a subset of
//! (a)'s — the array never exhibits a behaviour the atomic register
//! could not.
//!
//! The discriminating case is the new/old inversion: with one write and
//! two reads, the observation `(1, 0)` (first read new, second read old)
//! is *regular but not atomic*. The atomic register cannot produce it —
//! and neither may the array.

use std::sync::Arc;

use wfc_consensus::{ConsensusSystem, SrswRegisterInfo};
use wfc_core::{eliminate_registers, OneUseSource, RegisterBounds};
use wfc_explorer::program::{BinOp, ProgramBuilder};
use wfc_explorer::{explore, ExploreOptions, ObjectInstance, System};
use wfc_spec::{canonical, PortId};

/// Builds the register system: process 0 performs `writes` alternating
/// writes (starting with 1), process 1 performs `reads` reads and
/// decides `Σ r_k · 2^k`.
fn register_conversation(reads: usize, writes: usize) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let objects = vec![ObjectInstance::new(
        Arc::clone(&reg),
        v0,
        vec![Some(PortId::new(0)), Some(PortId::new(1))],
    )];
    let writer = {
        let mut b = ProgramBuilder::new();
        for k in 0..writes {
            b.invoke(0_i64, write_inv(k % 2 == 0), None);
        }
        b.ret(0_i64);
        b.build().unwrap()
    };
    let reader = {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let acc = b.var("acc");
        for k in 0..reads {
            b.invoke(0_i64, read, Some(r));
            let shifted = b.var("shifted");
            b.compute(shifted, r, BinOp::Mul, 1 << k);
            b.compute(acc, acc, BinOp::Add, shifted);
        }
        b.ret(acc);
        b.build().unwrap()
    };
    ConsensusSystem {
        system: System::new(objects, vec![writer, reader]),
        registers: vec![SrswRegisterInfo {
            obj: 0,
            writer_process: 0,
            reader_process: 1,
            init: false,
        }],
        inputs: vec![false, false],
    }
}

fn reader_observations(system: &System) -> std::collections::BTreeSet<i64> {
    let e = explore(system, &ExploreOptions::default()).unwrap();
    e.decisions.iter().map(|d| d[1]).collect()
}

#[test]
fn one_write_two_reads_has_no_inversion() {
    let cs = register_conversation(2, 1);
    let before = reader_observations(&cs.system);
    // Atomic register: (r1, r2) ∈ {(0,0), (1,0) impossible!, (0,1), (1,1)}
    // encoded as r1 + 2·r2 → {0, 2, 3}. Observation 1 = (1, 0) is the
    // forbidden new/old inversion.
    assert_eq!(before, [0i64, 2, 3].into());
    {
        let source = OneUseSource::OneUseBits;
        let bounds = [RegisterBounds {
            obj: 0,
            reads: 2,
            writes: 1,
        }];
        let elim = eliminate_registers(&cs, &bounds, &source).unwrap();
        assert_eq!(elim.one_use_bits, 4);
        let after = reader_observations(&elim.system);
        assert!(
            after.is_subset(&before),
            "array produced non-atomic observation: {after:?} ⊄ {before:?}"
        );
        assert!(
            !after.contains(&1),
            "new/old inversion: the Section 4.3 array must be atomic"
        );
    }
}

#[test]
fn two_writes_three_reads_behaviours_are_contained() {
    let cs = register_conversation(3, 2);
    let before = reader_observations(&cs.system);
    let bounds = [RegisterBounds {
        obj: 0,
        reads: 3,
        writes: 2,
    }];
    let elim = eliminate_registers(&cs, &bounds, &OneUseSource::OneUseBits).unwrap();
    assert_eq!(elim.one_use_bits, 3 * (2 + 1));
    let after = reader_observations(&elim.system);
    assert!(
        after.is_subset(&before),
        "array produced non-atomic observation: {after:?} ⊄ {before:?}"
    );
    // Sanity against vacuity: the array does exhibit multiple behaviours.
    assert!(after.len() >= 3, "exploration too weak: {after:?}");
}

#[test]
fn derived_substrate_also_stays_atomic() {
    // The same containment with one-use bits implemented from TAS
    // objects (the full Theorem 5 stack under the register).
    let tas = Arc::new(canonical::test_and_set(2));
    let recipe = wfc_core::OneUseRecipe::from_type(&tas).unwrap();
    let cs = register_conversation(2, 1);
    let before = reader_observations(&cs.system);
    let bounds = [RegisterBounds {
        obj: 0,
        reads: 2,
        writes: 1,
    }];
    let elim = eliminate_registers(&cs, &bounds, &OneUseSource::Recipe(recipe)).unwrap();
    assert!(elim
        .system
        .objects()
        .iter()
        .all(|o| o.ty().name() == "test_and_set"));
    let after = reader_observations(&elim.system);
    assert!(after.is_subset(&before), "{after:?} ⊄ {before:?}");
    assert!(!after.contains(&1));
}
