//! Error paths of the register-elimination compiler: malformed inputs
//! must be rejected with precise diagnostics, not miscompiled.

use std::sync::Arc;

use wfc_consensus::{ConsensusSystem, SrswRegisterInfo};
use wfc_core::{eliminate_registers, OneUseSource, RegisterBounds, TransformError};
use wfc_explorer::program::{Operand, ProgramBuilder, Var};
use wfc_explorer::{ObjectInstance, System};
use wfc_spec::{canonical, PortId};

fn reg_objects() -> (Arc<wfc_spec::FiniteType>, Vec<ObjectInstance>) {
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    let obj = ObjectInstance::new(
        Arc::clone(&reg),
        v0,
        vec![Some(PortId::new(0)), Some(PortId::new(1))],
    );
    (reg, vec![obj])
}

fn annotation() -> Vec<SrswRegisterInfo> {
    vec![SrswRegisterInfo {
        obj: 0,
        writer_process: 0,
        reader_process: 1,
        init: false,
    }]
}

fn bounds() -> Vec<RegisterBounds> {
    vec![RegisterBounds {
        obj: 0,
        reads: 1,
        writes: 1,
    }]
}

#[test]
fn dynamic_object_index_is_rejected() {
    let (reg, objects) = reg_objects();
    let write1 = reg.invocation_id("write1").unwrap().index() as i64;
    let writer = {
        let mut b = ProgramBuilder::new();
        let which = b.var("which"); // object index from a variable
        b.invoke(Operand::Var(which), write1, None);
        b.ret(0_i64);
        b.build().unwrap()
    };
    let reader = {
        let mut b = ProgramBuilder::new();
        b.ret(0_i64);
        b.build().unwrap()
    };
    let cs = ConsensusSystem {
        system: System::new(objects, vec![writer, reader]),
        registers: annotation(),
        inputs: vec![false, false],
    };
    // The dynamic index *could* point at the register; the compiler must
    // refuse rather than guess.
    let err = eliminate_registers(&cs, &bounds(), &OneUseSource::OneUseBits).unwrap_err();
    assert!(
        matches!(
            err,
            TransformError::DynamicObjectIndex { process: 0, at: 0 }
        ),
        "{err:?}"
    );
}

#[test]
fn reader_writing_the_register_is_rejected() {
    let (reg, objects) = reg_objects();
    let write1 = reg.invocation_id("write1").unwrap().index() as i64;
    let writer = {
        let mut b = ProgramBuilder::new();
        b.ret(0_i64);
        b.build().unwrap()
    };
    // The annotated *reader* performs a write: role violation.
    let rogue_reader = {
        let mut b = ProgramBuilder::new();
        b.invoke(0_i64, write1, None);
        b.ret(0_i64);
        b.build().unwrap()
    };
    let cs = ConsensusSystem {
        system: System::new(objects, vec![writer, rogue_reader]),
        registers: annotation(),
        inputs: vec![false, false],
    };
    let err = eliminate_registers(&cs, &bounds(), &OneUseSource::OneUseBits).unwrap_err();
    assert!(
        matches!(
            err,
            TransformError::WrongRole {
                obj: 0,
                process: 1,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn writer_reading_the_register_is_rejected() {
    let (reg, objects) = reg_objects();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    // The annotated *writer* reads its own register — that would make it
    // a second reader, breaking SRSW.
    let rogue_writer = {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(0_i64, read, Some(r));
        b.ret(r);
        b.build().unwrap()
    };
    let reader = {
        let mut b = ProgramBuilder::new();
        b.ret(0_i64);
        b.build().unwrap()
    };
    let cs = ConsensusSystem {
        system: System::new(objects, vec![rogue_writer, reader]),
        registers: annotation(),
        inputs: vec![false, false],
    };
    let err = eliminate_registers(&cs, &bounds(), &OneUseSource::OneUseBits).unwrap_err();
    assert!(
        matches!(
            err,
            TransformError::WrongRole {
                obj: 0,
                process: 0,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn missing_bounds_default_to_zero_budget() {
    // A register the analysis never saw accessed: zero reads/writes —
    // elimination allocates no bits for it, and programs that indeed
    // never touch it still compile and run.
    let (_reg, objects) = reg_objects();
    let mk = || {
        let mut b = ProgramBuilder::new();
        b.ret(0_i64);
        b.build().unwrap()
    };
    let cs = ConsensusSystem {
        system: System::new(objects, vec![mk(), mk()]),
        registers: annotation(),
        inputs: vec![false, false],
    };
    let out = eliminate_registers(&cs, &[], &OneUseSource::OneUseBits).unwrap();
    assert_eq!(out.one_use_bits, 0);
    assert_eq!(
        out.system.objects().len(),
        0,
        "register removed, nothing added"
    );
    let e = wfc_explorer::explore(&out.system, &wfc_explorer::ExploreOptions::default()).unwrap();
    assert!(e.decisions_agree());
}

#[test]
fn non_wait_free_input_fails_bounds_analysis() {
    use wfc_core::access_bounds;
    use wfc_explorer::program::BinOp;
    // A protocol whose reader spins on the register: no access bounds
    // exist (König dichotomy), so the pipeline refuses at step 1.
    let (reg, objects) = reg_objects();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let r1 = reg.response_id("1").unwrap().index() as i64;
    let build = move |_inputs: &[bool]| {
        let writer = {
            let mut b = ProgramBuilder::new();
            b.ret(0_i64);
            b.build().unwrap()
        };
        let spinner = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let t = b.var("t");
            let top = b.fresh_label();
            b.bind(top);
            b.invoke(0_i64, read, Some(r));
            b.compute(t, r, BinOp::Eq, r1);
            b.jump_if_zero(t, top);
            b.ret(0_i64);
            b.build().unwrap()
        };
        ConsensusSystem {
            system: System::new(objects.clone(), vec![writer, spinner]),
            registers: annotation(),
            inputs: vec![false, false],
        }
    };
    let err = access_bounds(2, build, &wfc_explorer::ExploreOptions::default()).unwrap_err();
    assert_eq!(err, wfc_explorer::ExplorerError::NotWaitFree);
}

#[test]
fn var_indices_survive_rewriting() {
    // Regression guard: the rewriter recreates original variables first,
    // so `Var(k)` operands keep their meaning. A program whose decision
    // flows through several variables must decide identically after a
    // no-register rewrite.
    let (_reg, objects) = reg_objects();
    let program = {
        let mut b = ProgramBuilder::new();
        let a = b.var_init("a", 5);
        let c = b.var("c");
        b.compute(c, a, wfc_explorer::program::BinOp::Add, 2_i64);
        b.ret(Operand::Var(Var(1)));
        b.build().unwrap()
    };
    let cs = ConsensusSystem {
        system: System::new(objects, vec![program.clone(), program]),
        registers: annotation(),
        inputs: vec![false, false],
    };
    let out = eliminate_registers(&cs, &bounds(), &OneUseSource::OneUseBits).unwrap();
    let e = wfc_explorer::explore(&out.system, &wfc_explorer::ExploreOptions::default()).unwrap();
    assert_eq!(e.decisions.iter().next().unwrap(), &vec![7, 7]);
}
