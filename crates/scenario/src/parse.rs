//! The strict line-oriented scenario parser.
//!
//! Directives appear in a fixed order — `scenario`, `type`, optional
//! `protocol`, optional `budget`, then one or more `query` lines — and
//! every violation is a typed [`ParseError`] carrying the 1-based line
//! and column of the offending token. Blank lines and full-line `#`
//! comments are ignored outside `type fsm … end` blocks.

use std::fmt;
use std::sync::Arc;

use wfc_spec::canonical;

use crate::model::{
    builtin, canonical_builtin_name, Expectation, Scenario, ScenarioBudget, ScenarioQuery, TypeDecl,
};

/// A scenario parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (byte offset within the line) of the offending
    /// token.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, col: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        col,
        message: message.into(),
    }
}

/// The column of `word` within `line_text` (1-based; first occurrence).
fn col_of(line_text: &str, word: &str) -> usize {
    line_text.find(word).map_or(0, |i| i) + 1
}

const QUERY_KINDS: [&str; 6] = [
    "classify",
    "witness",
    "access-bounds",
    "theorem5",
    "verify-consensus",
    "sched",
];

fn split_kv<'a>(
    word: &'a str,
    line_no: usize,
    line_text: &str,
) -> Result<(&'a str, &'a str), ParseError> {
    word.split_once('=').ok_or_else(|| {
        err(
            line_no,
            col_of(line_text, word),
            format!("expected key=value, got {word:?}"),
        )
    })
}

fn parse_u64(key: &str, value: &str, line_no: usize, line_text: &str) -> Result<u64, ParseError> {
    value.parse().map_err(|_| {
        err(
            line_no,
            col_of(line_text, value),
            format!("{key}={value:?} is not a number"),
        )
    })
}

/// One numbered, significant (non-blank, non-comment) line.
struct Line<'a> {
    no: usize,
    text: &'a str,
}

/// Parses one scenario file.
///
/// # Errors
///
/// [`ParseError`] with the line and column of the first violation:
/// unknown directives or directives out of order, unknown built-in or
/// query-kind names, malformed or unknown `budget` words, bad
/// expectations, and — for embedded FSM blocks — `wfc-spec` syntax
/// errors (re-anchored to file coordinates), non-deterministic
/// transitions, and states unreachable from the first-declared one.
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseError> {
    let all_lines: Vec<&str> = text.lines().collect();
    let mut lines = Vec::new();
    let mut i = 0usize;
    while i < all_lines.len() {
        let raw = all_lines[i];
        let no = i + 1;
        i += 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        lines.push(Line { no, text: raw });
    }
    let mut iter = lines.into_iter().peekable();

    // scenario NAME
    let header = iter
        .next()
        .ok_or_else(|| err(1, 1, "empty scenario; expected `scenario NAME`"))?;
    let mut words = header.text.split_whitespace();
    if words.next() != Some("scenario") {
        return Err(err(header.no, 1, "expected `scenario NAME` first"));
    }
    let name = words
        .next()
        .ok_or_else(|| err(header.no, header.text.len() + 1, "missing scenario name"))?;
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(err(
            header.no,
            col_of(header.text, name),
            format!("scenario name {name:?} may use only [A-Za-z0-9._-]"),
        ));
    }
    if let Some(extra) = words.next() {
        return Err(err(
            header.no,
            col_of(header.text, extra),
            format!("unexpected word {extra:?} after the scenario name"),
        ));
    }

    // type …
    let ty_line = iter
        .next()
        .ok_or_else(|| err(header.no + 1, 1, "expected a `type` declaration"))?;
    let (decl, resolved) = parse_type_decl(&ty_line, &all_lines, &mut iter)?;

    // [protocol NAME] [budget …] then queries
    let mut protocol = None;
    let mut budget = ScenarioBudget::default();
    let mut queries = Vec::new();
    for line in iter {
        let mut words = line.text.split_whitespace();
        let directive = words.next().expect("significant lines are non-empty");
        match directive {
            "protocol" => {
                if protocol.is_some() {
                    return Err(err(line.no, 1, "duplicate `protocol` directive"));
                }
                if !queries.is_empty() || !budget.is_empty() {
                    return Err(err(
                        line.no,
                        1,
                        "`protocol` must precede `budget` and `query`",
                    ));
                }
                let p = words
                    .next()
                    .ok_or_else(|| err(line.no, line.text.len() + 1, "missing protocol name"))?;
                if let Some(extra) = words.next() {
                    return Err(err(
                        line.no,
                        col_of(line.text, extra),
                        format!("unexpected word {extra:?} after the protocol name"),
                    ));
                }
                protocol = Some(p.to_owned());
            }
            "budget" => {
                if !budget.is_empty() {
                    return Err(err(line.no, 1, "duplicate `budget` directive"));
                }
                if !queries.is_empty() {
                    return Err(err(line.no, 1, "`budget` must precede the queries"));
                }
                let mut any = false;
                for word in words {
                    any = true;
                    let (key, value) = split_kv(word, line.no, line.text)?;
                    let n = parse_u64(key, value, line.no, line.text)?;
                    match key {
                        "configs" => budget.configs = Some(n),
                        "depth" => budget.depth = Some(n),
                        "schedules" => budget.schedules = Some(n),
                        "steps" => budget.steps = Some(n),
                        "wall-ms" => budget.wall_ms = Some(n),
                        _ => {
                            return Err(err(
                                line.no,
                                col_of(line.text, word),
                                format!(
                                    "unknown budget key {key:?}; expected configs, depth, \
                                     schedules, steps or wall-ms"
                                ),
                            ))
                        }
                    }
                }
                if !any {
                    return Err(err(
                        line.no,
                        line.text.len() + 1,
                        "empty `budget` directive; give at least one key=value",
                    ));
                }
            }
            "query" => queries.push(parse_query(&line, words)?),
            other => {
                return Err(err(
                    line.no,
                    1,
                    format!("unknown directive {other:?}; expected protocol, budget or query"),
                ))
            }
        }
    }
    if queries.is_empty() {
        return Err(err(
            all_lines.len().max(1),
            1,
            "scenario declares no queries; give at least one `query` line",
        ));
    }
    Ok(Scenario {
        name: name.to_owned(),
        ty: decl,
        resolved: Arc::new(resolved),
        protocol,
        budget,
        queries,
    })
}

fn parse_query(
    line: &Line<'_>,
    words: std::str::SplitWhitespace<'_>,
) -> Result<ScenarioQuery, ParseError> {
    let mut words = words;
    let kind = words
        .next()
        .ok_or_else(|| err(line.no, line.text.len() + 1, "missing query kind"))?;
    if !QUERY_KINDS.contains(&kind) {
        return Err(err(
            line.no,
            col_of(line.text, kind),
            format!(
                "unknown query kind {kind:?}; expected one of {}",
                QUERY_KINDS.join(", ")
            ),
        ));
    }
    let mut expect = None;
    let mut kvs: Vec<(String, String)> = Vec::new();
    for word in words {
        let (key, value) = split_kv(word, line.no, line.text)?;
        if key == "expect" {
            let bad = |allowed: &str| {
                err(
                    line.no,
                    col_of(line.text, value),
                    format!("expect={value:?} is not valid for {kind}; expected {allowed}"),
                )
            };
            expect = Some(match (kind, value) {
                ("classify" | "witness", "trivial") => Expectation::Trivial,
                ("classify" | "witness", "non-trivial") => Expectation::NonTrivial,
                ("classify" | "witness", _) => return Err(bad("trivial or non-trivial")),
                ("theorem5" | "verify-consensus", "holds") => Expectation::Holds,
                ("theorem5" | "verify-consensus", _) => return Err(bad("holds")),
                ("sched", "pass") => Expectation::Pass,
                ("sched", "violation") => Expectation::Violation,
                ("sched", _) => return Err(bad("pass or violation")),
                _ => {
                    return Err(err(
                        line.no,
                        col_of(line.text, word),
                        format!("{kind} queries do not take an expectation"),
                    ))
                }
            });
        } else if kind == "sched" {
            // Sched settings pass through to the checker (which
            // validates them); last write wins, like the checker.
            kvs.retain(|(k, _)| k != key);
            kvs.push((key.to_owned(), value.to_owned()));
        } else {
            return Err(err(
                line.no,
                col_of(line.text, word),
                format!("unknown setting {key:?} for a {kind} query"),
            ));
        }
    }
    if kind == "sched" && !kvs.iter().any(|(k, _)| k == "target") {
        return Err(err(
            line.no,
            col_of(line.text, kind),
            "sched queries need a target= setting",
        ));
    }
    kvs.sort();
    Ok(ScenarioQuery {
        kind: kind.to_owned(),
        words: kvs,
        expect,
        line: line.no,
    })
}

fn parse_type_decl(
    ty_line: &Line<'_>,
    all_lines: &[&str],
    rest: &mut std::iter::Peekable<std::vec::IntoIter<Line<'_>>>,
) -> Result<(TypeDecl, wfc_spec::FiniteType), ParseError> {
    let mut words = ty_line.text.split_whitespace();
    if words.next() != Some("type") {
        return Err(err(ty_line.no, 1, "expected a `type` declaration"));
    }
    let family = words.next().ok_or_else(|| {
        err(
            ty_line.no,
            ty_line.text.len() + 1,
            "missing type family; expected builtin, shift, mpr or fsm",
        )
    })?;
    match family {
        "builtin" => {
            let name = words
                .next()
                .ok_or_else(|| err(ty_line.no, ty_line.text.len() + 1, "missing builtin name"))?;
            if let Some(extra) = words.next() {
                return Err(err(
                    ty_line.no,
                    col_of(ty_line.text, extra),
                    format!("unexpected word {extra:?} after the builtin name"),
                ));
            }
            let resolved = builtin(name).ok_or_else(|| {
                err(
                    ty_line.no,
                    col_of(ty_line.text, name),
                    format!(
                        "unknown builtin {name:?}; known: register2, test_and_set, queue, \
                         stack, swap, fetch_and_add, compare_and_swap, sticky_bit, \
                         consensus, mute, one_use_bit"
                    ),
                )
            })?;
            Ok((
                TypeDecl::Builtin {
                    name: canonical_builtin_name(name),
                },
                resolved,
            ))
        }
        "shift" | "mpr" => {
            let (param_key, max, build): (_, usize, fn(usize, usize) -> wfc_spec::FiniteType) =
                if family == "shift" {
                    ("w", 8, canonical::shift_register)
                } else {
                    ("k", 8, canonical::mpr)
                };
            let mut param = None;
            let mut ports = 2usize;
            for word in words {
                let (key, value) = split_kv(word, ty_line.no, ty_line.text)?;
                let n = parse_u64(key, value, ty_line.no, ty_line.text)? as usize;
                if key == param_key {
                    if !(1..=max).contains(&n) {
                        return Err(err(
                            ty_line.no,
                            col_of(ty_line.text, value),
                            format!("{param_key}={n} is out of range (1..={max})"),
                        ));
                    }
                    param = Some(n);
                } else if key == "ports" {
                    if !(2..=8).contains(&n) {
                        return Err(err(
                            ty_line.no,
                            col_of(ty_line.text, value),
                            format!("ports={n} is out of range (2..=8)"),
                        ));
                    }
                    ports = n;
                } else {
                    return Err(err(
                        ty_line.no,
                        col_of(ty_line.text, word),
                        format!(
                            "unknown {family} parameter {key:?}; expected {param_key} or ports"
                        ),
                    ));
                }
            }
            let param = param.ok_or_else(|| {
                err(
                    ty_line.no,
                    ty_line.text.len() + 1,
                    format!("missing {param_key}= parameter for {family}"),
                )
            })?;
            let resolved = build(param, ports);
            let decl = if family == "shift" {
                TypeDecl::Shift { w: param, ports }
            } else {
                TypeDecl::Mpr { k: param, ports }
            };
            Ok((decl, resolved))
        }
        "fsm" => {
            if let Some(extra) = words.next() {
                return Err(err(
                    ty_line.no,
                    col_of(ty_line.text, extra),
                    format!("unexpected word {extra:?} after `type fsm`"),
                ));
            }
            parse_fsm_block(ty_line.no, all_lines, rest)
        }
        other => Err(err(
            ty_line.no,
            col_of(ty_line.text, other),
            format!("unknown type family {other:?}; expected builtin, shift, mpr or fsm"),
        )),
    }
}

/// Collects the raw lines of a `type fsm … end` block (the block is
/// taken verbatim from the source, comments and blank lines included,
/// so `wfc-spec` line numbers map one-to-one), parses it, and enforces
/// the scenario language's determinism requirements.
fn parse_fsm_block(
    fsm_line_no: usize,
    all_lines: &[&str],
    rest: &mut std::iter::Peekable<std::vec::IntoIter<Line<'_>>>,
) -> Result<(TypeDecl, wfc_spec::FiniteType), ParseError> {
    // Find the `end` sentinel among the significant lines; the block
    // body is everything between, taken from the raw source.
    let mut end_no = None;
    while let Some(line) = rest.peek() {
        if line.text.trim() == "end" {
            end_no = Some(line.no);
            rest.next();
            break;
        }
        rest.next();
    }
    let end_no =
        end_no.ok_or_else(|| err(fsm_line_no, 1, "`type fsm` block is missing its `end`"))?;
    let block: Vec<&str> = all_lines[fsm_line_no..end_no - 1].to_vec();
    let block_text = block.join("\n");
    let ty = wfc_spec::text::parse_type(&block_text).map_err(|e| match e {
        wfc_spec::text::ParseTypeError::Syntax { line, message } => {
            err(fsm_line_no + line, 1, message)
        }
        other => err(fsm_line_no, 1, other.to_string()),
    })?;
    check_fsm_determinism(&block, fsm_line_no)?;
    check_fsm_reachability(&block, fsm_line_no)?;
    let canonical = wfc_spec::text::format_type(&ty);
    Ok((TypeDecl::Fsm { canonical }, ty))
}

/// Rejects a second transition for any `(state, port, invocation)` key
/// (nondeterminism is legal in `wfc-spec`, but scenarios require
/// deterministic machines — Theorem 5's hypothesis). Ports overlap when
/// equal or when either is the oblivious `*`.
fn check_fsm_determinism(block: &[&str], fsm_line_no: usize) -> Result<(), ParseError> {
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for (off, raw) in block.iter().enumerate() {
        let mut words = raw.split_whitespace();
        if words.next() != Some("delta") {
            continue;
        }
        let (Some(state), Some(port), Some(inv)) = (words.next(), words.next(), words.next())
        else {
            continue; // malformed delta lines were already rejected by parse_type
        };
        let overlap = |a: &str, b: &str| a == b || a == "*" || b == "*";
        if let Some((_, p, _)) = seen
            .iter()
            .find(|(s, p, i)| s == state && i == inv && overlap(p, port))
        {
            return Err(err(
                fsm_line_no + off + 1,
                col_of(raw, state),
                format!(
                    "non-deterministic transition: ({state}, port {port}, {inv}) already has \
                     a transition (port {p}); scenario types must be deterministic"
                ),
            ));
        }
        seen.push((state.to_owned(), port.to_owned(), inv.to_owned()));
    }
    Ok(())
}

/// Requires every declared state to be reachable from the
/// first-declared (initial) state through the transition graph.
fn check_fsm_reachability(block: &[&str], fsm_line_no: usize) -> Result<(), ParseError> {
    let mut states: Vec<&str> = Vec::new();
    let mut states_line = (0usize, "");
    let mut edges: Vec<(&str, &str)> = Vec::new();
    for (off, raw) in block.iter().enumerate() {
        let mut words = raw.split_whitespace();
        match words.next() {
            Some("states") => {
                states = words.collect();
                states_line = (fsm_line_no + off + 1, raw);
            }
            Some("delta") => {
                let src = words.next();
                let dst = words.clone().skip_while(|w| *w != "->").nth(1);
                if let (Some(src), Some(dst)) = (src, dst) {
                    edges.push((src, dst));
                }
            }
            _ => {}
        }
    }
    let Some(&init) = states.first() else {
        return Ok(()); // no states line: parse_type already rejected it
    };
    let mut reached = vec![init];
    let mut frontier = vec![init];
    while let Some(s) = frontier.pop() {
        for &(src, dst) in &edges {
            if src == s && !reached.contains(&dst) {
                reached.push(dst);
                frontier.push(dst);
            }
        }
    }
    if let Some(orphan) = states.iter().find(|s| !reached.contains(s)) {
        return Err(err(
            states_line.0,
            col_of(states_line.1, orphan),
            format!(
                "state {orphan:?} is unreachable from the initial state {init:?}; scenario \
                 FSMs must not declare dead states"
            ),
        ));
    }
    Ok(())
}
