use wfc_obs::json::Json;

use crate::*;

const SHIFT2: &str = "\
# the worked example from the README
scenario shift-w2
type shift w=2 ports=2
query classify expect=non-trivial
query verify-consensus expect=holds
";

#[test]
fn parses_and_canonicalizes_the_worked_example() {
    let sc = parse_scenario(SHIFT2).unwrap();
    assert_eq!(sc.name, "shift-w2");
    assert_eq!(sc.ty, TypeDecl::Shift { w: 2, ports: 2 });
    assert_eq!(sc.resolved.name(), "shift2");
    assert_eq!(sc.queries.len(), 2);
    assert_eq!(
        sc.canonical_text(),
        "scenario shift-w2\ntype shift w=2 ports=2\nquery classify expect=non-trivial\n\
         query verify-consensus expect=holds\n"
    );
    // The canonical text re-parses to the same scenario (fixed point).
    let again = parse_scenario(&sc.canonical_text()).unwrap();
    assert_eq!(again.canonical_text(), sc.canonical_text());
}

#[test]
fn respelled_scenarios_canonicalize_equally() {
    // Alias, implicit ports, comments, blank lines, word order.
    let respelled = "\n\
# same scenario, spelled differently
scenario shift-w2

type shift w=2
query classify expect=non-trivial
query verify-consensus expect=holds
";
    let a = parse_scenario(SHIFT2).unwrap();
    let b = parse_scenario(respelled).unwrap();
    assert_eq!(a.canonical_text(), b.canonical_text());

    let tas_a = parse_scenario("scenario t\ntype builtin tas\nquery classify\n").unwrap();
    let tas_b = parse_scenario("scenario t\ntype builtin test_and_set\nquery classify\n").unwrap();
    assert_eq!(tas_a.canonical_text(), tas_b.canonical_text());
}

#[test]
fn sched_words_sort_and_dedup_into_canonical_form() {
    let sc = parse_scenario(
        "scenario s\ntype builtin register2\n\
         query sched mode=dfs target=srsw budget=100 budget=50 expect=pass\n",
    )
    .unwrap();
    assert_eq!(
        sc.canonical_text(),
        "scenario s\ntype builtin register2\n\
         query sched budget=50 mode=dfs target=srsw expect=pass\n"
    );
    let lowered = sc.lower();
    assert_eq!(
        lowered,
        vec![LoweredQuery::Sched {
            spec_text: "srsw budget=50 mode=dfs".to_owned()
        }]
    );
}

#[test]
fn scenario_budgets_flow_into_sched_specs_without_clobbering() {
    let sc = parse_scenario(
        "scenario s\ntype builtin register2\nbudget schedules=777 steps=88\n\
         query sched target=srsw\nquery sched target=srsw budget=5\n",
    )
    .unwrap();
    let lowered = sc.lower();
    assert_eq!(
        lowered[0],
        LoweredQuery::Sched {
            spec_text: "srsw budget=777 steps=88".to_owned()
        }
    );
    assert_eq!(
        lowered[1],
        LoweredQuery::Sched {
            spec_text: "srsw budget=5 steps=88".to_owned()
        }
    );
}

#[test]
fn fsm_blocks_parse_and_normalize() {
    let text = "\
scenario sticky
type fsm
type sticky2 ports 2
states bot zero one
invocations w0 w1
responses r0 r1

# once set, the bit never changes
delta bot * w0 -> zero r0
delta bot * w1 -> one r1
delta zero * w0 -> zero r0
delta zero * w1 -> zero r0
delta one * w0 -> one r1
delta one * w1 -> one r1
end
query classify expect=non-trivial
";
    let sc = parse_scenario(text).unwrap();
    assert_eq!(sc.resolved.name(), "sticky2");
    assert!(sc.resolved.is_deterministic());
    // The canonical text embeds the format_type rendering and re-parses.
    let again = parse_scenario(&sc.canonical_text()).unwrap();
    assert_eq!(again.canonical_text(), sc.canonical_text());
}

#[test]
fn unknown_operation_in_fsm_is_a_typed_error_with_position() {
    let text = "\
scenario bad
type fsm
type t ports 1
states s
invocations i
responses r
delta s 0 mystery -> s r
end
query classify
";
    let e = parse_scenario(text).unwrap_err();
    // The delta line is file line 7.
    assert_eq!(e.line, 7, "{e}");
    assert!(e.message.contains("mystery"), "{e}");
}

#[test]
fn non_deterministic_transition_is_rejected_with_position() {
    let text = "\
scenario bad
type fsm
type t ports 1
states s u
invocations i
responses r
delta s 0 i -> u r
delta u 0 i -> u r
delta s * i -> s r
end
query classify
";
    let e = parse_scenario(text).unwrap_err();
    assert_eq!(e.line, 9, "{e}");
    assert_eq!(e.col, 7, "{e}");
    assert!(e.message.contains("non-deterministic"), "{e}");
}

#[test]
fn unreachable_state_is_rejected_with_position() {
    let text = "\
scenario bad
type fsm
type t ports 1
states s orphan
invocations i
responses r
delta s 0 i -> s r
delta orphan 0 i -> orphan r
end
query classify
";
    let e = parse_scenario(text).unwrap_err();
    assert_eq!(e.line, 4, "{e}");
    assert_eq!(e.col, 10, "{e}");
    assert!(e.message.contains("unreachable"), "{e}");
}

#[test]
fn bad_budget_words_are_rejected_with_position() {
    let e = parse_scenario("scenario b\ntype builtin mute\nbudget zoom=3\nquery classify\n")
        .unwrap_err();
    assert_eq!((e.line, e.col), (3, 8), "{e}");
    assert!(e.message.contains("unknown budget key"), "{e}");

    let e = parse_scenario("scenario b\ntype builtin mute\nbudget configs=lots\nquery classify\n")
        .unwrap_err();
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("not a number"), "{e}");

    let e = parse_scenario("scenario b\ntype builtin mute\nbudget\nquery classify\n").unwrap_err();
    assert!(e.message.contains("empty `budget`"), "{e}");
}

#[test]
fn unknown_names_and_kinds_are_rejected_with_position() {
    let e = parse_scenario("scenario b\ntype builtin nonesuch\nquery classify\n").unwrap_err();
    assert_eq!((e.line, e.col), (2, 14), "{e}");
    assert!(e.message.contains("unknown builtin"), "{e}");

    let e = parse_scenario("scenario b\ntype builtin mute\nquery frobnicate\n").unwrap_err();
    assert_eq!((e.line, e.col), (3, 7), "{e}");
    assert!(e.message.contains("unknown query kind"), "{e}");

    let e =
        parse_scenario("scenario b\ntype builtin mute\nquery classify expect=holds\n").unwrap_err();
    assert!(e.message.contains("trivial or non-trivial"), "{e}");

    let e = parse_scenario("scenario b\ntype builtin mute\nquery sched mode=dfs\n").unwrap_err();
    assert!(e.message.contains("target="), "{e}");

    let e = parse_scenario("scenario b\ntype shift w=9\nquery classify\n").unwrap_err();
    assert!(e.message.contains("out of range"), "{e}");
}

#[test]
fn directive_order_is_enforced() {
    let e = parse_scenario("scenario b\ntype builtin mute\nquery classify\nbudget configs=5\n")
        .unwrap_err();
    assert!(e.message.contains("precede"), "{e}");
    let e = parse_scenario("scenario b\ntype builtin mute\n").unwrap_err();
    assert!(e.message.contains("no queries"), "{e}");
    let e = parse_scenario("type builtin mute\nquery classify\n").unwrap_err();
    assert!(e.message.contains("scenario NAME"), "{e}");
}

#[test]
fn expectations_check_result_documents() {
    let trivial = Json::obj(vec![("classification", Json::Str("trivial".to_owned()))]);
    assert!(Expectation::Trivial.check("classify", &trivial));
    assert!(!Expectation::NonTrivial.check("classify", &trivial));

    let no_witness = Json::obj(vec![("witness", Json::Null)]);
    assert!(Expectation::Trivial.check("witness", &no_witness));

    let holds = Json::obj(vec![("holds", Json::Bool(true))]);
    assert!(Expectation::Holds.check("theorem5", &holds));
    assert!(!Expectation::Holds.check("theorem5", &Json::obj(vec![])));

    let pass = Json::obj(vec![("verdict", Json::Str("pass".to_owned()))]);
    assert!(Expectation::Pass.check("sched", &pass));
    assert!(Expectation::Violation.check(
        "sched",
        &Json::obj(vec![("verdict", Json::Str("violation".to_owned()))])
    ));
}

#[test]
fn result_docs_assemble_and_validate() {
    let sc = parse_scenario(SHIFT2).unwrap();
    let results = vec![
        Json::obj(vec![(
            "classification",
            Json::Str("non-trivial".to_owned()),
        )]),
        Json::obj(vec![("holds", Json::Bool(true))]),
    ];
    let doc = sc.result_doc(&results);
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(doc.get("pass"), Some(&Json::Bool(true)));
    validate_scenario_json(&doc).unwrap();

    // An expectation failure is data, not an error — and flips `pass`.
    let results = vec![
        Json::obj(vec![("classification", Json::Str("trivial".to_owned()))]),
        Json::obj(vec![("holds", Json::Bool(true))]),
    ];
    let doc = sc.result_doc(&results);
    assert_eq!(doc.get("pass"), Some(&Json::Bool(false)));
    validate_scenario_json(&doc).unwrap();

    // The validator catches a forged top-level verdict.
    let mut forged = doc.clone();
    if let Json::Obj(pairs) = &mut forged {
        for (k, v) in pairs.iter_mut() {
            if k == "pass" {
                *v = Json::Bool(true);
            }
        }
    }
    assert!(validate_scenario_json(&forged).is_err());
}

#[test]
fn builtins_resolve_to_the_canonical_instances() {
    for name in [
        "register2",
        "test_and_set",
        "queue",
        "stack",
        "swap",
        "fetch_and_add",
        "compare_and_swap",
        "sticky_bit",
        "consensus",
        "mute",
        "one_use_bit",
    ] {
        assert!(builtin(name).is_some(), "{name}");
    }
    assert!(builtin("nonesuch").is_none());
}
