//! The `wfc-scenario/v1` result-document schema and its validator
//! (consumed by `report --check`).

use wfc_obs::json::Json;

/// The schema identifier carried by every scenario result document.
pub const SCHEMA: &str = "wfc-scenario/v1";

fn expect_str(doc: &Json, field: &str) -> Result<(), String> {
    match doc.get(field) {
        Some(Json::Str(_)) => Ok(()),
        Some(_) => Err(format!("`{field}` is not a string")),
        None => Err(format!("missing `{field}`")),
    }
}

fn expect_bool(doc: &Json, field: &str) -> Result<(), String> {
    match doc.get(field) {
        Some(Json::Bool(_)) => Ok(()),
        Some(_) => Err(format!("`{field}` is not a bool")),
        None => Err(format!("missing `{field}`")),
    }
}

/// Validates a `wfc-scenario/v1` result document: schema header, the
/// scenario identity fields, a well-formed `queries` array (each entry
/// carrying `kind`, `expect`, `pass`, `result`), and the invariant that
/// the top-level `pass` is the conjunction of the per-query ones.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_scenario_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing `schema`".to_owned()),
    }
    expect_str(doc, "scenario")?;
    expect_str(doc, "type")?;
    expect_str(doc, "canonical")?;
    match doc.get("protocol") {
        Some(Json::Str(_) | Json::Null) => {}
        Some(_) => return Err("`protocol` is neither a string nor null".to_owned()),
        None => return Err("missing `protocol`".to_owned()),
    }
    expect_bool(doc, "pass")?;
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array `queries`")?;
    if queries.is_empty() {
        return Err("`queries` is empty".to_owned());
    }
    let mut all_pass = true;
    for (i, q) in queries.iter().enumerate() {
        let at = |m: String| format!("queries[{i}]: {m}");
        expect_str(q, "kind").map_err(at)?;
        let at = |m: String| format!("queries[{i}]: {m}");
        expect_bool(q, "pass").map_err(at)?;
        match q.get("expect") {
            Some(Json::Str(_) | Json::Null) => {}
            _ => return Err(format!("queries[{i}]: missing or mistyped `expect`")),
        }
        match q.get("result") {
            Some(Json::Obj(_)) => {}
            _ => return Err(format!("queries[{i}]: missing or non-object `result`")),
        }
        all_pass &= q.get("pass") == Some(&Json::Bool(true));
    }
    if (doc.get("pass") == Some(&Json::Bool(true))) != all_pass {
        return Err("top-level `pass` disagrees with the per-query verdicts".to_owned());
    }
    Ok(())
}
