//! # `wfc-scenario` — the scenario description language
//!
//! One text file describes a shared-object type (a built-in family
//! reference like `shift w=2` or an embedded finite-state machine), an
//! optional protocol label, optional budgets, and a list of queries to
//! run against it. The language makes breadth cheap: pinning the next
//! type's position in the hierarchy is a scenario file, not a Rust
//! module.
//!
//! ```text
//! # 2-bit shift register: consensus number exactly 2 (Aspnes).
//! scenario shift-w2
//! type shift w=2 ports=2
//! query classify expect=non-trivial
//! query witness expect=non-trivial
//! query verify-consensus expect=holds
//! query theorem5 expect=holds
//! ```
//!
//! The crate owns the **language**: a strict line-oriented parser with
//! typed line/column errors ([`ParseError`]), a canonicalizer
//! ([`Scenario::canonical_text`] — the cache identity, exactly like
//! `SchedSpec::canonical_text`), the lowering onto the engine's query
//! kinds ([`Scenario::lower`]), and the result-document schema
//! ([`SCHEMA`], [`result_doc`](Scenario::result_doc),
//! [`validate_scenario_json`]). **Execution** lives in `wfc-service`,
//! which maps each lowered step onto its single `run_query` path — that
//! is what makes scenario results byte-identical whether served, run by
//! `wfc scenario run`, or produced by a direct library call.
//!
//! Determinism requirements for embedded FSM types are enforced at parse
//! time: every `(state, port, invocation)` key may have at most one
//! transition, and every declared state must be reachable from the
//! first-declared (initial) one.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod model;
mod parse;
mod report;
#[cfg(test)]
mod tests;

pub use model::{
    builtin, Expectation, LoweredQuery, Scenario, ScenarioBudget, ScenarioQuery, TypeDecl,
};
pub use parse::{parse_scenario, ParseError};
pub use report::{validate_scenario_json, SCHEMA};
