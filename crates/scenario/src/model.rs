//! The scenario model: AST, canonicalization, and lowering.

use std::sync::Arc;

use wfc_obs::json::Json;
use wfc_spec::text::format_type;
use wfc_spec::{canonical, FiniteType};

/// Resolves a built-in type family name to its canonical small-arity
/// representative (the same instances `wfc-hierarchy`'s catalog and the
/// service's protocol registry use). Aliases (`tas`, `cas`, `register`)
/// resolve to the same instance as their canonical spelling.
pub fn builtin(name: &str) -> Option<FiniteType> {
    Some(match name {
        "register" | "register2" => canonical::boolean_register(2),
        "test_and_set" | "tas" => canonical::test_and_set(2),
        "queue" => canonical::queue(1, 1, 2),
        "stack" => canonical::stack(1, 1, 2),
        "swap" => canonical::swap(2, 2),
        "fetch_and_add" => canonical::fetch_and_add(2, 2),
        "compare_and_swap" | "cas" => canonical::compare_and_swap(3, 3),
        "sticky_bit" => canonical::sticky_bit(3),
        "consensus" => canonical::consensus(2),
        "mute" => canonical::mute(2),
        "one_use_bit" => canonical::one_use_bit(),
        _ => return None,
    })
}

/// The canonical spelling of a built-in name (aliases collapse, so
/// respelled scenarios canonicalize — and therefore cache — equally).
pub(crate) fn canonical_builtin_name(name: &str) -> &'static str {
    match name {
        "register" | "register2" => "register2",
        "test_and_set" | "tas" => "test_and_set",
        "queue" => "queue",
        "stack" => "stack",
        "swap" => "swap",
        "fetch_and_add" => "fetch_and_add",
        "compare_and_swap" | "cas" => "compare_and_swap",
        "sticky_bit" => "sticky_bit",
        "consensus" => "consensus",
        "mute" => "mute",
        "one_use_bit" => "one_use_bit",
        _ => unreachable!("parse validated the builtin name"),
    }
}

/// The type declaration of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeDecl {
    /// `type builtin NAME` — a canonical zoo member (canonical
    /// spelling; aliases are resolved at parse time).
    Builtin {
        /// Canonical built-in name.
        name: &'static str,
    },
    /// `type shift w=W [ports=P]` — a `w`-bit shift register.
    Shift {
        /// Register width in bits (1..=8).
        w: usize,
        /// Port count (default 2).
        ports: usize,
    },
    /// `type mpr k=K [ports=P]` — the MPR `k`-sliding-window register.
    Mpr {
        /// Window size (1..=8).
        k: usize,
        /// Port count (default 2).
        ports: usize,
    },
    /// `type fsm … end` — an embedded `wfc-spec` text block, parsed,
    /// determinism-checked, and stored in canonical form.
    Fsm {
        /// `format_type` rendering of the parsed block (canonical).
        canonical: String,
    },
}

/// Scenario-level budgets. Every field is optional; set fields override
/// the request-level `QueryOptions` (for the exploration queries) or are
/// merged into sched specs that do not set their own, and are part of
/// the canonical text — budgets change results, so they are cache
/// identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScenarioBudget {
    /// `configs=` — explorer `max_configs`.
    pub configs: Option<u64>,
    /// `depth=` — explorer `max_depth`.
    pub depth: Option<u64>,
    /// `schedules=` — sched-query schedule budget (`budget=` word).
    pub schedules: Option<u64>,
    /// `steps=` — sched-query per-execution step cap.
    pub steps: Option<u64>,
    /// `wall-ms=` — wall-clock allowance for the whole scenario run.
    pub wall_ms: Option<u64>,
}

impl ScenarioBudget {
    /// True when no budget key is set (the `budget` line is omitted
    /// from the canonical text).
    pub fn is_empty(&self) -> bool {
        *self == ScenarioBudget::default()
    }

    fn canonical_words(&self) -> String {
        let mut words = Vec::new();
        if let Some(v) = self.configs {
            words.push(format!("configs={v}"));
        }
        if let Some(v) = self.depth {
            words.push(format!("depth={v}"));
        }
        if let Some(v) = self.schedules {
            words.push(format!("schedules={v}"));
        }
        if let Some(v) = self.steps {
            words.push(format!("steps={v}"));
        }
        if let Some(v) = self.wall_ms {
            words.push(format!("wall-ms={v}"));
        }
        words.join(" ")
    }
}

/// What a query line asserts about its result document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// `expect=trivial` — `classify` reports case 1 / `witness` finds
    /// no non-trivial pair.
    Trivial,
    /// `expect=non-trivial` — the complement.
    NonTrivial,
    /// `expect=holds` — `theorem5` / `verify-consensus` report
    /// `holds: true`.
    Holds,
    /// `expect=pass` — `sched` reports verdict `pass`.
    Pass,
    /// `expect=violation` — `sched` reports verdict `violation`.
    Violation,
}

impl Expectation {
    /// The canonical word.
    pub fn as_str(self) -> &'static str {
        match self {
            Expectation::Trivial => "trivial",
            Expectation::NonTrivial => "non-trivial",
            Expectation::Holds => "holds",
            Expectation::Pass => "pass",
            Expectation::Violation => "violation",
        }
    }

    /// Checks this expectation against a query's result document.
    pub fn check(self, kind: &str, result: &Json) -> bool {
        match self {
            Expectation::Trivial | Expectation::NonTrivial => {
                let trivial = if kind == "witness" {
                    result.get("witness") == Some(&Json::Null)
                } else {
                    result.get("classification").and_then(Json::as_str) == Some("trivial")
                };
                (self == Expectation::Trivial) == trivial
            }
            Expectation::Holds => result.get("holds") == Some(&Json::Bool(true)),
            Expectation::Pass => result.get("verdict").and_then(Json::as_str) == Some("pass"),
            Expectation::Violation => {
                result.get("verdict").and_then(Json::as_str) == Some("violation")
            }
        }
    }
}

/// One `query` line: kind, canonically ordered `key=value` words, and
/// the optional expectation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioQuery {
    /// The wire name of the query kind (`classify`, `witness`,
    /// `access-bounds`, `theorem5`, `verify-consensus`, `sched`).
    pub kind: String,
    /// `key=value` settings, sorted by key with last-wins dedup. For
    /// `sched` these are the spec words (`target=` is mandatory).
    pub words: Vec<(String, String)>,
    /// The `expect=` assertion, if any.
    pub expect: Option<Expectation>,
    /// 1-based source line of the `query` directive (diagnostics only;
    /// not part of the canonical text).
    pub line: usize,
}

/// One query lowered onto the engine's input formats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoweredQuery {
    /// A type-driven analysis: run `kind` against the type text.
    Type {
        /// Wire name of the kind.
        kind: String,
        /// The scenario type in `wfc-spec` text format.
        type_text: String,
    },
    /// A sched query: the spec line for `wfc-sched`.
    Sched {
        /// `<target> [key=value…]` spec text.
        spec_text: String,
    },
}

/// A parsed, validated scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The scenario name (`scenario NAME`).
    pub name: String,
    /// The type declaration.
    pub ty: TypeDecl,
    /// The resolved type instance.
    pub resolved: Arc<FiniteType>,
    /// Optional protocol label (`protocol NAME`) — recorded in the
    /// result document; the engine's protocol registry keys off the
    /// type, so this is a human-facing annotation the runner checks
    /// for consistency.
    pub protocol: Option<String>,
    /// Scenario-level budgets.
    pub budget: ScenarioBudget,
    /// The queries, in file order.
    pub queries: Vec<ScenarioQuery>,
}

impl Scenario {
    /// The canonical rendering: aliases resolved, FSM blocks
    /// normalized, query words sorted and deduplicated, budgets in
    /// fixed order. Equal canonical texts mean equal results — the
    /// service hashes this string for its cache key, so respelled but
    /// canonically equal files share cache lines.
    pub fn canonical_text(&self) -> String {
        let mut out = format!("scenario {}\n", self.name);
        match &self.ty {
            TypeDecl::Builtin { name } => out.push_str(&format!("type builtin {name}\n")),
            TypeDecl::Shift { w, ports } => {
                out.push_str(&format!("type shift w={w} ports={ports}\n"));
            }
            TypeDecl::Mpr { k, ports } => {
                out.push_str(&format!("type mpr k={k} ports={ports}\n"));
            }
            TypeDecl::Fsm { canonical } => {
                out.push_str("type fsm\n");
                out.push_str(canonical);
                if !canonical.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str("end\n");
            }
        }
        if let Some(p) = &self.protocol {
            out.push_str(&format!("protocol {p}\n"));
        }
        if !self.budget.is_empty() {
            out.push_str(&format!("budget {}\n", self.budget.canonical_words()));
        }
        for q in &self.queries {
            out.push_str("query ");
            out.push_str(&q.kind);
            for (k, v) in &q.words {
                out.push_str(&format!(" {k}={v}"));
            }
            if let Some(e) = q.expect {
                out.push_str(&format!(" expect={}", e.as_str()));
            }
            out.push('\n');
        }
        out
    }

    /// Lowers every query onto the engine's input formats, in file
    /// order. A deterministic function of the canonical text: the type
    /// is rendered once via `format_type`, and sched specs inherit the
    /// scenario-level `schedules`/`steps` budgets unless the query sets
    /// its own `budget`/`steps` words.
    pub fn lower(&self) -> Vec<LoweredQuery> {
        let type_text = format_type(&self.resolved);
        self.queries
            .iter()
            .map(|q| {
                if q.kind == "sched" {
                    let target = q
                        .words
                        .iter()
                        .find(|(k, _)| k == "target")
                        .map(|(_, v)| v.clone())
                        .expect("parse requires target= on sched queries");
                    let mut words: Vec<(String, String)> = q
                        .words
                        .iter()
                        .filter(|(k, _)| k != "target")
                        .cloned()
                        .collect();
                    // The sched checker spells its schedule budget
                    // `budget=`; the scenario spells it `schedules=` to
                    // keep one vocabulary across query kinds.
                    if let Some(v) = self.budget.schedules {
                        if !words.iter().any(|(k, _)| k == "budget") {
                            words.push(("budget".to_owned(), v.to_string()));
                        }
                    }
                    if let Some(v) = self.budget.steps {
                        if !words.iter().any(|(k, _)| k == "steps") {
                            words.push(("steps".to_owned(), v.to_string()));
                        }
                    }
                    words.sort();
                    let mut spec_text = target;
                    for (k, v) in &words {
                        spec_text.push_str(&format!(" {k}={v}"));
                    }
                    LoweredQuery::Sched { spec_text }
                } else {
                    LoweredQuery::Type {
                        kind: q.kind.clone(),
                        type_text: type_text.clone(),
                    }
                }
            })
            .collect()
    }

    /// Assembles the canonical `wfc-scenario/v1` result document from
    /// the per-query result documents (one per query, in order).
    /// Expectation failures are **data** (`pass: false`), not errors —
    /// engine errors abort the whole run before this point.
    ///
    /// # Panics
    ///
    /// If `results.len()` differs from the query count.
    pub fn result_doc(&self, results: &[Json]) -> Json {
        assert_eq!(results.len(), self.queries.len(), "one result per query");
        let mut all_pass = true;
        let queries: Vec<Json> = self
            .queries
            .iter()
            .zip(results)
            .map(|(q, r)| {
                let pass = q.expect.is_none_or(|e| e.check(&q.kind, r));
                all_pass &= pass;
                Json::obj(vec![
                    ("kind", Json::Str(q.kind.clone())),
                    (
                        "expect",
                        q.expect
                            .map_or(Json::Null, |e| Json::Str(e.as_str().to_owned())),
                    ),
                    ("pass", Json::Bool(pass)),
                    ("result", r.clone()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(crate::SCHEMA.to_owned())),
            ("scenario", Json::Str(self.name.clone())),
            ("type", Json::Str(self.resolved.name().to_owned())),
            (
                "protocol",
                self.protocol
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.clone())),
            ),
            ("canonical", Json::Str(self.canonical_text())),
            ("queries", Json::Arr(queries)),
            ("pass", Json::Bool(all_pass)),
        ])
    }
}
