//! The concurrent analysis server.
//!
//! Architecture (all std, no external dependencies):
//!
//! * a single **readiness-driven IO thread** multiplexes the listener
//!   and every connection over nonblocking sockets via a small
//!   `poll(2)` wrapper ([`crate::poller`]). Each connection is a pair
//!   of buffers — an incremental [`FrameBuffer`] assembling inbound
//!   frames across partial reads, and an outbound byte queue drained
//!   as the peer can absorb it — so a thousand idle pipelined clients
//!   cost zero threads and no worker ever blocks on a slow socket.
//!   This is the paper's own posture applied to the frontend: no
//!   participant waits on another, progress rides on readiness;
//! * a **batching/coalescing layer** ([`crate::batch`]) between the IO
//!   loop and the workers: syntactically identical in-flight queries
//!   collapse onto one pending entry (answered from a single
//!   computation), and distinct entries arriving together are
//!   dispatched as one batch under [`BatchConfig`]. When the entry
//!   queue is full the request is rejected *immediately* with a `busy`
//!   response carrying the observed entry depth and the configured
//!   capacity (explicit backpressure, never unbounded buffering);
//! * a **fixed worker pool** draining batches through the
//!   [`ResultCache`] (memory → disk → single-flight → compute);
//!   workers queue rendered response frames on the owning connection
//!   and nudge the IO thread through a self-pipe waker;
//! * per-connection **pipelining**: responses are matched to requests
//!   by id, so one client may keep many requests in flight and workers
//!   may complete them out of order;
//! * a **reaper thread** enforcing the per-request deadline by setting
//!   the owning worker's [`CancelToken`] flag. Every query kind —
//!   explorer-backed analyses *and* sched model checking — polls the
//!   same `wfc_spec::control` plane at its sync points (BFS level,
//!   per-path pop, schedule boundary), so any in-flight computation
//!   stops within one sync interval. A reaper-cancelled query answers
//!   with a structured `deadline-exceeded` error carrying the deadline
//!   as `budget`, the elapsed milliseconds as `used`, and a `partial`
//!   progress snapshot of the work completed before the cut.
//!
//! The thread total is **fixed at startup** — one IO thread, `workers`
//! workers, and the optional reaper — independent of connection count
//! ([`ServerHandle::thread_count`] reports it). Accept failures are
//! counted (`service.accept.errors`) and retried under a capped
//! exponential backoff; connections beyond `max_connections` are
//! answered with a structured `busy` frame and closed rather than
//! silently dropped.
//!
//! Worker cancellation flags are leaked `AtomicBool`s (one per worker
//! per server start — a bounded, intentional leak) because
//! `ExploreOptions` is `Copy` and its token borrows `'static`.

use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wfc_obs::json::Json;
use wfc_spec::control::{CancelToken, Exhausted, Resource, Wall};

use crate::analysis::{
    explore_options, parse_query_type, parse_sched_spec, run_query, run_sched_with, QueryError,
};
use wfc_spec::stage::Stage;

use crate::batch::{BatchConfig, Batcher, Entry, JobQueue, Submit};
use crate::cache::{cache_key, scenario_cache_key, sched_cache_key, CacheOutcome, ResultCache};
use crate::conn::ConnShared;
use crate::poller::{fd_of, wait, Readiness, Waker};
use crate::repl_link::{dialer_loop, disabled_status, ReplConfig, ReplRuntime, ReplShared};
use crate::stats::{Disposition, IntroCtx, RequestTrace, TraceOutcome};
use crate::wire::{write_frame, FrameBuffer, QueryKind, QueryOptions, Request, Response};

/// Server configuration. `Default` gives a loopback server on an
/// ephemeral port with two workers.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Worker threads computing queries.
    pub workers: usize,
    /// Bounded entry-queue capacity; beyond it, requests get `busy`.
    pub queue_capacity: usize,
    /// In-memory result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Disk cache directory (`None` disables the disk tier).
    pub cache_dir: Option<PathBuf>,
    /// Upper clamp on a request's `max_configs`.
    pub max_configs_limit: usize,
    /// Upper clamp on a request's `max_depth`.
    pub max_depth_limit: usize,
    /// Upper clamp on a request's explorer `threads`.
    pub max_threads_limit: usize,
    /// Per-request wall-clock deadline; `None` disables the reaper.
    pub request_timeout: Option<Duration>,
    /// Frontend batching/coalescing knobs.
    pub batch: BatchConfig,
    /// Connections beyond this are answered `busy` and closed.
    pub max_connections: usize,
    /// Flight-recorder capacity in records; `0` disables the ring.
    /// The ring is only allocated when observability is on.
    pub flight_capacity: usize,
    /// Requests slower than this end-to-end are flagged as anomalies
    /// in the flight recorder; `None` disables the latency trigger.
    pub anomaly_threshold: Option<Duration>,
    /// Test hook: workers pass this gate after dequeuing a job and
    /// before computing, letting tests hold a worker deterministically.
    pub gate: Option<Arc<WorkerGate>>,
    /// Replication: when set, this server is one node of a `wfc-repl`
    /// cluster — computed results are proposed to the sequencer and
    /// committed inserts from any node land in this cache too.
    pub repl: Option<ReplConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_dir: None,
            max_configs_limit: 4_000_000,
            max_depth_limit: usize::MAX,
            max_threads_limit: 8,
            request_timeout: None,
            batch: BatchConfig::default(),
            max_connections: 8192,
            flight_capacity: 256,
            anomaly_threshold: None,
            gate: None,
            repl: None,
        }
    }
}

/// A gate workers pass between dequeuing a job and computing it. Tests
/// close it to hold workers at a known point (and read [`held`] to know
/// a worker has arrived), which makes queue-saturation and deadline
/// tests deterministic instead of timing-dependent.
///
/// [`held`]: WorkerGate::held
#[derive(Debug)]
pub struct WorkerGate {
    open: Mutex<bool>,
    cv: Condvar,
    held: AtomicUsize,
}

impl Default for WorkerGate {
    /// An open gate — a closed default would deadlock every worker.
    fn default() -> WorkerGate {
        WorkerGate {
            open: Mutex::new(true),
            cv: Condvar::new(),
            held: AtomicUsize::new(0),
        }
    }
}

impl WorkerGate {
    /// An open gate.
    pub fn new() -> Arc<WorkerGate> {
        Arc::new(WorkerGate::default())
    }

    /// Closes the gate: workers arriving at [`pass`](WorkerGate::pass)
    /// will block.
    pub fn close(&self) {
        *self.open.lock().unwrap() = false;
    }

    /// Opens the gate and releases every held worker.
    pub fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// How many workers are currently blocked at the gate.
    pub fn held(&self) -> usize {
        self.held.load(Ordering::SeqCst)
    }

    fn pass(&self) {
        let mut open = self.open.lock().unwrap();
        if *open {
            return;
        }
        self.held.fetch_add(1, Ordering::SeqCst);
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        self.held.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-worker deadline slot, scanned by the reaper.
struct InFlight {
    deadline: Mutex<Option<Instant>>,
    cancel: &'static AtomicBool,
}

/// A handle on a running server: its bound address and its shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    gate: Arc<WorkerGate>,
    waker: Arc<Waker>,
    cancel_flags: Vec<&'static AtomicBool>,
    conn_count: Arc<AtomicUsize>,
    thread_count: usize,
    io_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    reaper_thread: Option<JoinHandle<()>>,
    dialer_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("threads", &self.thread_count)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently held open by the IO loop. Rises on accept,
    /// falls when a peer disconnects — the value tests watch to prove
    /// connection lifecycles leak nothing.
    pub fn connections(&self) -> usize {
        self.conn_count.load(Ordering::SeqCst)
    }

    /// The server's total thread count: one IO thread, the workers, and
    /// the optional reaper. Fixed at startup — independent of how many
    /// connections are open, which is the readiness frontend's whole
    /// claim.
    pub fn thread_count(&self) -> usize {
        self.thread_count
    }

    /// Stops the server: cancels in-flight explorations, drains the
    /// pool, and joins every thread. Idempotent-by-consumption (takes
    /// `self`).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for flag in &self.cancel_flags {
            flag.store(true, Ordering::SeqCst);
        }
        self.gate.open(); // never strand a worker behind a test gate
        self.queue.close();
        self.waker.wake(); // pop the IO thread out of poll immediately
        if let Some(t) = self.io_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.reaper_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dialer_thread.take() {
            let _ = t.join();
        }
    }
}

/// Capped exponential backoff after `consecutive` accept failures:
/// 2 ms, 4 ms, 8 ms, … capped at 1024 ms. Persistent accept errors
/// (EMFILE being the classic) must not spin the IO loop, but recovery
/// should be quick once descriptors free up.
pub fn accept_backoff(consecutive: u32) -> Duration {
    Duration::from_millis(1u64 << consecutive.clamp(1, 10))
}

/// Starts a server and returns once it is listening.
///
/// # Errors
///
/// Propagates bind/configuration failures.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache = Arc::new(
        ResultCache::new(config.cache_capacity, config.cache_dir.clone())
            .map_err(io::Error::other)?,
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(JobQueue::new(config.queue_capacity.max(1)));
    let gate = config.gate.clone().unwrap_or_default();
    let waker = Arc::new(Waker::new()?);
    let conn_count = Arc::new(AtomicUsize::new(0));
    let intro = IntroCtx::new(&config, Arc::clone(&conn_count));
    let workers = config.workers.max(1);

    // Replication opens (and recovers) before the listener serves a
    // single request, so a replica never answers from a cache it has
    // not finished rebuilding.
    let repl_runtime = match &config.repl {
        Some(repl_config) => Some(ReplRuntime::open(repl_config, Arc::clone(&cache))?),
        None => None,
    };
    let repl_shared = repl_runtime.as_ref().map(|r| Arc::clone(&r.shared));
    let dialer_thread = match (&config.repl, &repl_shared) {
        (Some(repl_config), Some(shared)) => {
            let peers: Vec<String> = repl_config.peers.iter().map(|(_, a)| a.clone()).collect();
            let shared = Arc::clone(shared);
            let shutdown = Arc::clone(&shutdown);
            let waker = Arc::clone(&waker);
            Some(
                std::thread::Builder::new()
                    .name("wfc-svc-repl-dial".to_owned())
                    .spawn(move || dialer_loop(peers, shared, shutdown, waker))?,
            )
        }
        _ => None,
    };

    // One leaked cancellation flag per worker (bounded: workers × server
    // starts). `ExploreOptions` is `Copy`, so its token must be
    // `'static`.
    let cancel_flags: Vec<&'static AtomicBool> = (0..workers)
        .map(|_| &*Box::leak(Box::new(AtomicBool::new(false))))
        .collect();
    let inflight: Arc<Vec<InFlight>> = Arc::new(
        cancel_flags
            .iter()
            .map(|&cancel| InFlight {
                deadline: Mutex::new(None),
                cancel,
            })
            .collect(),
    );

    let mut worker_threads = Vec::with_capacity(workers);
    for (idx, &cancel) in cancel_flags.iter().enumerate() {
        let queue = Arc::clone(&queue);
        let cache = Arc::clone(&cache);
        let gate = Arc::clone(&gate);
        let waker = Arc::clone(&waker);
        let inflight = Arc::clone(&inflight);
        let intro = Arc::clone(&intro);
        let config = config.clone();
        let repl_shared = repl_shared.clone();
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("wfc-svc-worker-{idx}"))
                .spawn(move || {
                    worker_loop(
                        idx,
                        &queue,
                        &cache,
                        &gate,
                        &waker,
                        &inflight,
                        &intro,
                        cancel,
                        &config,
                        repl_shared.as_deref(),
                    )
                })?,
        );
    }

    let reaper_thread = if config.request_timeout.is_some() {
        let shutdown = Arc::clone(&shutdown);
        let inflight = Arc::clone(&inflight);
        Some(
            std::thread::Builder::new()
                .name("wfc-svc-reaper".to_owned())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        let now = Instant::now();
                        for slot in inflight.iter() {
                            let expired = slot
                                .deadline
                                .lock()
                                .unwrap()
                                .is_some_and(|deadline| now >= deadline);
                            if expired {
                                slot.cancel.store(true, Ordering::SeqCst);
                            }
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                })?,
        )
    } else {
        None
    };

    let io_thread = {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let waker = Arc::clone(&waker);
        let conn_count = Arc::clone(&conn_count);
        let intro = Arc::clone(&intro);
        let config = config.clone();
        std::thread::Builder::new()
            .name("wfc-svc-io".to_owned())
            .spawn(move || {
                io_loop(
                    &listener,
                    &shutdown,
                    &queue,
                    &waker,
                    &conn_count,
                    &intro,
                    &config,
                    repl_runtime,
                )
            })?
    };

    let thread_count =
        1 + workers + usize::from(reaper_thread.is_some()) + usize::from(dialer_thread.is_some());
    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        gate,
        waker,
        cancel_flags,
        conn_count,
        thread_count,
        io_thread: Some(io_thread),
        worker_threads,
        reaper_thread,
        dialer_thread,
    })
}

/// One multiplexed connection: the socket, the inbound frame assembler,
/// and the shared outbound channel workers write responses into.
struct Conn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    shared: Arc<ConnShared>,
    /// Protocol violation seen: stop reading, flush what is queued
    /// (the `bad-request` answer), then close.
    closing: bool,
    /// Last flush hit `WouldBlock`; don't retry until poll reports the
    /// socket writable again.
    write_blocked: bool,
    dead: bool,
}

/// Reads at most this much per connection per iteration so one
/// firehose peer cannot starve the rest; level-triggered polling
/// re-reports the leftover on the next pass.
const READ_FAIRNESS_LIMIT: usize = 256 * 1024;

/// At most this many accepts per iteration, for the same reason.
const ACCEPT_BURST: usize = 128;

#[allow(clippy::too_many_arguments)] // mirrors the server's fixed wiring
fn io_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    queue: &JobQueue,
    waker: &Waker,
    conn_count: &AtomicUsize,
    intro: &Arc<IntroCtx>,
    config: &ServeConfig,
    mut repl: Option<ReplRuntime>,
) {
    // The IO thread produces on ring slot 0 of every connection (its
    // own inline answers: stats, busy, bad-request, repl frames).
    crate::conn::register_producer(0);
    let mut conns: Vec<Conn> = Vec::new();
    let mut batcher = Batcher::new(config.batch);
    let mut consecutive_accept_errors: u32 = 0;
    let mut accept_resume: Option<Instant> = None;
    let mut interests = Vec::new();
    let mut ready: Vec<Readiness> = Vec::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut completed_traces: Vec<RequestTrace> = Vec::new();
    let mut live_links: Vec<usize> = Vec::new();

    while !shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        if accept_resume.is_some_and(|resume| now >= resume) {
            accept_resume = None;
        }
        let accept_paused = accept_resume.is_some();

        // Adopt dialer-connected peer links and propose worker-computed
        // results before building the interest set, so both get their
        // frames queued (and polled for writability) this same pass.
        if let Some(r) = repl.as_mut() {
            r.drain_incoming();
            r.drain_submits();
        }

        // Interest set: [listener, waker, conns..., peer links...] in
        // stable order; `live_links` maps trailing slots back to links.
        interests.clear();
        interests.push((fd_of(listener), !accept_paused, false));
        interests.push((waker.fd(), true, false));
        for conn in &conns {
            interests.push((fd_of(&conn.stream), !conn.closing, conn.shared.has_output()));
        }
        live_links.clear();
        if let Some(r) = repl.as_ref() {
            for (slot, link) in r.links.iter().enumerate() {
                if let Some(stream) = &link.stream {
                    interests.push((fd_of(stream), true, link.shared.has_output()));
                    live_links.push(slot);
                }
            }
        }

        let mut timeout = Duration::from_millis(50);
        if let Some(deadline) = batcher.next_deadline() {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        if let Some(resume) = accept_resume {
            timeout = timeout.min(resume.saturating_duration_since(now));
        }
        let polled_conns = conns.len();
        if wait(&interests, timeout, &mut ready).is_err() {
            // A failed poll is unrecoverable for this design; degrade
            // to a paced retry rather than a busy spin.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if ready.get(1).is_some_and(|r| r.readable) {
            waker.drain();
        }

        // Accept new peers.
        if !accept_paused && ready.first().is_some_and(|r| r.readable) {
            for _ in 0..ACCEPT_BURST {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        consecutive_accept_errors = 0;
                        if conns.len() >= config.max_connections {
                            reject_connection(stream, conns.len(), config.max_connections);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        conns.push(Conn {
                            stream,
                            inbuf: FrameBuffer::new(),
                            // Slot 0 is the IO thread, slots 1.. are
                            // the workers — the registered producers.
                            shared: Arc::new(ConnShared::new(1 + config.workers.max(1))),
                            closing: false,
                            write_blocked: false,
                            dead: false,
                        });
                        conn_count.fetch_add(1, Ordering::SeqCst);
                        wfc_obs::counter!("service.connections.opened");
                        wfc_obs::gauge_max!("service.connections.open", conns.len() as i64);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        // EMFILE and friends: count it, back off with a
                        // cap, and let poll resume accepting later.
                        wfc_obs::counter!("service.accept.errors");
                        consecutive_accept_errors = consecutive_accept_errors.saturating_add(1);
                        accept_resume =
                            Some(Instant::now() + accept_backoff(consecutive_accept_errors));
                        break;
                    }
                }
            }
        }

        // Drain readable connections into the batcher (peer frames are
        // routed to the replication node inside the decode path).
        for (i, conn) in conns.iter_mut().enumerate() {
            let readiness = ready.get(i + 2).copied().unwrap_or_default();
            if conn.closing {
                if readiness.hangup {
                    conn.dead = true;
                }
                continue;
            }
            if readiness.readable {
                read_connection(conn, &mut read_buf, &mut batcher, queue, intro, &mut repl);
            }
        }

        batcher.flush_due(queue, Instant::now());

        // Push queued response bytes to whoever can take them. New
        // output is try-written immediately; a connection whose last
        // flush hit WouldBlock waits for poll to report it writable
        // (its interest set includes POLLOUT while output is pending).
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            let readiness = ready.get(i + 2).copied().unwrap_or_default();
            let pending = conn.shared.has_output();
            if pending && (!conn.write_blocked || readiness.writable) {
                match conn.shared.flush(&mut conn.stream, &mut completed_traces) {
                    Ok(flushed_all) => {
                        conn.write_blocked = !flushed_all;
                        if flushed_all && conn.closing {
                            conn.dead = true;
                        }
                    }
                    Err(_) => conn.dead = true,
                }
            } else if !pending && conn.closing {
                conn.dead = true;
            }
        }
        // Service peer links: a readable outbound link only ever means
        // EOF or stray bytes (peers answer on their *own* dialed link,
        // never ours); writability drains the queued frames.
        if let Some(r) = repl.as_mut() {
            let mut lost: Vec<usize> = Vec::new();
            for (pos, &slot) in live_links.iter().enumerate() {
                let readiness = ready
                    .get(2 + polled_conns + pos)
                    .copied()
                    .unwrap_or_default();
                let link = &mut r.links[slot];
                let Some(stream) = link.stream.as_mut() else {
                    continue;
                };
                let mut dead = readiness.hangup;
                if readiness.readable && !dead {
                    loop {
                        match stream.read(&mut read_buf) {
                            Ok(0) => {
                                dead = true;
                                break;
                            }
                            Ok(_) => {} // discard: nothing speaks here
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }
                if !dead && link.shared.has_output() && (!link.write_blocked || readiness.writable)
                {
                    match link.shared.flush(stream, &mut completed_traces) {
                        Ok(flushed_all) => link.write_blocked = !flushed_all,
                        Err(_) => dead = true,
                    }
                }
                if dead {
                    lost.push(slot);
                }
            }
            for slot in lost {
                r.drop_link(slot);
            }
        }

        for trace in completed_traces.drain(..) {
            intro.finalize(&trace);
        }

        conns.retain(|conn| {
            if conn.dead {
                for trace in conn.shared.take_pending_traces() {
                    intro.finalize_dropped(trace);
                }
                conn.shared.set_closed();
                conn_count.fetch_sub(1, Ordering::SeqCst);
                wfc_obs::counter!("service.connections.closed");
            }
            !conn.dead
        });
    }

    // Shutdown: hand any straggling entries to the draining workers,
    // then drop every socket (peers see EOF).
    batcher.flush_all(queue);
    for conn in &conns {
        for trace in conn.shared.take_pending_traces() {
            intro.finalize_dropped(trace);
        }
        conn.shared.set_closed();
    }
    conn_count.store(0, Ordering::SeqCst);
}

/// Answers an over-capacity connection with a structured `busy` frame
/// (id 0 — no request was read) and closes it. The accepted-then-
/// dropped stream of the old frontend left clients hanging forever;
/// an explicit refusal lets them back off and retry.
fn reject_connection(stream: TcpStream, open: usize, limit: usize) {
    wfc_obs::counter!("service.accept.rejected");
    let busy = Response::Busy {
        id: 0,
        used: open as u64,
        budget: limit as u64,
    };
    // Freshly accepted socket, empty send buffer: a bounded blocking
    // write is safe, and best-effort is fine — the close is the point.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let _ = write_frame(&mut stream, &busy.to_json());
}

/// Reads until the socket is drained (or the fairness cap), feeding
/// bytes through the frame assembler into the batcher.
fn read_connection(
    conn: &mut Conn,
    read_buf: &mut [u8],
    batcher: &mut Batcher,
    queue: &JobQueue,
    intro: &Arc<IntroCtx>,
    repl: &mut Option<ReplRuntime>,
) {
    // The trace origin for every frame completed by this read pass:
    // the closest observable moment to the request's bytes arriving.
    let accepted = Instant::now();
    let mut total = 0usize;
    loop {
        match conn.stream.read(read_buf) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&read_buf[..n]);
                total += n;
                decode_frames(conn, batcher, queue, intro, accepted, repl);
                if conn.closing || conn.dead {
                    return;
                }
                if total >= READ_FAIRNESS_LIMIT || n < read_buf.len() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Pulls every complete frame out of the connection's buffer and
/// submits it. A framing violation answers `bad-request` and flags the
/// connection for flush-then-close — the byte stream is untrustworthy
/// past that point.
fn decode_frames(
    conn: &mut Conn,
    batcher: &mut Batcher,
    queue: &JobQueue,
    intro: &Arc<IntroCtx>,
    accepted: Instant,
    repl: &mut Option<ReplRuntime>,
) {
    loop {
        match conn.inbuf.next_frame() {
            Ok(Some(doc)) if wfc_repl::msg::is_repl_frame(&doc) => {
                // Peer-protocol traffic shares the listener with
                // clients; the `proto` field is the fork in the road.
                handle_repl_frame(&conn.shared, &doc, repl);
            }
            Ok(Some(doc)) => handle_request(
                &doc,
                &conn.shared,
                batcher,
                queue,
                intro,
                accepted,
                repl.as_ref(),
            ),
            Ok(None) => return,
            Err(e) => {
                conn.shared
                    .enqueue_json(&bad_request(0, &format!("protocol error: {e}")).to_json());
                conn.closing = true;
                return;
            }
        }
    }
}

/// Routes one inbound `wfc-repl/v1` frame. `status` is answered inline
/// on the same connection — including on a server with replication
/// off, which reports `enabled: false` instead of a protocol error, so
/// `wfc cluster-status` can probe any node safely. Everything else is
/// peer traffic for the node.
fn handle_repl_frame(conn: &Arc<ConnShared>, doc: &Json, repl: &mut Option<ReplRuntime>) {
    use wfc_spec::repl::msg as repl_msg;
    if wfc_repl::msg::frame_type(doc) == Some(repl_msg::STATUS) {
        let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
        let reply = match repl.as_ref() {
            Some(r) => r.status_doc(id),
            None => disabled_status(id),
        };
        conn.enqueue_json(&reply);
        return;
    }
    match repl.as_mut() {
        Some(r) => r.handle_frame(doc),
        None => wfc_obs::counter!("repl.frames.ignored"),
    }
}

fn bad_request(id: u64, message: &str) -> Response {
    Response::Error {
        id,
        code: "bad-request".to_owned(),
        message: message.to_owned(),
        budget: None,
        used: None,
        resource: None,
        partial: None,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the server's fixed wiring
fn handle_request(
    doc: &Json,
    conn: &Arc<ConnShared>,
    batcher: &mut Batcher,
    queue: &JobQueue,
    intro: &Arc<IntroCtx>,
    accepted: Instant,
    repl: Option<&ReplRuntime>,
) {
    let request = match Request::from_json(doc) {
        Ok(request) => request,
        Err(e) => {
            // The frame itself was sound; only this message is bad.
            let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
            conn.enqueue_json(&bad_request(id, &e.to_string()).to_json());
            return;
        }
    };
    wfc_obs::counter!("service.requests");
    intro.note_request();
    let id = request.id;
    let mut trace = intro.trace(id, request.kind, accepted);
    if let Some(t) = &mut trace {
        t.stamp(Stage::Decoded);
    }

    // `stats` is answered right here on the IO thread — structurally
    // exempt from caching, coalescing, batching, and the job queue, so
    // introspection works even when every worker is wedged and the
    // queue is refusing real work.
    if request.kind == QueryKind::Stats {
        if let Some(t) = &mut trace {
            t.stamp(Stage::EngineStart);
        }
        let mut result = intro.build_stats(queue, batcher.open_len());
        if let (Some(r), Json::Obj(fields)) = (repl, &mut result) {
            fields.push(("repl".to_owned(), r.stats_section()));
        }
        if let Some(t) = &mut trace {
            t.stamp(Stage::EngineDone);
            t.disposition = Disposition::Inline;
            t.outcome = TraceOutcome::Ok;
        }
        wfc_obs::counter!("service.responses.ok");
        let response = Response::Ok {
            id,
            cached: false,
            result,
        };
        enqueue_traced(conn, intro, &response.to_json(), trace);
        return;
    }

    match batcher.submit(request, conn, queue, Instant::now(), &mut trace) {
        Submit::Coalesced => {
            wfc_obs::counter!("service.batch.coalesced");
        }
        Submit::Accepted => {}
        Submit::Rejected { used } => {
            wfc_obs::counter!("service.responses.busy");
            if let Some(t) = &mut trace {
                t.outcome = TraceOutcome::Busy;
            }
            let busy = Response::Busy {
                id,
                used: used as u64,
                budget: queue.capacity() as u64,
            };
            enqueue_traced(conn, intro, &busy.to_json(), trace);
        }
    }
}

/// Queues a response with its trace riding on the flush watermark; a
/// response that cannot be queued finalizes its trace as dropped.
fn enqueue_traced(
    conn: &Arc<ConnShared>,
    intro: &Arc<IntroCtx>,
    doc: &Json,
    trace: Option<Box<RequestTrace>>,
) {
    match trace {
        Some(trace) => {
            if let Some(returned) = conn.enqueue_json_traced(doc, trace) {
                intro.finalize_dropped(*returned);
            }
        }
        None => conn.enqueue_json(doc),
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the server's fixed wiring
fn worker_loop(
    idx: usize,
    queue: &JobQueue,
    cache: &ResultCache,
    gate: &WorkerGate,
    waker: &Waker,
    inflight: &[InFlight],
    intro: &Arc<IntroCtx>,
    cancel: &'static AtomicBool,
    config: &ServeConfig,
    repl: Option<&ReplShared>,
) {
    // Worker `idx` produces on ring slot `idx + 1` of every connection
    // (slot 0 is the IO thread's).
    crate::conn::register_producer(idx + 1);
    while let Some(batch) = queue.pop() {
        for entry in batch {
            compute_entry(
                &entry, idx, cache, gate, waker, inflight, intro, cancel, config, repl,
            );
        }
    }
}

/// Computes one entry and fans the result out to every coalesced
/// respondent. The leader (first respondent) reports the cache's
/// verdict on `cached`; followers were answered without a computation
/// of their own, so they are `cached` by construction.
#[allow(clippy::too_many_arguments)] // mirrors the server's fixed wiring
fn compute_entry(
    entry: &Entry,
    idx: usize,
    cache: &ResultCache,
    gate: &WorkerGate,
    waker: &Waker,
    inflight: &[InFlight],
    intro: &Arc<IntroCtx>,
    cancel: &'static AtomicBool,
    config: &ServeConfig,
    repl: Option<&ReplShared>,
) {
    let mut respondents = entry.begin();
    if respondents.is_empty() {
        return;
    }
    let _flight = intro.enter_flight();
    let started = Instant::now();
    for respondent in &mut respondents {
        if let Some(trace) = &mut respondent.trace {
            // Before the gate, matching the deadline: time a test
            // spends holding the worker counts as engine time.
            trace.stamp(Stage::EngineStart);
        }
    }
    cancel.store(false, Ordering::SeqCst);
    // Arm the deadline — and the in-engine wall clock — before
    // passing the gate, so time a test spends holding the worker
    // counts against the deadline; that is what makes the
    // cancellation tests deterministic.
    *inflight[idx].deadline.lock().unwrap() = config.request_timeout.map(|t| started + t);
    let wall = config.request_timeout.map(Wall::expires_in);
    gate.pass();

    let options = clamp_options(&entry.options, config);
    let token = CancelToken::new(cancel);
    // The cache key and type name ride along with the result so a
    // freshly computed entry can be handed to replication verbatim.
    type Computed = (Arc<Json>, CacheOutcome, wfc_spec::hash::Hash128, String);
    let outcome: Result<Computed, QueryError> = if entry.kind == QueryKind::Sched {
        // A sched request carries a fixture spec, not a type, and its
        // budgets live inside the spec — the canonical rendering is
        // the whole cache identity. The request deadline rides along
        // out-of-band (cancel token + wall clock, polled at schedule
        // boundaries) and is deliberately *not* part of the key:
        // control signals never change a completed query's document.
        parse_sched_spec(&entry.type_text).and_then(|spec| {
            let key = sched_cache_key(&spec.canonical_text());
            cache
                .get_or_compute(key, entry.kind, &spec.target, || {
                    run_sched_with(&spec, token, wall)
                })
                .map(|(value, how)| (value, how, key, spec.target.clone()))
                .map_err(|e| as_deadline(e, started, config))
        })
    } else if entry.kind == QueryKind::Scenario {
        // A scenario request carries a whole scenario file. Its cache
        // identity is the canonical text — respelled but canonically
        // equal files share a cache line, exactly like sched specs.
        // Request-level budgets deliberately do NOT apply: a cached
        // document must be a pure function of the key, so a scenario's
        // exploration budgets come only from its own `budget` directive
        // (which is part of the canonical text, hence of the key).
        // Threads ride along — they never change result bytes.
        let scenario_options = QueryOptions::default().with_threads(options.threads);
        wfc_scenario::parse_scenario(&entry.type_text)
            .map_err(|e| QueryError::Parse(e.to_string()))
            .and_then(|sc| {
                let key = scenario_cache_key(&sc.canonical_text());
                cache
                    .get_or_compute(key, entry.kind, &sc.name, || {
                        crate::scenario::run_scenario_with(&sc, &scenario_options, token, wall)
                    })
                    .map(|(value, how)| (value, how, key, sc.name.clone()))
                    .map_err(|e| as_deadline(e, started, config))
            })
    } else {
        parse_query_type(&entry.type_text).and_then(|ty| {
            let key = cache_key(entry.kind, &ty, &options);
            let mut opts = explore_options(&options).with_cancel(token);
            opts.budget.wall = wall;
            cache
                .get_or_compute(key, entry.kind, ty.name(), || {
                    run_query(entry.kind, &ty, &opts)
                })
                .map(|(value, how)| (value, how, key, ty.name().to_owned()))
                .map_err(|e| as_deadline(e, started, config))
        })
    };
    *inflight[idx].deadline.lock().unwrap() = None;

    // A *computed* result is news to the cluster: queue it for the IO
    // thread to propose. Cache hits were either replicated already or
    // predate the cluster; re-proposing them would be noise (and the
    // sequencer's key-dedup would drop it anyway).
    if let (Some(repl), Ok((value, CacheOutcome::Computed, key, type_name))) = (repl, &outcome) {
        repl.submit.lock().unwrap().push(wfc_repl::Entry {
            key: key.to_hex(),
            kind: entry.kind.as_str().to_owned(),
            type_name: type_name.clone(),
            result: (**value).clone(),
        });
        // The waker nudge at the end of this function covers the
        // submit queue too.
    }

    let obs = wfc_obs::enabled();
    let deadline_exceeded = matches!(&outcome, Err(e) if e.code() == "deadline-exceeded");
    for (i, mut respondent) in respondents.into_iter().enumerate() {
        let response = match &outcome {
            Ok((value, how, ..)) => Response::Ok {
                id: respondent.id,
                cached: how.is_cached() || i > 0,
                result: (**value).clone(),
            },
            Err(e) => error_response(respondent.id, e),
        };
        if obs {
            let name = match &response {
                Response::Ok { .. } => "service.responses.ok",
                _ => "service.responses.error",
            };
            wfc_obs::metrics::Registry::global().counter(name).add(1);
            wfc_obs::metrics::Registry::global()
                .histogram(&format!("service.latency_us.{}", entry.kind))
                .record(started.elapsed().as_micros() as u64);
        }
        if let Some(trace) = &mut respondent.trace {
            trace.stamp(Stage::EngineDone);
            trace.disposition = match &outcome {
                _ if i > 0 => Disposition::Coalesced,
                Ok((_, how, ..)) if how.is_cached() => Disposition::CacheHit,
                _ => Disposition::Fresh,
            };
            trace.outcome = match &response {
                Response::Ok { .. } => TraceOutcome::Ok,
                _ => TraceOutcome::Error,
            };
            trace.deadline_exceeded = deadline_exceeded;
        }
        if respondent.conn.is_closed() {
            if let Some(trace) = respondent.trace.take() {
                intro.finalize_dropped(*trace);
            }
        } else {
            let doc = response.to_json();
            match respondent.trace.take() {
                Some(trace) => {
                    if let Some(returned) = respondent.conn.enqueue_json_traced(&doc, trace) {
                        intro.finalize_dropped(*returned);
                    }
                }
                None => respondent.conn.enqueue_json(&doc),
            }
        }
    }
    waker.wake();
}

fn clamp_options(requested: &QueryOptions, config: &ServeConfig) -> QueryOptions {
    QueryOptions {
        max_configs: requested.max_configs.min(config.max_configs_limit),
        max_depth: requested.max_depth.min(config.max_depth_limit),
        threads: requested.threads.clamp(1, config.max_threads_limit.max(1)),
    }
}

/// Normalizes a cancellation whose request deadline has elapsed into a
/// wall-clock [`Exhausted`] so clients see one `deadline-exceeded`
/// shape whether the engine noticed its own wall budget or the reaper's
/// token reached it first (the two race at every sync point). A
/// cancellation with time still on the clock — server shutdown — stays
/// `cancelled`.
fn as_deadline(e: QueryError, started: Instant, config: &ServeConfig) -> QueryError {
    match (e, config.request_timeout) {
        (QueryError::Cancelled { progress }, Some(timeout)) if started.elapsed() >= timeout => {
            QueryError::Exhausted(Exhausted {
                resource: Resource::WallMs,
                budget: timeout.as_millis() as u64,
                used: started.elapsed().as_millis() as u64,
                progress,
            })
        }
        (e, _) => e,
    }
}

fn error_response(id: u64, e: &QueryError) -> Response {
    let (budget, used) = match e.budget_used() {
        Some((b, u)) => (Some(b), Some(u)),
        None => (None, None),
    };
    Response::Error {
        id,
        code: e.code().to_owned(),
        message: e.to_string(),
        budget,
        used,
        resource: e.resource().map(str::to_owned),
        partial: e.partial(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_grows_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(2));
        assert_eq!(accept_backoff(2), Duration::from_millis(4));
        assert_eq!(accept_backoff(5), Duration::from_millis(32));
        assert_eq!(accept_backoff(10), Duration::from_millis(1024));
        assert_eq!(
            accept_backoff(u32::MAX),
            Duration::from_millis(1024),
            "backoff must cap, not overflow"
        );
        assert_eq!(
            accept_backoff(0),
            Duration::from_millis(2),
            "even a first error backs off a little"
        );
    }
}
