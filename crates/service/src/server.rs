//! The concurrent analysis server.
//!
//! Architecture (all std, no external dependencies):
//!
//! * an **accept loop** on a nonblocking [`TcpListener`], polling a
//!   shutdown flag between accepts;
//! * one **reader thread** per connection, decoding frames and pushing
//!   jobs onto a **bounded queue** — when the queue is full the request
//!   is rejected *immediately* with a `busy` response carrying the
//!   observed depth and the configured capacity (explicit backpressure,
//!   never unbounded buffering);
//! * a **fixed worker pool** draining the queue through the
//!   [`ResultCache`] (memory → disk → single-flight → compute);
//! * per-connection **pipelining**: responses are written back under a
//!   per-connection lock and matched to requests by id, so one client
//!   may keep many requests in flight and workers may complete them out
//!   of order;
//! * a **reaper thread** enforcing the per-request deadline by setting
//!   the owning worker's [`CancelToken`] flag. Every query kind —
//!   explorer-backed analyses *and* sched model checking — polls the
//!   same `wfc_spec::control` plane at its sync points (BFS level,
//!   per-path pop, schedule boundary), so any in-flight computation
//!   stops within one sync interval. A reaper-cancelled query answers
//!   with a structured `deadline-exceeded` error carrying the deadline
//!   as `budget`, the elapsed milliseconds as `used`, and a `partial`
//!   progress snapshot of the work completed before the cut.
//!
//! Worker cancellation flags are leaked `AtomicBool`s (one per worker
//! per server start — a bounded, intentional leak) because
//! `ExploreOptions` is `Copy` and its token borrows `'static`.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wfc_spec::control::{CancelToken, Exhausted, Resource, Wall};

use crate::analysis::{
    explore_options, parse_query_type, parse_sched_spec, run_query, run_sched_with, QueryError,
};
use crate::cache::{cache_key, sched_cache_key, ResultCache};
use crate::wire::{read_frame, write_frame, QueryKind, QueryOptions, Request, Response, WireError};

/// Server configuration. `Default` gives a loopback server on an
/// ephemeral port with two workers.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Worker threads computing queries.
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it, requests get `busy`.
    pub queue_capacity: usize,
    /// In-memory result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Disk cache directory (`None` disables the disk tier).
    pub cache_dir: Option<PathBuf>,
    /// Upper clamp on a request's `max_configs`.
    pub max_configs_limit: usize,
    /// Upper clamp on a request's `max_depth`.
    pub max_depth_limit: usize,
    /// Upper clamp on a request's explorer `threads`.
    pub max_threads_limit: usize,
    /// Per-request wall-clock deadline; `None` disables the reaper.
    pub request_timeout: Option<Duration>,
    /// Test hook: workers pass this gate after dequeuing a job and
    /// before computing, letting tests hold a worker deterministically.
    pub gate: Option<Arc<WorkerGate>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_dir: None,
            max_configs_limit: 4_000_000,
            max_depth_limit: usize::MAX,
            max_threads_limit: 8,
            request_timeout: None,
            gate: None,
        }
    }
}

/// A gate workers pass between dequeuing a job and computing it. Tests
/// close it to hold workers at a known point (and read [`held`] to know
/// a worker has arrived), which makes queue-saturation and deadline
/// tests deterministic instead of timing-dependent.
///
/// [`held`]: WorkerGate::held
#[derive(Debug)]
pub struct WorkerGate {
    open: Mutex<bool>,
    cv: Condvar,
    held: AtomicUsize,
}

impl Default for WorkerGate {
    /// An open gate — a closed default would deadlock every worker.
    fn default() -> WorkerGate {
        WorkerGate {
            open: Mutex::new(true),
            cv: Condvar::new(),
            held: AtomicUsize::new(0),
        }
    }
}

impl WorkerGate {
    /// An open gate.
    pub fn new() -> Arc<WorkerGate> {
        Arc::new(WorkerGate::default())
    }

    /// Closes the gate: workers arriving at [`pass`](WorkerGate::pass)
    /// will block.
    pub fn close(&self) {
        *self.open.lock().unwrap() = false;
    }

    /// Opens the gate and releases every held worker.
    pub fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// How many workers are currently blocked at the gate.
    pub fn held(&self) -> usize {
        self.held.load(Ordering::SeqCst)
    }

    fn pass(&self) {
        let mut open = self.open.lock().unwrap();
        if *open {
            return;
        }
        self.held.fetch_add(1, Ordering::SeqCst);
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        self.held.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Job {
    request: Request,
    conn: Arc<ConnWriter>,
}

struct JobQueue {
    capacity: usize,
    state: Mutex<(VecDeque<Job>, bool)>, // (jobs, closed)
    cv: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            capacity,
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Enqueues, or reports the observed depth if the queue is full.
    fn try_push(&self, job: Job) -> Result<usize, usize> {
        let mut state = self.state.lock().unwrap();
        if state.0.len() >= self.capacity {
            return Err(state.0.len());
        }
        state.0.push_back(job);
        let depth = state.0.len();
        self.cv.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// The write half of a connection, shared by the reader thread (busy
/// and protocol-error responses) and every worker (results). Responses
/// are matched to requests by id, so interleaving across requests is
/// fine; the lock only keeps individual frames intact.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn write(&self, response: &Response) {
        let mut stream = self.stream.lock().unwrap();
        // A failed write means the peer is gone; workers just move on.
        let _ = write_frame(&mut *stream, &response.to_json());
    }
}

/// Per-worker deadline slot, scanned by the reaper.
struct InFlight {
    deadline: Mutex<Option<Instant>>,
    cancel: &'static AtomicBool,
}

/// A handle on a running server: its bound address and its shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    gate: Arc<WorkerGate>,
    cancel_flags: Vec<&'static AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    reaper_thread: Option<JoinHandle<()>>,
    reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: cancels in-flight explorations, drains the
    /// pool, and joins every thread. Idempotent-by-consumption (takes
    /// `self`).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for flag in &self.cancel_flags {
            flag.store(true, Ordering::SeqCst);
        }
        self.gate.open(); // never strand a worker behind a test gate
        self.queue.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.reaper_thread.take() {
            let _ = t.join();
        }
        let readers = std::mem::take(&mut *self.reader_threads.lock().unwrap());
        for t in readers {
            let _ = t.join();
        }
    }
}

/// Starts a server and returns once it is listening.
///
/// # Errors
///
/// Propagates bind/configuration failures.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache = Arc::new(
        ResultCache::new(config.cache_capacity, config.cache_dir.clone())
            .map_err(io::Error::other)?,
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(JobQueue::new(config.queue_capacity.max(1)));
    let gate = config.gate.clone().unwrap_or_default();
    let workers = config.workers.max(1);

    // One leaked cancellation flag per worker (bounded: workers × server
    // starts). `ExploreOptions` is `Copy`, so its token must be
    // `'static`.
    let cancel_flags: Vec<&'static AtomicBool> = (0..workers)
        .map(|_| &*Box::leak(Box::new(AtomicBool::new(false))))
        .collect();
    let inflight: Arc<Vec<InFlight>> = Arc::new(
        cancel_flags
            .iter()
            .map(|&cancel| InFlight {
                deadline: Mutex::new(None),
                cancel,
            })
            .collect(),
    );

    let mut worker_threads = Vec::with_capacity(workers);
    for (idx, &cancel) in cancel_flags.iter().enumerate() {
        let queue = Arc::clone(&queue);
        let cache = Arc::clone(&cache);
        let gate = Arc::clone(&gate);
        let inflight = Arc::clone(&inflight);
        let config = config.clone();
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("wfc-svc-worker-{idx}"))
                .spawn(move || {
                    worker_loop(idx, &queue, &cache, &gate, &inflight, cancel, &config)
                })?,
        );
    }

    let reaper_thread = if config.request_timeout.is_some() {
        let shutdown = Arc::clone(&shutdown);
        let inflight = Arc::clone(&inflight);
        Some(
            std::thread::Builder::new()
                .name("wfc-svc-reaper".to_owned())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        let now = Instant::now();
                        for slot in inflight.iter() {
                            let expired = slot
                                .deadline
                                .lock()
                                .unwrap()
                                .is_some_and(|deadline| now >= deadline);
                            if expired {
                                slot.cancel.store(true, Ordering::SeqCst);
                            }
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                })?,
        )
    } else {
        None
    };

    let reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let readers = Arc::clone(&reader_threads);
        std::thread::Builder::new()
            .name("wfc-svc-accept".to_owned())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let shutdown = Arc::clone(&shutdown);
                            let queue = Arc::clone(&queue);
                            let spawned = std::thread::Builder::new()
                                .name("wfc-svc-conn".to_owned())
                                .spawn(move || connection_loop(stream, &shutdown, &queue));
                            if let Ok(handle) = spawned {
                                readers.lock().unwrap().push(handle);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        gate,
        cancel_flags,
        accept_thread: Some(accept_thread),
        worker_threads,
        reaper_thread,
        reader_threads,
    })
}

fn connection_loop(mut stream: TcpStream, shutdown: &AtomicBool, queue: &JobQueue) {
    // Short read timeouts let this thread observe shutdown while idle;
    // the wire layer resumes partial frames across timeouts, so framing
    // stays intact.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
    });
    while !shutdown.load(Ordering::SeqCst) {
        let doc = match read_frame(&mut stream) {
            Ok(Some(doc)) => doc,
            Ok(None) => return, // clean EOF
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle; poll shutdown again
            }
            Err(WireError::Io(_)) => return,
            Err(WireError::Protocol(message)) => {
                // Framing is no longer trustworthy; answer and hang up.
                conn.write(&Response::Error {
                    id: 0,
                    code: "bad-request".to_owned(),
                    message,
                    budget: None,
                    used: None,
                    resource: None,
                    partial: None,
                });
                return;
            }
        };
        let request = match Request::from_json(&doc) {
            Ok(request) => request,
            Err(e) => {
                // The frame itself was sound; only this message is bad.
                let id = doc
                    .get("id")
                    .and_then(wfc_obs::json::Json::as_u64)
                    .unwrap_or(0);
                conn.write(&Response::Error {
                    id,
                    code: "bad-request".to_owned(),
                    message: e.to_string(),
                    budget: None,
                    used: None,
                    resource: None,
                    partial: None,
                });
                continue;
            }
        };
        wfc_obs::counter!("service.requests");
        let id = request.id;
        match queue.try_push(Job {
            request,
            conn: Arc::clone(&conn),
        }) {
            Ok(depth) => {
                wfc_obs::gauge_max!("service.queue.depth", depth as i64);
            }
            Err(depth) => {
                wfc_obs::counter!("service.responses.busy");
                conn.write(&Response::Busy {
                    id,
                    used: depth as u64,
                    budget: queue.capacity as u64,
                });
            }
        }
    }
}

fn worker_loop(
    idx: usize,
    queue: &JobQueue,
    cache: &ResultCache,
    gate: &WorkerGate,
    inflight: &[InFlight],
    cancel: &'static AtomicBool,
    config: &ServeConfig,
) {
    while let Some(job) = queue.pop() {
        let Job { request, conn } = job;
        let started = Instant::now();
        cancel.store(false, Ordering::SeqCst);
        // Arm the deadline — and the in-engine wall clock — before
        // passing the gate, so time a test spends holding the worker
        // counts against the deadline; that is what makes the
        // cancellation tests deterministic.
        *inflight[idx].deadline.lock().unwrap() = config.request_timeout.map(|t| started + t);
        let wall = config.request_timeout.map(Wall::expires_in);
        gate.pass();

        let options = clamp_options(&request.options, config);
        let token = CancelToken::new(cancel);
        let response = if request.kind == QueryKind::Sched {
            // A sched request carries a fixture spec, not a type, and its
            // budgets live inside the spec — the canonical rendering is
            // the whole cache identity. The request deadline rides along
            // out-of-band (cancel token + wall clock, polled at schedule
            // boundaries) and is deliberately *not* part of the key:
            // control signals never change a completed query's document.
            match parse_sched_spec(&request.type_text) {
                Err(e) => error_response(request.id, &e),
                Ok(spec) => {
                    let key = sched_cache_key(&spec.canonical_text());
                    let computed = cache.get_or_compute(key, request.kind, &spec.target, || {
                        run_sched_with(&spec, token, wall)
                    });
                    match computed {
                        Ok((value, outcome)) => Response::Ok {
                            id: request.id,
                            cached: outcome.is_cached(),
                            result: (*value).clone(),
                        },
                        Err(e) => error_response(request.id, &as_deadline(e, started, config)),
                    }
                }
            }
        } else {
            match parse_query_type(&request.type_text) {
                Err(e) => error_response(request.id, &e),
                Ok(ty) => {
                    let key = cache_key(request.kind, &ty, &options);
                    let mut opts = explore_options(&options).with_cancel(token);
                    opts.budget.wall = wall;
                    let computed = cache.get_or_compute(key, request.kind, ty.name(), || {
                        run_query(request.kind, &ty, &opts)
                    });
                    match computed {
                        Ok((value, outcome)) => Response::Ok {
                            id: request.id,
                            cached: outcome.is_cached(),
                            result: (*value).clone(),
                        },
                        Err(e) => error_response(request.id, &as_deadline(e, started, config)),
                    }
                }
            }
        };
        *inflight[idx].deadline.lock().unwrap() = None;

        if wfc_obs::enabled() {
            let name = match &response {
                Response::Ok { .. } => "service.responses.ok",
                _ => "service.responses.error",
            };
            wfc_obs::metrics::Registry::global().counter(name).add(1);
            wfc_obs::metrics::Registry::global()
                .histogram(&format!("service.latency_us.{}", request.kind))
                .record(started.elapsed().as_micros() as u64);
        }
        conn.write(&response);
    }
}

fn clamp_options(requested: &QueryOptions, config: &ServeConfig) -> QueryOptions {
    QueryOptions {
        max_configs: requested.max_configs.min(config.max_configs_limit),
        max_depth: requested.max_depth.min(config.max_depth_limit),
        threads: requested.threads.clamp(1, config.max_threads_limit.max(1)),
    }
}

/// Normalizes a cancellation whose request deadline has elapsed into a
/// wall-clock [`Exhausted`] so clients see one `deadline-exceeded`
/// shape whether the engine noticed its own wall budget or the reaper's
/// token reached it first (the two race at every sync point). A
/// cancellation with time still on the clock — server shutdown — stays
/// `cancelled`.
fn as_deadline(e: QueryError, started: Instant, config: &ServeConfig) -> QueryError {
    match (e, config.request_timeout) {
        (QueryError::Cancelled { progress }, Some(timeout)) if started.elapsed() >= timeout => {
            QueryError::Exhausted(Exhausted {
                resource: Resource::WallMs,
                budget: timeout.as_millis() as u64,
                used: started.elapsed().as_millis() as u64,
                progress,
            })
        }
        (e, _) => e,
    }
}

fn error_response(id: u64, e: &QueryError) -> Response {
    let (budget, used) = match e.budget_used() {
        Some((b, u)) => (Some(b), Some(u)),
        None => (None, None),
    };
    Response::Error {
        id,
        code: e.code().to_owned(),
        message: e.to_string(),
        budget,
        used,
        resource: e.resource().map(str::to_owned),
        partial: e.partial(),
    }
}
