//! Replication peer links, multiplexed onto the service's existing IO
//! thread.
//!
//! A replicated node keeps one *outbound* link per peer: a TCP
//! connection it dials itself and on which every frame it originates
//! (hello, propose, append, ack, commit) travels. The mirror-image
//! inbound traffic arrives on ordinary accepted connections — the
//! frontend's listener does not distinguish a peer from a client until
//! a frame's `proto` field says `wfc-repl/v1`, at which point the frame
//! is routed to the [`wfc_repl::Node`] instead of the request parser.
//! That asymmetric design means no second listener, no per-peer
//! threads, and no handshake state machine: a link is usable the
//! instant `connect` succeeds, and `hello` (sent first on every fresh
//! link) triggers sequencer-driven catch-up.
//!
//! The only thread replication adds is the **dialer**, which blocks in
//! `connect_timeout` re-establishing dead links under a capped backoff
//! and hands connected sockets to the IO thread through
//! [`ReplShared::incoming`] plus a waker nudge. Workers likewise never
//! touch the node: a freshly *computed* result is pushed onto
//! [`ReplShared::submit`] and the IO thread proposes it at the next
//! wake-up — the same single-writer discipline every other mutable
//! frontend structure follows.

use std::net::{TcpStream, ToSocketAddrs as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfc_obs::json::Json;
use wfc_repl::node::Effect;
use wfc_repl::{Entry as ReplEntry, Node, NodeConfig};
use wfc_spec::hash::Hash128;
use wfc_spec::repl::{msg, PROTO};

use crate::cache::ResultCache;
use crate::conn::ConnShared;
use crate::poller::Waker;
use crate::server::accept_backoff;
use crate::wire::{FrameBuffer, QueryKind};

/// Replication settings for one `wfc serve` node.
#[derive(Clone, Debug)]
pub struct ReplConfig {
    /// This node's member id (must be unique in the cluster).
    pub node_id: u64,
    /// Peer members as `(id, addr)`, this node excluded.
    pub peers: Vec<(u64, String)>,
    /// Directory for the WAL and snapshot.
    pub data_dir: PathBuf,
    /// Compact the WAL once it holds this many records (0 disables).
    pub compact_threshold: u64,
}

/// State shared between the IO thread, the dialer, and the workers.
pub(crate) struct ReplShared {
    /// Sockets the dialer connected, waiting for the IO thread to adopt
    /// them: `(peer slot, stream)`.
    pub(crate) incoming: Mutex<Vec<(usize, TcpStream)>>,
    /// Freshly computed results workers want replicated.
    pub(crate) submit: Mutex<Vec<ReplEntry>>,
    /// Per-slot link liveness; the dialer only dials slots that are
    /// down.
    link_up: Vec<AtomicBool>,
}

/// One outbound peer link owned by the IO thread.
pub(crate) struct PeerLink {
    pub(crate) id: u64,
    pub(crate) stream: Option<TcpStream>,
    /// Outbound frame buffer, same machinery as a client connection.
    /// Frames queued while the link is down are kept (and flushed after
    /// reconnection) — a catch-up answer to a just-restarted peer races
    /// the dialer re-establishing the link, and must not lose.
    pub(crate) shared: Arc<ConnShared>,
    /// Inbound assembler: peers do not speak on our outbound link, but
    /// a read is how EOF (peer death) is detected.
    pub(crate) inbuf: FrameBuffer,
    pub(crate) write_blocked: bool,
    /// Frames queued since the link went down, capped by
    /// [`MAX_DOWN_FRAMES`] so a permanently dead peer cannot grow the
    /// buffer forever (catch-up re-derives dropped frames on hello).
    queued_down: usize,
}

/// Frames buffered for a down link before the backlog is dropped.
const MAX_DOWN_FRAMES: usize = 8192;

/// The IO thread's replication state: the node plus its links.
pub(crate) struct ReplRuntime {
    pub(crate) node: Node,
    pub(crate) links: Vec<PeerLink>,
    pub(crate) shared: Arc<ReplShared>,
    cache: Arc<ResultCache>,
}

impl ReplRuntime {
    /// Opens the node (recovering WAL + snapshot) and re-applies every
    /// recovered commit to the cache before the server accepts a single
    /// connection.
    pub(crate) fn open(
        config: &ReplConfig,
        cache: Arc<ResultCache>,
    ) -> std::io::Result<ReplRuntime> {
        let node_config = NodeConfig {
            node_id: config.node_id,
            members: config.peers.iter().map(|(id, _)| *id).collect(),
            compact_threshold: config.compact_threshold,
        };
        let (node, recovery) = Node::open(node_config, &config.data_dir)?;
        let shared = Arc::new(ReplShared {
            incoming: Mutex::new(Vec::new()),
            submit: Mutex::new(Vec::new()),
            link_up: config
                .peers
                .iter()
                .map(|_| AtomicBool::new(false))
                .collect(),
        });
        let links = config
            .peers
            .iter()
            .map(|(id, _)| PeerLink {
                id: *id,
                stream: None,
                shared: Arc::new(ConnShared::new(1)),
                inbuf: FrameBuffer::new(),
                write_blocked: false,
                queued_down: 0,
            })
            .collect();
        let mut runtime = ReplRuntime {
            node,
            links,
            shared,
            cache,
        };
        runtime.process_effects(recovery.effects);
        Ok(runtime)
    }

    /// Adopts sockets the dialer connected: each becomes the slot's live
    /// stream and immediately carries a `hello`, which is what triggers
    /// catch-up for anything this node missed while the link was down.
    pub(crate) fn drain_incoming(&mut self) {
        let adopted: Vec<(usize, TcpStream)> =
            self.shared.incoming.lock().unwrap().drain(..).collect();
        for (slot, stream) in adopted {
            let hello = self.node.hello_msg();
            let link = &mut self.links[slot];
            // The buffer queued while the link was down is kept and
            // flushed first: it may hold the catch-up a restarted peer
            // already asked for. (It is clean — `drop_link` replaced
            // the buffer, so nothing in it was half-written to the old
            // socket.) Frame order vs. the hello is immaterial: every
            // frame is idempotent to reprocess.
            link.inbuf = FrameBuffer::new();
            link.write_blocked = false;
            link.queued_down = 0;
            link.shared.enqueue_json(&hello);
            link.stream = Some(stream);
            wfc_obs::counter!("repl.links.established");
        }
    }

    /// Proposes everything the workers queued since the last wake-up.
    pub(crate) fn drain_submits(&mut self) {
        let entries: Vec<ReplEntry> = self.shared.submit.lock().unwrap().drain(..).collect();
        for entry in entries {
            match self.node.propose(entry) {
                Ok(effects) => self.process_effects(effects),
                Err(_) => wfc_obs::counter!("repl.wal.errors"),
            }
        }
    }

    /// Routes one inbound `wfc-repl/v1` frame (from any accepted
    /// connection) through the node.
    pub(crate) fn handle_frame(&mut self, doc: &Json) {
        match self.node.handle(doc) {
            Ok(effects) => self.process_effects(effects),
            Err(_) => wfc_obs::counter!("repl.wal.errors"),
        }
    }

    /// Marks a link dead; the dialer will re-establish it.
    pub(crate) fn drop_link(&mut self, slot: usize) {
        let link = &mut self.links[slot];
        if link.stream.take().is_some() {
            wfc_obs::counter!("repl.links.lost");
        }
        // A fresh buffer: the old one may hold a frame half-written to
        // the dead socket, which must never leak onto a new one.
        link.shared = Arc::new(ConnShared::new(1));
        link.write_blocked = false;
        link.queued_down = 0;
        self.shared.link_up[slot].store(false, Ordering::SeqCst);
    }

    /// Live outbound links.
    pub(crate) fn peers_connected(&self) -> u64 {
        self.links.iter().filter(|l| l.stream.is_some()).count() as u64
    }

    /// The node's `status-reply` for a client's `status` request.
    pub(crate) fn status_doc(&self, id: u64) -> Json {
        self.node.status(id, self.peers_connected())
    }

    /// The compact per-node summary embedded in `wfc-stats/v1`.
    pub(crate) fn stats_section(&self) -> Json {
        Json::obj(vec![
            ("node_id", Json::U64(self.node.node_id())),
            ("sequencer", Json::U64(self.node.sequencer())),
            ("members", Json::U64(self.node.members().len() as u64)),
            ("last_index", Json::U64(self.node.last_index())),
            ("committed", Json::U64(self.node.committed_count())),
            ("applied", Json::U64(self.node.applied_count())),
            ("peers_connected", Json::U64(self.peers_connected())),
        ])
    }

    fn process_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(link) = self.links.iter_mut().find(|l| l.id == to) {
                        if link.stream.is_none() {
                            // Queue for the reconnect flush — but
                            // bounded; past the cap the backlog is
                            // dropped and the peer's next hello
                            // re-derives what mattered.
                            link.queued_down += 1;
                            if link.queued_down > MAX_DOWN_FRAMES {
                                link.shared = Arc::new(ConnShared::new(1));
                                link.queued_down = 0;
                                wfc_obs::counter!("repl.links.backlog_dropped");
                            }
                        }
                        link.shared.enqueue_json(&msg);
                    }
                }
                Effect::Apply { index: _, entry } => self.apply(&entry),
            }
        }
    }

    /// A committed entry lands in the local cache exactly as if this
    /// node had computed it — byte-identical result document under the
    /// same key, which the differential tests pin down.
    fn apply(&self, entry: &ReplEntry) {
        let (Some(key), Some(kind)) =
            (Hash128::from_hex(&entry.key), QueryKind::parse(&entry.kind))
        else {
            // from_json validated the key shape, so this is a kind this
            // build does not know — a newer peer; skip, don't die.
            wfc_obs::counter!("repl.apply.skipped");
            return;
        };
        self.cache
            .apply_replicated(key, kind, &entry.type_name, &entry.result);
    }
}

impl std::fmt::Debug for ReplRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplRuntime")
            .field("node_id", &self.node.node_id())
            .field("peers_connected", &self.peers_connected())
            .finish_non_exhaustive()
    }
}

/// Answers a `status` request on a server with replication off.
pub(crate) fn disabled_status(id: u64) -> Json {
    Json::obj(vec![
        ("proto", Json::Str(PROTO.to_owned())),
        ("type", Json::Str(msg::STATUS_REPLY.to_owned())),
        ("id", Json::U64(id)),
        ("enabled", Json::Bool(false)),
    ])
}

/// The dialer: re-establishes dead outbound links under a capped
/// exponential backoff (the same curve as accept errors) and hands
/// connected sockets to the IO thread. One thread per server, only when
/// replication is configured.
pub(crate) fn dialer_loop(
    peers: Vec<String>,
    shared: Arc<ReplShared>,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
) {
    let mut failures: Vec<u32> = vec![0; peers.len()];
    let mut next_attempt: Vec<Instant> = vec![Instant::now(); peers.len()];
    while !shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for (slot, addr) in peers.iter().enumerate() {
            if shared.link_up[slot].load(Ordering::SeqCst) || now < next_attempt[slot] {
                continue;
            }
            match dial(addr) {
                Ok(stream) => {
                    failures[slot] = 0;
                    shared.link_up[slot].store(true, Ordering::SeqCst);
                    shared.incoming.lock().unwrap().push((slot, stream));
                    waker.wake();
                }
                Err(_) => {
                    wfc_obs::counter!("repl.dial.errors");
                    failures[slot] = failures[slot].saturating_add(1);
                    next_attempt[slot] = Instant::now() + accept_backoff(failures[slot]);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("no address for `{addr}`")))?;
    let stream = TcpStream::connect_timeout(&resolved, Duration::from_millis(500))?;
    stream.set_nonblocking(true)?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}
