//! # `wfc-service` — a concurrent, cache-fronted analysis server
//!
//! The reproduction's pipeline — classification, witnesses, Section 4.2
//! access bounds, the Theorem 5 certificate, and full consensus
//! verification — behind a versioned wire protocol, so repeated and
//! concurrent analyses share work instead of re-exploring execution
//! trees.
//!
//! Everything is `std`-only, like the rest of the workspace:
//!
//! * [`wire`] — the `wfc-svc/v1` protocol: length-prefixed JSON frames,
//!   [`Request`]/[`Response`], pipelining by id, structured `busy` and
//!   budget errors.
//! * [`analysis`] — [`run_query`], the single code path shared by the
//!   CLI subcommands and the server workers (bit-identical results by
//!   construction), plus the canonical-protocol registry.
//! * [`cache`] — [`cache_key`] over `wfc_spec::hash` content hashes,
//!   the sharded in-memory LRU, the append-only disk tier, and
//!   single-flight deduplication.
//! * [`server`] — a readiness-driven frontend (one IO thread
//!   multiplexing every socket over a std-only `poll(2)` wrapper, so
//!   idle connections cost zero threads), a batching/coalescing layer
//!   ([`BatchConfig`]) in front of a bounded entry queue with explicit
//!   backpressure, a fixed worker pool, and a deadline reaper driving
//!   the unified control plane
//!   ([`wfc_spec::control`](wfc_spec::control)) — every query kind,
//!   sched included, cancels mid-run and answers `deadline-exceeded`
//!   with partial progress.
//! * [`repl_link`] — the service half of `wfc-repl` clustering: peer
//!   links as extra registrations on the same IO thread (outbound
//!   frames ride dialed sockets, inbound repl frames arrive on
//!   ordinary accepted connections), a dialer with capped backoff,
//!   and recovery/catch-up wiring into the shared [`ResultCache`].
//! * [`client`] — a blocking client with split send/receive for
//!   pipelining, address failover, and capped connect retries.
//! * [`loadgen`] — open/closed-loop traffic generation against a
//!   running server, reporting latency percentiles and throughput as a
//!   `BENCH_service` document.
//! * [`stats`] — live introspection: per-request stage traces, the
//!   flight-recorder ring of recently completed requests, and the
//!   `wfc-stats/v1` snapshot ([`validate_stats_json`]) that a running
//!   server answers inline for the `stats` query kind.
//!
//! ## Example: in-process round trip
//!
//! ```
//! use wfc_service::{serve, Client, QueryKind, QueryOptions, Response, ServeConfig};
//!
//! let handle = serve(ServeConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let tas = wfc_spec::text::format_type(&wfc_spec::canonical::test_and_set(2));
//! let reply = client.query(QueryKind::Classify, &tas, &QueryOptions::default())?;
//! match reply {
//!     Response::Ok { result, .. } => {
//!         assert_eq!(result.get("case").and_then(|c| c.as_u64()), Some(2));
//!     }
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod batch;
pub mod cache;
pub mod client;
mod conn;
pub mod loadgen;
mod poller;
pub mod repl_link;
pub mod scenario;
pub mod server;
pub mod stats;
pub mod wire;

pub use analysis::{
    explore_options, parse_query_type, parse_sched_spec, protocol_by_name, run_query,
    run_query_text, run_query_text_with, run_query_with_protocol, run_sched, run_sched_with,
    QueryError,
};
pub use batch::BatchConfig;
pub use cache::{
    cache_key, scenario_cache_key, sched_cache_key, validate_cache_json, CacheOutcome, ResultCache,
    CACHE_SCHEMA,
};
pub use client::Client;
pub use repl_link::ReplConfig;
pub use scenario::{run_scenario_text, run_scenario_text_with, run_scenario_with};
pub use server::{accept_backoff, serve, ServeConfig, ServerHandle, WorkerGate};
pub use stats::{validate_stats_json, STATS_SCHEMA};
pub use wire::{
    validate_response_json, FrameBuffer, QueryKind, QueryOptions, Request, Response, WireError,
    PROTO,
};
