//! The `wfc-svc/v1` wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian length followed by that many
//! bytes of compact UTF-8 JSON (rendered by `wfc_obs::json`, which has
//! deterministic key order). Both directions use the same framing;
//! requests and responses carry a `proto` field naming the protocol
//! version, and responses echo the request `id`, which is what makes
//! per-connection pipelining possible — a client may have many requests
//! in flight and match answers by id (responses can arrive out of
//! order when a server runs several workers).
//!
//! Error and busy responses are structured, not bare strings: a budget
//! or deadline failure carries the same `budget`/`used`/`resource` triple
//! as [`control::Exhausted`](wfc_spec::control::Exhausted) plus a
//! `partial` [`Progress`](wfc_spec::control::Progress) snapshot of the
//! work done before the control plane stopped it, and a backpressure
//! rejection carries the observed queue depth as `used` against the
//! configured capacity as `budget`.

use std::fmt;
use std::io::{self, Read, Write};

use wfc_obs::json::Json;
use wfc_spec::control::Progress;

/// The protocol identifier carried by every frame.
pub const PROTO: &str = "wfc-svc/v1";

/// Frames larger than this are rejected before allocation (a hostile
/// peer must not be able to request an arbitrary buffer).
pub const MAX_FRAME: usize = 16 << 20;

/// A wire-level failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A frame violated the protocol (oversized, bad JSON, missing or
    /// mistyped fields, wrong `proto`).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn proto_err(message: impl Into<String>) -> WireError {
    WireError::Protocol(message.into())
}

/// Writes one value as a length-prefixed frame.
pub fn write_frame(out: &mut impl Write, value: &Json) -> Result<(), WireError> {
    let payload = value.render();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(proto_err(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
            bytes.len()
        )));
    }
    out.write_all(&(bytes.len() as u32).to_be_bytes())?;
    out.write_all(bytes)?;
    out.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages).
pub fn read_frame(input: &mut impl Read) -> Result<Option<Json>, WireError> {
    let mut header = [0u8; 4];
    // An idle timeout before any header byte arrives propagates as an
    // `Io` error (the server uses that to poll its shutdown flag); once
    // the first byte is in, timeouts resume the read so framing holds.
    match read_full(input, &mut header, false)? {
        0 => return Ok(None),
        4 => {}
        n => {
            return Err(proto_err(format!(
                "connection died {n} bytes into a header"
            )))
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(proto_err(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    if read_full(input, &mut payload, true)? != len {
        return Err(proto_err("connection died mid-frame"));
    }
    let text = std::str::from_utf8(&payload).map_err(|_| proto_err("frame is not UTF-8"))?;
    let value = wfc_obs::json::parse(text).map_err(|e| proto_err(format!("bad JSON: {e}")))?;
    Ok(Some(value))
}

/// An incremental frame decoder for nonblocking sockets: the readiness
/// frontend feeds it whatever bytes `read(2)` produced, and pulls out
/// complete frames as they materialize. A frame trickling in one byte
/// per readiness event yields exactly one document once its last byte
/// arrives — the buffer is the resumption state, so partial reads can
/// never desynchronize the framing.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, or `Ok(None)` when the buffered
    /// bytes end mid-frame (call again after the next read).
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on an oversized declared length, invalid
    /// UTF-8, or malformed JSON; the stream is not trustworthy past that
    /// point and the connection should be closed.
    pub fn next_frame(&mut self) -> Result<Option<Json>, WireError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME {
            return Err(proto_err(format!(
                "incoming frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
            )));
        }
        if pending.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let payload = &pending[4..4 + len];
        let text = std::str::from_utf8(payload).map_err(|_| proto_err("frame is not UTF-8"))?;
        let value = wfc_obs::json::parse(text).map_err(|e| proto_err(format!("bad JSON: {e}")))?;
        self.start += 4 + len;
        self.compact();
        Ok(Some(value))
    }

    /// Reclaims consumed space: cheap truncation when fully drained, an
    /// occasional shift when the dead prefix grows large.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Reads until `buf` is full or EOF; returns the bytes read. Always
/// retries `Interrupted`. `WouldBlock`/`TimedOut` are retried once at
/// least one byte has been read — or unconditionally when `retry_idle`
/// is set — so a mid-frame read timeout never desynchronizes the
/// framing, while an *idle* timeout (no bytes yet) can surface to the
/// caller as an `Io` error it treats as "poll again".
fn read_full(input: &mut impl Read, buf: &mut [u8], retry_idle: bool) -> Result<usize, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && (filled > 0 || retry_idle) =>
            {
                continue;
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

/// The analyses a `wfc-service` server can be asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Theorem 5 classification plus the one-use-bit recipe (case 2).
    Classify,
    /// The Lemma-4 minimal non-trivial pair.
    Witness,
    /// Section 4.2 access bounds (`D`, per-register `r_b`/`w_b`).
    AccessBounds,
    /// The full Theorem 5 pipeline: bounds, elimination, re-verification.
    Theorem5,
    /// Wait-freedom + agreement + validity over all `2^n` input vectors.
    VerifyConsensus,
    /// Schedule exploration of a concrete register implementation under
    /// the `wfc-sched` model checker. The request's `type` field carries
    /// a sched spec line (`<target> [key=value…]`), not a type.
    Sched,
    /// A full `wfc-scenario` file: the request's `type` field carries the
    /// scenario text, and the result is a `wfc-scenario/v1` document.
    /// Cached under the scenario's canonical text, so respelled but
    /// canonically equal files share a cache line.
    Scenario,
    /// Live server introspection: a `wfc-stats/v1` snapshot of registry
    /// metrics, per-stage latency histograms, connection/worker/batch
    /// state and the flight-recorder tail. Answered inline on the IO
    /// thread — never cached, batched, or coalesced; the `type` field
    /// is ignored.
    Stats,
}

impl QueryKind {
    /// Every query kind, in a fixed order (for tests and smoke scripts).
    pub const ALL: [QueryKind; 8] = [
        QueryKind::Classify,
        QueryKind::Witness,
        QueryKind::AccessBounds,
        QueryKind::Theorem5,
        QueryKind::VerifyConsensus,
        QueryKind::Sched,
        QueryKind::Scenario,
        QueryKind::Stats,
    ];

    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Classify => "classify",
            QueryKind::Witness => "witness",
            QueryKind::AccessBounds => "access-bounds",
            QueryKind::Theorem5 => "theorem5",
            QueryKind::VerifyConsensus => "verify-consensus",
            QueryKind::Sched => "sched",
            QueryKind::Scenario => "scenario",
            QueryKind::Stats => "stats",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<QueryKind> {
        QueryKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-request exploration budgets, part of the cache key.
///
/// `threads` is deliberately **not** part of the cache identity: every
/// analysis in the pipeline is bit-identical across thread counts
/// (enforced by `tests/parallel_differential.rs`), so results computed
/// at different parallelism must share cache lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryOptions {
    /// Maximum distinct configurations per exploration.
    pub max_configs: usize,
    /// Maximum execution-tree depth per exploration.
    pub max_depth: usize,
    /// Explorer threads *within* one request (clamped by the server).
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        let d = wfc_explorer::ExploreOptions::default();
        QueryOptions {
            max_configs: usize::try_from(d.budget.configs).unwrap_or(usize::MAX),
            max_depth: usize::try_from(d.budget.depth).unwrap_or(usize::MAX),
            threads: 1,
        }
    }
}

impl QueryOptions {
    /// This configuration with a `max_configs` budget.
    pub fn with_max_configs(mut self, max_configs: usize) -> Self {
        self.max_configs = max_configs;
        self
    }

    /// This configuration with a `max_depth` budget.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// This configuration with `threads` explorer workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("max_configs", Json::U64(self.max_configs as u64)),
            ("max_depth", Json::U64(self.max_depth as u64)),
            ("threads", Json::U64(self.threads as u64)),
        ])
    }

    fn from_json(doc: &Json) -> Result<QueryOptions, WireError> {
        let field = |name: &str, default: usize| -> Result<usize, WireError> {
            match doc.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .ok_or_else(|| proto_err(format!("options.{name} is not an integer"))),
            }
        };
        let d = QueryOptions::default();
        Ok(QueryOptions {
            max_configs: field("max_configs", d.max_configs)?,
            max_depth: field("max_depth", d.max_depth)?,
            threads: field("threads", d.threads)?,
        })
    }
}

/// One analysis request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id echoed by the response.
    pub id: u64,
    /// Which analysis to run.
    pub kind: QueryKind,
    /// The type, in the `wfc-spec` text format.
    pub type_text: String,
    /// Exploration budgets.
    pub options: QueryOptions,
}

impl Request {
    /// The request as a wire value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("proto", Json::Str(PROTO.to_owned())),
            ("id", Json::U64(self.id)),
            ("kind", Json::Str(self.kind.as_str().to_owned())),
            ("type", Json::Str(self.type_text.clone())),
            ("options", self.options.to_json()),
        ])
    }

    /// Parses a wire value.
    pub fn from_json(doc: &Json) -> Result<Request, WireError> {
        check_proto(doc)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| proto_err("request missing integer `id`"))?;
        let kind_name = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| proto_err("request missing string `kind`"))?;
        let kind = QueryKind::parse(kind_name)
            .ok_or_else(|| proto_err(format!("unknown query kind `{kind_name}`")))?;
        let type_text = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| proto_err("request missing string `type`"))?
            .to_owned();
        let options = match doc.get("options") {
            None => QueryOptions::default(),
            Some(o) => QueryOptions::from_json(o)?,
        };
        Ok(Request {
            id,
            kind,
            type_text,
            options,
        })
    }
}

/// The stable error codes a `wfc-svc/v1` error response may carry.
pub const ERROR_CODES: [&str; 7] = [
    "parse-error",
    "unsupported",
    "analysis-error",
    "budget-exceeded",
    "deadline-exceeded",
    "cancelled",
    "bad-request",
];

/// Validates a captured `wfc-svc/v1` **response** document (as saved by
/// smoke scripts or `wfc query`) against the wire schema. Beyond what
/// [`Response::from_json`] enforces structurally, error responses must
/// use a code from [`ERROR_CODES`], and `budget-exceeded`/
/// `deadline-exceeded` errors must carry the full `Exhausted` shape:
/// `budget`, `used`, a known `resource` slug, and `partial` progress.
/// `wfc-report --check` dispatches frames with this `proto` here.
pub fn validate_response_json(doc: &Json) -> Result<(), String> {
    let response = Response::from_json(doc).map_err(|e| e.to_string())?;
    let Response::Error {
        code,
        budget,
        used,
        resource,
        partial,
        ..
    } = &response
    else {
        return Ok(());
    };
    if !ERROR_CODES.contains(&code.as_str()) {
        return Err(format!("unknown error code {code:?}"));
    }
    if code == "budget-exceeded" || code == "deadline-exceeded" {
        if budget.is_none() || used.is_none() {
            return Err(format!("{code} errors must carry `budget` and `used`"));
        }
        let slug = resource
            .as_deref()
            .ok_or_else(|| format!("{code} errors must carry `resource`"))?;
        if !["configs", "depth", "schedules", "steps", "wall-ms"].contains(&slug) {
            return Err(format!("unknown resource slug {slug:?}"));
        }
        if code == "deadline-exceeded" && slug != "wall-ms" {
            return Err(format!("deadline-exceeded must be wall-ms, got {slug:?}"));
        }
        if partial.is_none() {
            return Err(format!("{code} errors must carry `partial` progress"));
        }
    }
    Ok(())
}

/// Renders a [`Progress`] snapshot as the wire's `partial` object. All
/// four counters are always present (deterministic key set), zeros
/// included, so clients need no per-field probing.
pub fn progress_to_json(p: Progress) -> Json {
    Json::obj(vec![
        ("configs", Json::U64(p.configs)),
        ("depth", Json::U64(p.depth)),
        ("schedules", Json::U64(p.schedules)),
        ("steps", Json::U64(p.steps)),
    ])
}

/// Parses a wire `partial` object back into a [`Progress`] snapshot.
/// Absent counters read as zero; a counter that is present but not an
/// integer is a protocol error.
pub fn progress_from_json(doc: &Json) -> Result<Progress, WireError> {
    let field = |name: &str| -> Result<u64, WireError> {
        match doc.get(name) {
            None => Ok(0),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| proto_err(format!("partial.{name} is not an integer"))),
        }
    };
    Ok(Progress {
        configs: field("configs")?,
        depth: field("depth")?,
        schedules: field("schedules")?,
        steps: field("steps")?,
    })
}

fn check_proto(doc: &Json) -> Result<(), WireError> {
    let proto = doc
        .get("proto")
        .and_then(Json::as_str)
        .ok_or_else(|| proto_err("frame missing `proto`"))?;
    if proto != PROTO {
        return Err(proto_err(format!(
            "peer speaks `{proto}`, this side speaks `{PROTO}`"
        )));
    }
    Ok(())
}

/// One analysis response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The analysis succeeded.
    Ok {
        /// Echo of the request id.
        id: u64,
        /// `true` if the result came from the cache (memory, disk, or a
        /// coalesced in-flight computation) rather than fresh work.
        cached: bool,
        /// The canonical result document for the query kind.
        result: Json,
    },
    /// The analysis failed.
    Error {
        /// Echo of the request id.
        id: u64,
        /// A stable machine-readable code (`parse-error`,
        /// `unsupported`, `budget-exceeded`, `deadline-exceeded`,
        /// `cancelled`, `analysis-error`, `bad-request`).
        code: String,
        /// Human-readable description.
        message: String,
        /// For `budget-exceeded`/`deadline-exceeded`: the configured
        /// budget (the wall allowance in milliseconds for deadlines).
        budget: Option<u64>,
        /// For `budget-exceeded`/`deadline-exceeded`: the observed
        /// consumption when the limit fired (same semantics as
        /// [`control::Exhausted`](wfc_spec::control::Exhausted)).
        used: Option<u64>,
        /// For `budget-exceeded`/`deadline-exceeded`: which resource
        /// ran out, as its wire slug (`configs`, `depth`, `schedules`,
        /// `steps`, `wall-ms`).
        resource: Option<String>,
        /// For `budget-exceeded`/`deadline-exceeded`/`cancelled`: the
        /// monotonic progress counters at the moment the control plane
        /// stopped the run — enough for a client to see a preempted
        /// query did real work and to resize its budgets.
        partial: Option<Progress>,
    },
    /// Backpressure: the bounded request queue is full. The request was
    /// **not** enqueued; the client may retry later.
    Busy {
        /// Echo of the request id.
        id: u64,
        /// The observed queue depth at rejection.
        used: u64,
        /// The configured queue capacity.
        budget: u64,
    },
}

impl Response {
    /// The response's request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. } | Response::Error { id, .. } | Response::Busy { id, .. } => *id,
        }
    }

    /// The response as a wire value.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok { id, cached, result } => Json::obj(vec![
                ("proto", Json::Str(PROTO.to_owned())),
                ("id", Json::U64(*id)),
                ("status", Json::Str("ok".to_owned())),
                ("cached", Json::Bool(*cached)),
                ("result", result.clone()),
            ]),
            Response::Error {
                id,
                code,
                message,
                budget,
                used,
                resource,
                partial,
            } => {
                let mut fields = vec![
                    ("proto", Json::Str(PROTO.to_owned())),
                    ("id", Json::U64(*id)),
                    ("status", Json::Str("error".to_owned())),
                    ("code", Json::Str(code.clone())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(b) = budget {
                    fields.push(("budget", Json::U64(*b)));
                }
                if let Some(u) = used {
                    fields.push(("used", Json::U64(*u)));
                }
                if let Some(r) = resource {
                    fields.push(("resource", Json::Str(r.clone())));
                }
                if let Some(p) = partial {
                    fields.push(("partial", progress_to_json(*p)));
                }
                Json::obj(fields)
            }
            Response::Busy { id, used, budget } => Json::obj(vec![
                ("proto", Json::Str(PROTO.to_owned())),
                ("id", Json::U64(*id)),
                ("status", Json::Str("busy".to_owned())),
                ("used", Json::U64(*used)),
                ("budget", Json::U64(*budget)),
            ]),
        }
    }

    /// Parses a wire value.
    pub fn from_json(doc: &Json) -> Result<Response, WireError> {
        check_proto(doc)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| proto_err("response missing integer `id`"))?;
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| proto_err("response missing string `status`"))?;
        match status {
            "ok" => Ok(Response::Ok {
                id,
                cached: matches!(doc.get("cached"), Some(Json::Bool(true))),
                result: doc
                    .get("result")
                    .cloned()
                    .ok_or_else(|| proto_err("ok response missing `result`"))?,
            }),
            "error" => Ok(Response::Error {
                id,
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or_else(|| proto_err("error response missing `code`"))?
                    .to_owned(),
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                budget: doc.get("budget").and_then(Json::as_u64),
                used: doc.get("used").and_then(Json::as_u64),
                resource: doc
                    .get("resource")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                partial: doc.get("partial").map(progress_from_json).transpose()?,
            }),
            "busy" => Ok(Response::Busy {
                id,
                used: doc
                    .get("used")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| proto_err("busy response missing `used`"))?,
                budget: doc
                    .get("budget")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| proto_err("busy response missing `budget`"))?,
            }),
            other => Err(proto_err(format!("unknown response status `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = Request {
            id: 7,
            kind: QueryKind::AccessBounds,
            type_text: "type t ports 2\n".to_owned(),
            options: QueryOptions::default().with_max_configs(123),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json()).unwrap();
        // A second frame in the same stream.
        let resp = Response::Busy {
            id: 7,
            used: 9,
            budget: 8,
        };
        write_frame(&mut buf, &resp.to_json()).unwrap();

        let mut cursor = &buf[..];
        let got = Request::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert_eq!(got, req);
        let got = Response::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert_eq!(got, resp);
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn frame_buffer_decodes_across_arbitrary_read_boundaries() {
        let first = Request {
            id: 1,
            kind: QueryKind::Classify,
            type_text: "type t ports 2\n".to_owned(),
            options: QueryOptions::default(),
        };
        let second = Request {
            id: 2,
            kind: QueryKind::Witness,
            type_text: "type u ports 3\n".to_owned(),
            options: QueryOptions::default().with_max_depth(9),
        };
        let mut stream = Vec::new();
        write_frame(&mut stream, &first.to_json()).unwrap();
        write_frame(&mut stream, &second.to_json()).unwrap();

        // Feed the stream one byte at a time: no frame may surface
        // early, and both must surface exactly once, in order.
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        for (i, byte) in stream.iter().enumerate() {
            fb.extend_from_slice(std::slice::from_ref(byte));
            while let Some(doc) = fb.next_frame().unwrap() {
                decoded.push((i, Request::from_json(&doc).unwrap()));
            }
        }
        assert_eq!(
            decoded.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            vec![first, second]
        );
        // Each frame completed only on its final byte.
        assert_eq!(decoded[1].0, stream.len() - 1);
        assert_eq!(fb.buffered(), 0, "fully drained");

        // An oversized header is a protocol error, not an allocation.
        let mut fb = FrameBuffer::new();
        fb.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn every_query_kind_round_trips_by_name() {
        for kind in QueryKind::ALL {
            assert_eq!(QueryKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(QueryKind::parse("frobnicate"), None);
    }

    #[test]
    fn responses_round_trip_with_budget_fields() {
        let cases = vec![
            Response::Ok {
                id: 1,
                cached: true,
                result: Json::obj(vec![("D", Json::U64(5))]),
            },
            Response::Error {
                id: 2,
                code: "budget-exceeded".to_owned(),
                message: "exploration exceeded the budget".to_owned(),
                budget: Some(100),
                used: Some(135),
                resource: Some("configs".to_owned()),
                partial: Some(Progress {
                    configs: 135,
                    depth: 4,
                    schedules: 0,
                    steps: 0,
                }),
            },
            Response::Error {
                id: 3,
                code: "parse-error".to_owned(),
                message: "line 2".to_owned(),
                budget: None,
                used: None,
                resource: None,
                partial: None,
            },
            Response::Error {
                id: 5,
                code: "deadline-exceeded".to_owned(),
                message: "exploration exceeded the deadline of 50 ms".to_owned(),
                budget: Some(50),
                used: Some(61),
                resource: Some("wall-ms".to_owned()),
                partial: Some(Progress {
                    schedules: 1,
                    steps: 17,
                    ..Progress::default()
                }),
            },
            Response::Busy {
                id: 4,
                used: 64,
                budget: 64,
            },
        ];
        for r in cases {
            let back = Response::from_json(&r.to_json()).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.id(), r.id());
        }
    }

    #[test]
    fn response_validator_enforces_the_error_schema() {
        let ok = Response::Ok {
            id: 1,
            cached: false,
            result: Json::obj(vec![("D", Json::U64(5))]),
        };
        assert!(validate_response_json(&ok.to_json()).is_ok());

        let full = Response::Error {
            id: 2,
            code: "deadline-exceeded".to_owned(),
            message: "too slow".to_owned(),
            budget: Some(50),
            used: Some(61),
            resource: Some("wall-ms".to_owned()),
            partial: Some(Progress::default()),
        };
        assert!(validate_response_json(&full.to_json()).is_ok());

        // A deadline error without its quantities fails the check.
        let mut stripped = full.clone();
        if let Response::Error {
            resource, partial, ..
        } = &mut stripped
        {
            *resource = None;
            *partial = None;
        }
        assert!(validate_response_json(&stripped.to_json()).is_err());

        // Unknown codes and mismatched resources fail too.
        let mut bad_code = full.clone();
        if let Response::Error { code, .. } = &mut bad_code {
            *code = "out-of-cheese".to_owned();
        }
        assert!(validate_response_json(&bad_code.to_json()).is_err());
        let mut bad_resource = full;
        if let Response::Error { resource, .. } = &mut bad_resource {
            *resource = Some("configs".to_owned());
        }
        assert!(validate_response_json(&bad_resource.to_json()).is_err());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Oversized declared length.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::Protocol(_))
        ));
        // Truncated payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&10u32.to_be_bytes());
        bad.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::Protocol(_))
        ));
        // Payload that is not JSON.
        let mut bad = Vec::new();
        bad.extend_from_slice(&3u32.to_be_bytes());
        bad.extend_from_slice(b"}{!");
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::Protocol(_))
        ));
        // Wrong protocol version.
        let doc = Json::obj(vec![
            ("proto", Json::Str("wfc-svc/v0".to_owned())),
            ("id", Json::U64(1)),
        ]);
        assert!(Request::from_json(&doc).is_err());
    }
}
