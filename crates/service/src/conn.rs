//! The write half of a frontend connection, shared between the IO loop
//! (which owns the socket and performs the actual nonblocking writes)
//! and the workers (which only *queue* rendered response frames).
//!
//! Workers never touch a socket: enqueueing appends pre-framed bytes to
//! an outbound buffer under a short lock and the IO loop drains it when
//! `poll(2)` says the peer can absorb more. That is what lets responses
//! to pipelined requests complete out of order without per-connection
//! threads, and what keeps a slow-reading client from ever blocking a
//! worker.

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use wfc_obs::json::Json;
use wfc_spec::stage::Stage;

use crate::stats::RequestTrace;
use crate::wire::write_frame;

#[derive(Default)]
struct OutBuf {
    bytes: Vec<u8>,
    pos: usize,
    /// Bytes ever framed into this buffer (monotonic across drains).
    enqueued_total: u64,
    /// Bytes ever accepted by the socket.
    flushed_total: u64,
    /// Traces waiting for their response's last byte to leave, keyed
    /// by the `enqueued_total` watermark that byte corresponds to;
    /// watermarks are non-decreasing, so this drains front-first as
    /// `flushed_total` advances.
    pending_traces: VecDeque<(u64, Box<RequestTrace>)>,
}

/// Shared per-connection response channel. See the module docs.
pub(crate) struct ConnShared {
    outbound: Mutex<OutBuf>,
    has_output: AtomicBool,
    closed: AtomicBool,
}

impl ConnShared {
    pub(crate) fn new() -> ConnShared {
        ConnShared {
            outbound: Mutex::new(OutBuf::default()),
            has_output: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Frames `doc` and appends it to the outbound buffer. A no-op once
    /// the connection closed — late worker responses to a departed peer
    /// are dropped, matching the old frontend's failed-write behavior.
    pub(crate) fn enqueue_json(&self, doc: &Json) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        let mut out = self.outbound.lock().unwrap();
        let before = out.bytes.len();
        // Vec<u8> as Write is infallible; the only error is an
        // over-MAX_FRAME response, which is dropped like a dead peer.
        let _ = write_frame(&mut out.bytes, doc);
        out.enqueued_total += (out.bytes.len() - before) as u64;
        self.has_output.store(true, Ordering::SeqCst);
    }

    /// [`enqueue_json`](ConnShared::enqueue_json) for a traced request:
    /// stamps `ResponseEnqueued` and parks the trace on the buffer's
    /// byte watermark, to be completed when the frame's last byte is
    /// actually written. Hands the trace back untouched if the response
    /// could not be queued (connection closed, frame oversized) so the
    /// caller can finalize it as dropped.
    pub(crate) fn enqueue_json_traced(
        &self,
        doc: &Json,
        mut trace: Box<RequestTrace>,
    ) -> Option<Box<RequestTrace>> {
        if self.closed.load(Ordering::SeqCst) {
            return Some(trace);
        }
        let mut out = self.outbound.lock().unwrap();
        let before = out.bytes.len();
        let _ = write_frame(&mut out.bytes, doc);
        let appended = (out.bytes.len() - before) as u64;
        out.enqueued_total += appended;
        if appended == 0 {
            return Some(trace); // over-MAX_FRAME response: dropped
        }
        trace.stamp(Stage::ResponseEnqueued);
        let watermark = out.enqueued_total;
        out.pending_traces.push_back((watermark, trace));
        self.has_output.store(true, Ordering::SeqCst);
        None
    }

    /// Whether buffered response bytes are waiting for the socket.
    pub(crate) fn has_output(&self) -> bool {
        self.has_output.load(Ordering::SeqCst)
    }

    /// Writes buffered bytes until the buffer empties or the socket
    /// pushes back. Returns `Ok(true)` when fully flushed, `Ok(false)`
    /// on `WouldBlock` (the IO loop then polls for writability).
    /// Traces whose response's last byte just left are moved into
    /// `completed` with their `BytesFlushed` stamp taken; the caller
    /// (the IO thread) finalizes them.
    ///
    /// # Errors
    ///
    /// Any real socket error; the caller closes the connection.
    pub(crate) fn flush(
        &self,
        stream: &mut TcpStream,
        completed: &mut Vec<RequestTrace>,
    ) -> io::Result<bool> {
        let mut out = self.outbound.lock().unwrap();
        let result = loop {
            if out.pos >= out.bytes.len() {
                break Ok(true);
            }
            let pos = out.pos;
            match stream.write(&out.bytes[pos..]) {
                Ok(0) => break Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(n) => {
                    out.pos += n;
                    out.flushed_total += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(false),
                Err(e) => break Err(e),
            }
        };
        // Complete traces regardless of how the loop ended: partial
        // progress before an error still delivered those responses.
        while out
            .pending_traces
            .front()
            .is_some_and(|(watermark, _)| *watermark <= out.flushed_total)
        {
            let (_, mut trace) = out.pending_traces.pop_front().unwrap();
            trace.stamp(Stage::BytesFlushed);
            completed.push(*trace);
        }
        if result.as_ref().is_ok_and(|flushed_all| *flushed_all) {
            out.bytes.clear();
            out.pos = 0;
            self.has_output.store(false, Ordering::SeqCst);
        } else if out.pos > 256 * 1024 {
            // Reclaim large written prefixes so a persistently slow
            // reader doesn't pin already-delivered bytes forever.
            let pos = out.pos;
            out.bytes.drain(..pos);
            out.pos = 0;
        }
        result
    }

    /// Takes every trace still awaiting its flush watermark — the
    /// connection-teardown path, where those responses will never be
    /// delivered.
    pub(crate) fn take_pending_traces(&self) -> Vec<RequestTrace> {
        let mut out = self.outbound.lock().unwrap();
        out.pending_traces.drain(..).map(|(_, t)| *t).collect()
    }

    /// Marks the connection gone; subsequent enqueues are dropped.
    pub(crate) fn set_closed(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnShared")
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}
