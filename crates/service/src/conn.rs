//! The write half of a frontend connection, shared between the IO loop
//! (which owns the socket and performs the actual nonblocking writes)
//! and the workers (which only *queue* rendered response frames).
//!
//! Workers never touch a socket — and since the wait-free refactor they
//! never touch a lock on this path either. Each registered producer
//! thread (the IO thread and every worker) renders its response frame
//! into bytes on its own stack and pushes the boxed frame onto its own
//! bounded SPSC ring ([`wfc_waitfree::BoxRing`]); the IO thread is the
//! sole consumer of every ring and absorbs frames into the outbound
//! byte buffer when it next flushes. A worker's enqueue is therefore
//! wait-free: one ring push and one flag store, never blocked behind a
//! peer's enqueue or behind the IO thread mid-`write(2)`.
//!
//! Two fallbacks keep the fast path honest:
//!
//! * a **spill queue** (plain `Mutex<VecDeque>`) absorbs pushes from
//!   unregistered threads (tests, future callers) and overflow when a
//!   ring is full. Per-producer FIFO order survives the detour: a
//!   producer routes to the spill whenever `has_spill` is raised, and
//!   the flag only clears once the spill has fully drained — so a
//!   producer never has an older frame in the spill while pushing a
//!   newer one onto its ring;
//! * the **lost-wakeup handshake** on `has_output`: producers push,
//!   *then* store the flag (`SeqCst`); the flusher swaps the flag to
//!   `false` *before* draining. If the swap observes the store, the
//!   acquire side of the RMW makes the push visible to the drain; if
//!   the store lands after the swap, the flag is simply up again and
//!   the IO loop (nudged by the existing self-pipe waker) flushes once
//!   more. Either way no frame is stranded.
//!
//! That is what lets responses to pipelined requests complete out of
//! order without per-connection threads, and what keeps a slow-reading
//! client from ever blocking a worker.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use wfc_obs::json::Json;
use wfc_spec::stage::Stage;
use wfc_waitfree::BoxRing;

use crate::stats::RequestTrace;
use crate::wire::write_frame;

/// Slots per producer ring. Small on purpose: the ring only has to
/// cover the IO thread's inter-flush window, and overflow degrades to
/// the spill queue, not to loss.
const RING_CAPACITY: usize = 64;

thread_local! {
    /// The ring index this thread pushes to, on every connection.
    /// Registered once at thread start by the server wiring; threads
    /// that never register use the spill queue.
    static PRODUCER_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Claims ring `slot` for the calling thread on every [`ConnShared`].
/// The server registers the IO thread as slot 0 and worker `i` as slot
/// `i + 1`; each slot must belong to exactly one thread, which is what
/// makes the per-slot rings single-producer.
pub(crate) fn register_producer(slot: usize) {
    PRODUCER_SLOT.with(|s| s.set(Some(slot)));
}

/// One rendered response: the framed bytes plus the request trace that
/// rides to the flush watermark with them.
struct Frame {
    bytes: Vec<u8>,
    trace: Option<Box<RequestTrace>>,
}

#[derive(Default)]
struct OutBuf {
    bytes: Vec<u8>,
    pos: usize,
    /// Bytes ever framed into this buffer (monotonic across drains).
    enqueued_total: u64,
    /// Bytes ever accepted by the socket.
    flushed_total: u64,
    /// Traces waiting for their response's last byte to leave, keyed
    /// by the `enqueued_total` watermark that byte corresponds to;
    /// watermarks are non-decreasing, so this drains front-first as
    /// `flushed_total` advances.
    pending_traces: VecDeque<(u64, Box<RequestTrace>)>,
}

/// Shared per-connection response channel. See the module docs.
pub(crate) struct ConnShared {
    /// One SPSC ring per registered producer thread; the IO thread is
    /// the only consumer.
    rings: Vec<BoxRing<Frame>>,
    /// Overflow and unregistered-thread fallback.
    spill: Mutex<VecDeque<Box<Frame>>>,
    /// Raised (under the spill lock) while the spill may hold frames;
    /// producers route to the spill whenever it is up, which preserves
    /// their FIFO order across the detour.
    has_spill: AtomicBool,
    /// The IO-thread-only staging buffer frames are absorbed into.
    outbound: Mutex<OutBuf>,
    has_output: AtomicBool,
    closed: AtomicBool,
}

impl ConnShared {
    /// A channel for `producers` registered threads (slots
    /// `0..producers`); pushes from other threads spill.
    pub(crate) fn new(producers: usize) -> ConnShared {
        ConnShared {
            rings: (0..producers.max(1))
                .map(|_| BoxRing::new(RING_CAPACITY))
                .collect(),
            spill: Mutex::new(VecDeque::new()),
            has_spill: AtomicBool::new(false),
            outbound: Mutex::new(OutBuf::default()),
            has_output: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Renders `doc` into a framed byte vector; `None` drops an
    /// over-`MAX_FRAME` response, like a dead peer.
    fn render(doc: &Json) -> Option<Vec<u8>> {
        let mut bytes = Vec::new();
        // Vec<u8> as Write is infallible; the only error is an
        // over-MAX_FRAME response, which leaves `bytes` empty.
        let _ = write_frame(&mut bytes, doc);
        if bytes.is_empty() {
            None
        } else {
            Some(bytes)
        }
    }

    /// Frames `doc` and queues it for the IO thread. A no-op once the
    /// connection closed — late worker responses to a departed peer are
    /// dropped, matching the old frontend's failed-write behavior.
    pub(crate) fn enqueue_json(&self, doc: &Json) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        let Some(bytes) = Self::render(doc) else {
            return;
        };
        self.push_frame(Frame { bytes, trace: None });
    }

    /// [`enqueue_json`](ConnShared::enqueue_json) for a traced request:
    /// stamps `ResponseEnqueued` and sends the trace along with the
    /// frame; the flush that writes the frame's last byte completes it.
    /// Hands the trace back untouched if the response could not be
    /// queued (connection closed, frame oversized) so the caller can
    /// finalize it as dropped.
    pub(crate) fn enqueue_json_traced(
        &self,
        doc: &Json,
        mut trace: Box<RequestTrace>,
    ) -> Option<Box<RequestTrace>> {
        if self.closed.load(Ordering::SeqCst) {
            return Some(trace);
        }
        let Some(bytes) = Self::render(doc) else {
            return Some(trace); // over-MAX_FRAME response: dropped
        };
        trace.stamp(Stage::ResponseEnqueued);
        self.push_frame(Frame {
            bytes,
            trace: Some(trace),
        });
        None
    }

    /// Queues one rendered frame: ring on the fast path, spill on
    /// overflow or from unregistered threads, then the `has_output`
    /// handshake (see the module docs for the lost-wakeup argument).
    fn push_frame(&self, frame: Frame) {
        let mut frame = Box::new(frame);
        let slot = PRODUCER_SLOT
            .with(Cell::get)
            .filter(|&s| s < self.rings.len());
        match slot {
            // The spill check keeps per-producer FIFO: while this
            // producer may still have frames in the spill, newer frames
            // must follow them there, not jump the queue via the ring.
            Some(s) if !self.has_spill.load(Ordering::SeqCst) => {
                // Safety: `register_producer` gives each slot to exactly
                // one thread, so this thread is ring `s`'s only producer.
                if let Err(back) = unsafe { self.rings[s].push(frame) } {
                    frame = back;
                    self.spill_push(frame);
                }
            }
            _ => self.spill_push(frame),
        }
        self.has_output.store(true, Ordering::SeqCst);
    }

    fn spill_push(&self, frame: Box<Frame>) {
        wfc_obs::counter!("service.conn.spilled");
        let mut spill = self.spill.lock().unwrap();
        spill.push_back(frame);
        // Under the lock, so it cannot race the flusher's clear: the
        // flag is only lowered while the spill is observably empty.
        self.has_spill.store(true, Ordering::SeqCst);
    }

    /// Moves every queued frame into the outbound byte buffer,
    /// assigning watermarks in absorption order. IO thread only (it is
    /// the sole ring consumer).
    fn absorb(&self, out: &mut OutBuf) {
        fn absorb_frame(out: &mut OutBuf, frame: Frame) {
            out.bytes.extend_from_slice(&frame.bytes);
            out.enqueued_total += frame.bytes.len() as u64;
            if let Some(trace) = frame.trace {
                out.pending_traces.push_back((out.enqueued_total, trace));
            }
        }
        for ring in &self.rings {
            // Safety: absorb runs on the IO thread only — the single
            // consumer of every ring.
            while let Some(frame) = unsafe { ring.pop() } {
                absorb_frame(out, *frame);
            }
        }
        if self.has_spill.load(Ordering::SeqCst) {
            let mut spill = self.spill.lock().unwrap();
            while let Some(frame) = spill.pop_front() {
                absorb_frame(out, *frame);
            }
            self.has_spill.store(false, Ordering::SeqCst);
        }
    }

    /// Whether queued response bytes are waiting for the socket.
    pub(crate) fn has_output(&self) -> bool {
        self.has_output.load(Ordering::SeqCst)
    }

    /// Absorbs queued frames, then writes buffered bytes until the
    /// buffer empties or the socket pushes back. Returns `Ok(true)`
    /// when fully flushed, `Ok(false)` on `WouldBlock` (the IO loop
    /// then polls for writability). Traces whose response's last byte
    /// just left are moved into `completed` with their `BytesFlushed`
    /// stamp taken; the caller (the IO thread) finalizes them.
    ///
    /// # Errors
    ///
    /// Any real socket error; the caller closes the connection.
    pub(crate) fn flush(
        &self,
        stream: &mut TcpStream,
        completed: &mut Vec<RequestTrace>,
    ) -> io::Result<bool> {
        // Claim the wake before draining — a producer whose push this
        // drain misses re-raises the flag after it (module docs).
        self.has_output.swap(false, Ordering::SeqCst);
        let mut out = self.outbound.lock().unwrap();
        self.absorb(&mut out);
        let result = loop {
            if out.pos >= out.bytes.len() {
                break Ok(true);
            }
            let pos = out.pos;
            match stream.write(&out.bytes[pos..]) {
                Ok(0) => break Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(n) => {
                    out.pos += n;
                    out.flushed_total += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(false),
                Err(e) => break Err(e),
            }
        };
        // Complete traces regardless of how the loop ended: partial
        // progress before an error still delivered those responses.
        while out
            .pending_traces
            .front()
            .is_some_and(|(watermark, _)| *watermark <= out.flushed_total)
        {
            let (_, mut trace) = out.pending_traces.pop_front().unwrap();
            trace.stamp(Stage::BytesFlushed);
            completed.push(*trace);
        }
        if result.as_ref().is_ok_and(|flushed_all| *flushed_all) {
            out.bytes.clear();
            out.pos = 0;
        } else {
            if out.pos > 256 * 1024 {
                // Reclaim large written prefixes so a persistently slow
                // reader doesn't pin already-delivered bytes forever.
                let pos = out.pos;
                out.bytes.drain(..pos);
                out.pos = 0;
            }
            // Bytes remain: keep the flag up so the IO loop retries
            // (its interest set includes POLLOUT while output pends).
            self.has_output.store(true, Ordering::SeqCst);
        }
        result
    }

    /// Takes every trace still awaiting its flush watermark — including
    /// those still riding in the rings — the connection-teardown path,
    /// where those responses will never be delivered. IO thread only.
    pub(crate) fn take_pending_traces(&self) -> Vec<RequestTrace> {
        let mut out = self.outbound.lock().unwrap();
        self.absorb(&mut out);
        out.pending_traces.drain(..).map(|(_, t)| *t).collect()
    }

    /// Marks the connection gone; subsequent enqueues are dropped.
    pub(crate) fn set_closed(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnShared")
            .field("producers", &self.rings.len())
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}
