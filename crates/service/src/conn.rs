//! The write half of a frontend connection, shared between the IO loop
//! (which owns the socket and performs the actual nonblocking writes)
//! and the workers (which only *queue* rendered response frames).
//!
//! Workers never touch a socket: enqueueing appends pre-framed bytes to
//! an outbound buffer under a short lock and the IO loop drains it when
//! `poll(2)` says the peer can absorb more. That is what lets responses
//! to pipelined requests complete out of order without per-connection
//! threads, and what keeps a slow-reading client from ever blocking a
//! worker.

use std::io::{self, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use wfc_obs::json::Json;

use crate::wire::write_frame;

#[derive(Default)]
struct OutBuf {
    bytes: Vec<u8>,
    pos: usize,
}

/// Shared per-connection response channel. See the module docs.
pub(crate) struct ConnShared {
    outbound: Mutex<OutBuf>,
    has_output: AtomicBool,
    closed: AtomicBool,
}

impl ConnShared {
    pub(crate) fn new() -> ConnShared {
        ConnShared {
            outbound: Mutex::new(OutBuf::default()),
            has_output: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Frames `doc` and appends it to the outbound buffer. A no-op once
    /// the connection closed — late worker responses to a departed peer
    /// are dropped, matching the old frontend's failed-write behavior.
    pub(crate) fn enqueue_json(&self, doc: &Json) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        let mut out = self.outbound.lock().unwrap();
        // Vec<u8> as Write is infallible; the only error is an
        // over-MAX_FRAME response, which is dropped like a dead peer.
        let _ = write_frame(&mut out.bytes, doc);
        self.has_output.store(true, Ordering::SeqCst);
    }

    /// Whether buffered response bytes are waiting for the socket.
    pub(crate) fn has_output(&self) -> bool {
        self.has_output.load(Ordering::SeqCst)
    }

    /// Writes buffered bytes until the buffer empties or the socket
    /// pushes back. Returns `Ok(true)` when fully flushed, `Ok(false)`
    /// on `WouldBlock` (the IO loop then polls for writability).
    ///
    /// # Errors
    ///
    /// Any real socket error; the caller closes the connection.
    pub(crate) fn flush(&self, stream: &mut TcpStream) -> io::Result<bool> {
        let mut out = self.outbound.lock().unwrap();
        while out.pos < out.bytes.len() {
            let pos = out.pos;
            match stream.write(&out.bytes[pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => out.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if out.pos == out.bytes.len() {
            out.bytes.clear();
            out.pos = 0;
            self.has_output.store(false, Ordering::SeqCst);
            return Ok(true);
        }
        // Reclaim large written prefixes so a persistently slow reader
        // doesn't pin already-delivered bytes forever.
        if out.pos > 256 * 1024 {
            let pos = out.pos;
            out.bytes.drain(..pos);
            out.pos = 0;
        }
        Ok(false)
    }

    /// Marks the connection gone; subsequent enqueues are dropped.
    pub(crate) fn set_closed(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnShared")
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}
