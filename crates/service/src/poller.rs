//! Readiness polling for the server frontend — a minimal, `std`-only
//! wrapper over `poll(2)` plus a self-pipe [`Waker`], following the
//! workspace convention of tiny `extern "C"` shims (the CLI already
//! declares `signal(2)` the same way) instead of external crates.
//!
//! The interface is level-triggered: [`wait`] reports, for every file
//! descriptor handed to it, whether it is currently readable/writable,
//! and keeps reporting so until the condition is consumed. That lets
//! the IO loop stay stateless about edge bookkeeping — it simply
//! rebuilds its interest set each iteration.
//!
//! On non-Unix targets (no `poll`, no raw fds) the same API degrades
//! to a short-sleep scan that reports everything ready; the caller's
//! nonblocking reads/writes then sort out reality via `WouldBlock`.
//! Correctness is preserved, only latency and idle cost degrade.

/// What [`wait`] observed for one registered descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Readiness {
    /// Data (or EOF, or an error) can be read without blocking.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// The peer hung up or the descriptor is invalid; close it.
    pub hangup: bool,
}

/// Interest in one descriptor: `(fd, want_read, want_write)`.
pub(crate) type Interest = (Fd, bool, bool);

#[cfg(unix)]
pub(crate) use unix_impl::{fd_of, wait, Fd, Waker};

#[cfg(not(unix))]
pub(crate) use fallback_impl::{fd_of, wait, Fd, Waker};

#[cfg(unix)]
mod unix_impl {
    use super::{Interest, Readiness};
    use std::fs::File;
    use std::io::{self, Read as _, Write as _};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};
    use std::os::raw::{c_int, c_ulong};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    /// A raw descriptor as `poll(2)` sees it.
    pub(crate) type Fd = RawFd;

    /// The descriptor behind any socket/listener.
    pub(crate) fn fd_of<T: AsRawFd>(t: &T) -> Fd {
        t.as_raw_fd()
    }

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
    }

    /// Level-triggered wait over `interests`, filling `out` (one
    /// [`Readiness`] per interest, same order) and returning how many
    /// descriptors are ready. A signal interruption reads as a timeout.
    ///
    /// Error conditions (`POLLERR`/`POLLHUP`/`POLLNVAL`) are folded
    /// into `readable` so the owner's next `read` surfaces the actual
    /// `io::Error` (or EOF) and closes the connection through the one
    /// teardown path.
    pub(crate) fn wait(
        interests: &[Interest],
        timeout: Duration,
        out: &mut Vec<Readiness>,
    ) -> io::Result<usize> {
        let mut fds: Vec<PollFd> = interests
            .iter()
            .map(|&(fd, read, write)| {
                let mut events = 0i16;
                if read {
                    events |= POLLIN;
                }
                if write {
                    events |= POLLOUT;
                }
                PollFd {
                    fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
        out.clear();
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                out.resize(interests.len(), Readiness::default());
                return Ok(0);
            }
            return Err(e);
        }
        out.extend(fds.iter().map(|p| Readiness {
            readable: p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
            writable: p.revents & (POLLOUT | POLLERR) != 0,
            hangup: p.revents & (POLLHUP | POLLNVAL) != 0,
        }));
        Ok(rc as usize)
    }

    /// Self-pipe waker: worker threads call [`wake`](Waker::wake) after
    /// queuing response bytes, which makes a blocked [`wait`] return
    /// immediately (the read end is registered as an interest). The
    /// `pending` flag dedups wakes so the pipe never holds more than a
    /// byte or two regardless of response volume.
    pub(crate) struct Waker {
        pending: AtomicBool,
        read: File,
        write: File,
    }

    impl Waker {
        pub(crate) fn new() -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: both fds were just created by pipe(2) and are
            // exclusively owned by the two File wrappers.
            let (read, write) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
            Ok(Waker {
                pending: AtomicBool::new(false),
                read,
                write,
            })
        }

        pub(crate) fn wake(&self) {
            if !self.pending.swap(true, Ordering::SeqCst) {
                let _ = (&self.write).write_all(&[1]);
            }
        }

        /// The read end, for the IO loop's interest set.
        pub(crate) fn fd(&self) -> Fd {
            self.read.as_raw_fd()
        }

        /// Consumes pending wake bytes. Only call when [`wait`] reported
        /// the read end readable — the pipe is a blocking descriptor.
        ///
        /// Clearing `pending` *after* the read keeps wakes lossless: a
        /// racing `wake` either wrote its byte before the read (consumed
        /// here, flag re-set is harmless) or after (the byte survives
        /// and the next `wait` returns immediately).
        pub(crate) fn drain(&self) {
            let mut buf = [0u8; 64];
            let _ = (&self.read).read(&mut buf);
            self.pending.store(false, Ordering::SeqCst);
        }
    }

    impl std::fmt::Debug for Waker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Waker").finish_non_exhaustive()
        }
    }
}

#[cfg(not(unix))]
mod fallback_impl {
    use super::{Interest, Readiness};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    /// Placeholder descriptor; the fallback never inspects it.
    pub(crate) type Fd = i32;

    pub(crate) fn fd_of<T>(_t: &T) -> Fd {
        0
    }

    /// Degraded level-triggered wait: naps briefly, then reports every
    /// descriptor readable and writable. The caller's nonblocking
    /// syscalls turn the optimism into `WouldBlock` where it is wrong.
    pub(crate) fn wait(
        interests: &[Interest],
        timeout: Duration,
        out: &mut Vec<Readiness>,
    ) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        out.clear();
        out.resize(
            interests.len(),
            Readiness {
                readable: true,
                writable: true,
                hangup: false,
            },
        );
        Ok(interests.len())
    }

    /// Flag-only waker: the fallback `wait` sleeps at most 2 ms, so a
    /// set flag is observed promptly without a pipe.
    #[derive(Debug)]
    pub(crate) struct Waker {
        pending: AtomicBool,
    }

    impl Waker {
        pub(crate) fn new() -> io::Result<Waker> {
            Ok(Waker {
                pending: AtomicBool::new(false),
            })
        }

        pub(crate) fn wake(&self) {
            self.pending.store(true, Ordering::SeqCst);
        }

        pub(crate) fn fd(&self) -> Fd {
            0
        }

        pub(crate) fn drain(&self) {
            self.pending.store(false, Ordering::SeqCst);
        }
    }
}
