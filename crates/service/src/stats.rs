//! Live service introspection: per-request stage tracing, the flight
//! recorder, and the `wfc-stats/v1` snapshot answered by the `stats`
//! query kind.
//!
//! ## Stage tracing
//!
//! Every accepted frame gets a [`RequestTrace`]: a process-unique
//! sequence number plus one microsecond stamp per
//! [`Stage`](wfc_spec::stage::Stage) it crosses, all measured from one
//! monotonic origin (the instant its bytes began arriving), so the
//! stamps are monotone by construction. The trace travels *with* the
//! request — IO thread → batcher → worker → back to the IO thread on
//! the response path — and is finalized exactly once, when the last
//! response byte leaves the socket (or the request is dropped). A
//! finalized trace feeds the seven telescoping
//! `service.stage.<interval>_us` histograms and one packed record into
//! the flight recorder.
//!
//! Tracing exists only while `wfc_obs` is enabled: with observability
//! off, [`IntroCtx::trace`] returns `None`, no ring is ever allocated,
//! and the hot path pays one relaxed load — PR 2's zero-cost-when-off
//! contract, extended.
//!
//! ## The `stats` snapshot
//!
//! A `stats` request is answered **inline on the IO thread**, before
//! the batcher ever sees it — it is structurally exempt from caching,
//! coalescing, batching, and queueing, so it works even when the queue
//! is saturated and every worker is wedged. The snapshot reads the
//! metrics registry non-destructively and the flight ring wait-free;
//! it never blocks the writers it observes (the module-level rationale
//! in [`wfc_obs::flight`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wfc_obs::flight::{FlightRecorder, RECORD_WORDS};
use wfc_obs::json::Json;
use wfc_obs::metrics::{HistogramSnapshot, Registry};
use wfc_spec::stage::{Interval, Stage};

use crate::batch::JobQueue;
use crate::server::ServeConfig;
use crate::wire::QueryKind;

/// The stats snapshot's schema tag.
pub const STATS_SCHEMA: &str = "wfc-stats/v1";

/// How many flight records a snapshot embeds (the newest ones); the
/// full ring capacity can be larger.
const SNAPSHOT_FLIGHT_TAIL: usize = 32;

/// Histogram names for the seven intervals, parallel to
/// [`Interval::ALL`] (a lookup table so the hot path never formats).
const INTERVAL_HIST: [&str; 7] = [
    "service.stage.decode_us",
    "service.stage.admit_us",
    "service.stage.batch_us",
    "service.stage.queue_us",
    "service.stage.engine_us",
    "service.stage.respond_us",
    "service.stage.flush_us",
];

/// Histogram name for the accepted → bytes-flushed total.
const TOTAL_HIST: &str = "service.stage.total_us";

/// How a request's result was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Not yet determined (the request died before the engine).
    Unknown = 0,
    /// Computed fresh by a worker.
    Fresh = 1,
    /// Answered from another request's in-flight computation.
    Coalesced = 2,
    /// Served from the result cache.
    CacheHit = 3,
    /// Answered inline on the IO thread (`stats` itself).
    Inline = 4,
}

impl Disposition {
    fn from_code(code: u8) -> Disposition {
        match code {
            1 => Disposition::Fresh,
            2 => Disposition::Coalesced,
            3 => Disposition::CacheHit,
            4 => Disposition::Inline,
            _ => Disposition::Unknown,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Disposition::Unknown => "unknown",
            Disposition::Fresh => "fresh",
            Disposition::Coalesced => "coalesced",
            Disposition::CacheHit => "cache-hit",
            Disposition::Inline => "inline",
        }
    }
}

/// How the request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TraceOutcome {
    /// Still in flight (never appears in a finalized record).
    Pending = 0,
    /// An `ok` response was delivered.
    Ok = 1,
    /// An `error` response was delivered.
    Error = 2,
    /// A `busy` rejection was delivered.
    Busy = 3,
    /// The peer vanished before the response could be delivered.
    Dropped = 4,
}

impl TraceOutcome {
    fn from_code(code: u8) -> TraceOutcome {
        match code {
            1 => TraceOutcome::Ok,
            2 => TraceOutcome::Error,
            3 => TraceOutcome::Busy,
            4 => TraceOutcome::Dropped,
            _ => TraceOutcome::Pending,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Pending => "pending",
            TraceOutcome::Ok => "ok",
            TraceOutcome::Error => "error",
            TraceOutcome::Busy => "busy",
            TraceOutcome::Dropped => "dropped",
        }
    }
}

const ANOMALY_SLOW: u8 = 1;
const ANOMALY_DEADLINE: u8 = 2;
const ANOMALY_BUSY: u8 = 4;

fn anomaly_names(flags: u8) -> Vec<Json> {
    let mut names = Vec::new();
    if flags & ANOMALY_SLOW != 0 {
        names.push(Json::Str("slow".to_owned()));
    }
    if flags & ANOMALY_DEADLINE != 0 {
        names.push(Json::Str("deadline".to_owned()));
    }
    if flags & ANOMALY_BUSY != 0 {
        names.push(Json::Str("busy".to_owned()));
    }
    names
}

/// One in-flight request's stage stamps. Boxed and moved along the
/// pipeline with the request; all stamps share one monotonic origin.
#[derive(Debug)]
pub(crate) struct RequestTrace {
    /// Process-unique trace sequence number (the flight record's id).
    pub(crate) seq: u64,
    /// The wire request id (client-chosen, echoed on the response).
    pub(crate) request_id: u64,
    pub(crate) kind: QueryKind,
    started: Instant,
    /// Elapsed microseconds at each stage, `u32::MAX`-capped.
    stamps: [u32; Stage::ALL.len()],
    /// Bit `i` set ⇔ `stamps[i]` was taken.
    set: u8,
    pub(crate) disposition: Disposition,
    pub(crate) outcome: TraceOutcome,
    /// The response was a `deadline-exceeded` error.
    pub(crate) deadline_exceeded: bool,
}

impl RequestTrace {
    fn new(seq: u64, request_id: u64, kind: QueryKind, accepted: Instant) -> Box<RequestTrace> {
        let mut trace = Box::new(RequestTrace {
            seq,
            request_id,
            kind,
            started: accepted,
            stamps: [0; Stage::ALL.len()],
            set: 0,
            disposition: Disposition::Unknown,
            outcome: TraceOutcome::Pending,
            deadline_exceeded: false,
        });
        trace.set |= 1; // Accepted is the origin: stamp 0 at bit 0.
        trace
    }

    /// Stamps `stage` with the elapsed time since acceptance. Stamps
    /// are taken in pipeline order from one monotonic origin, so the
    /// recorded values are non-decreasing by construction.
    pub(crate) fn stamp(&mut self, stage: Stage) {
        let us = self.started.elapsed().as_micros().min(u32::MAX as u128) as u32;
        self.stamps[stage.index()] = us;
        self.set |= 1 << stage.index();
    }

    fn get(&self, stage: Stage) -> Option<u32> {
        (self.set & (1 << stage.index()) != 0).then_some(self.stamps[stage.index()])
    }

    /// End-to-end micros: the latest stamp taken.
    fn total_us(&self) -> u64 {
        Stage::ALL
            .into_iter()
            .rev()
            .find_map(|s| self.get(s))
            .unwrap_or(0) as u64
    }

    /// Packs the finalized trace into one flight record. Layout:
    /// word 0 = trace seq; word 1 = metadata (kind code, disposition,
    /// outcome, anomaly flags, stamp set-mask in bytes 0–4); words
    /// 2–5 = the eight stage stamps as `lo | hi << 32` pairs; word 6 =
    /// total micros; word 7 = wire request id.
    fn pack(&self, anomaly: u8) -> [u64; RECORD_WORDS] {
        let kind_code = QueryKind::ALL
            .iter()
            .position(|k| *k == self.kind)
            .unwrap_or(0) as u64;
        let meta = kind_code
            | (self.disposition as u64) << 8
            | (self.outcome as u64) << 16
            | (anomaly as u64) << 24
            | (self.set as u64) << 32;
        [
            self.seq,
            meta,
            self.stamps[0] as u64 | (self.stamps[1] as u64) << 32,
            self.stamps[2] as u64 | (self.stamps[3] as u64) << 32,
            self.stamps[4] as u64 | (self.stamps[5] as u64) << 32,
            self.stamps[6] as u64 | (self.stamps[7] as u64) << 32,
            self.total_us(),
            self.request_id,
        ]
    }
}

/// Renders one packed flight record back into the snapshot's JSON
/// shape (the inverse of [`RequestTrace::pack`]).
fn unpack_record(ticket: u64, words: &[u64; RECORD_WORDS]) -> Json {
    let meta = words[1];
    let kind = QueryKind::ALL
        .get((meta & 0xff) as usize)
        .map_or("unknown", |k| k.as_str());
    let disposition = Disposition::from_code((meta >> 8) as u8);
    let outcome = TraceOutcome::from_code((meta >> 16) as u8);
    let anomaly = (meta >> 24) as u8;
    let set = (meta >> 32) as u8;
    let mut stamps = [0u32; Stage::ALL.len()];
    for (pair, chunk) in words[2..6].iter().zip(stamps.chunks_mut(2)) {
        chunk[0] = *pair as u32;
        chunk[1] = (*pair >> 32) as u32;
    }
    let stages = Stage::ALL
        .into_iter()
        .filter(|s| set & (1 << s.index()) != 0)
        .map(|s| (s.as_str(), Json::U64(stamps[s.index()] as u64)))
        .collect();
    Json::obj(vec![
        ("id", Json::U64(ticket)),
        ("request_id", Json::U64(words[7])),
        ("kind", Json::Str(kind.to_owned())),
        ("disposition", Json::Str(disposition.as_str().to_owned())),
        ("outcome", Json::Str(outcome.as_str().to_owned())),
        ("anomaly", Json::Arr(anomaly_names(anomaly))),
        ("total_us", Json::U64(words[6])),
        ("stages", Json::obj(stages)),
    ])
}

/// The server's introspection context: the trace sequence, live
/// in-flight count, the flight recorder (allocated only when
/// observability is on), and the static facts the snapshot reports.
/// One per `serve()` call, shared by the IO thread and every worker.
pub(crate) struct IntroCtx {
    started: Instant,
    seq: AtomicU64,
    accepted_total: AtomicU64,
    inflight: AtomicUsize,
    recorder: Option<FlightRecorder>,
    anomaly_threshold_us: Option<u64>,
    workers: usize,
    max_connections: usize,
    conn_count: Arc<AtomicUsize>,
}

impl IntroCtx {
    pub(crate) fn new(config: &ServeConfig, conn_count: Arc<AtomicUsize>) -> Arc<IntroCtx> {
        // The ring is allocated once, here, and only when observability
        // is on — a disabled server has no ring at all (zero-cost-off).
        let recorder = (wfc_obs::enabled() && config.flight_capacity > 0)
            .then(|| FlightRecorder::new(config.flight_capacity));
        Arc::new(IntroCtx {
            started: Instant::now(),
            seq: AtomicU64::new(0),
            accepted_total: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            recorder,
            anomaly_threshold_us: config
                .anomaly_threshold
                .map(|t| t.as_micros().min(u64::MAX as u128) as u64),
            workers: config.workers.max(1),
            max_connections: config.max_connections,
            conn_count,
        })
    }

    /// Counts one well-formed request (always, independent of obs).
    pub(crate) fn note_request(&self) {
        self.accepted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Opens a trace for an accepted frame, or `None` with obs off —
    /// the single gate that keeps the whole tracing layer zero-cost
    /// when disabled.
    pub(crate) fn trace(
        &self,
        request_id: u64,
        kind: QueryKind,
        accepted: Instant,
    ) -> Option<Box<RequestTrace>> {
        if !wfc_obs::enabled() {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        Some(RequestTrace::new(seq, request_id, kind, accepted))
    }

    /// Marks one computation in flight; the guard decrements on drop.
    pub(crate) fn enter_flight(self: &Arc<Self>) -> FlightGuard {
        let n = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        wfc_obs::gauge_set!("service.inflight", n as i64);
        FlightGuard(Arc::clone(self))
    }

    /// Finalizes a completed trace: feeds the per-interval histograms,
    /// trips anomaly counters, and publishes the packed flight record.
    pub(crate) fn finalize(&self, trace: &RequestTrace) {
        for (name, interval) in INTERVAL_HIST.iter().zip(Interval::ALL) {
            if let (Some(a), Some(b)) = (trace.get(interval.start), trace.get(interval.end)) {
                wfc_obs::histogram!(*name, b.saturating_sub(a) as u64);
            }
        }
        let total = trace.total_us();
        wfc_obs::histogram!(TOTAL_HIST, total);
        let mut anomaly = 0u8;
        if self.anomaly_threshold_us.is_some_and(|t| total > t) {
            anomaly |= ANOMALY_SLOW;
            wfc_obs::counter!("service.anomalies.latency");
        }
        if trace.deadline_exceeded {
            anomaly |= ANOMALY_DEADLINE;
            wfc_obs::counter!("service.anomalies.deadline");
        }
        if trace.outcome == TraceOutcome::Busy {
            anomaly |= ANOMALY_BUSY;
            wfc_obs::counter!("service.anomalies.busy");
        }
        if anomaly != 0 {
            wfc_obs::counter!("service.anomalies");
        }
        if let Some(recorder) = &self.recorder {
            recorder.push(&trace.pack(anomaly));
            wfc_obs::counter!("service.flight.recorded");
        }
    }

    /// Finalizes a trace whose peer vanished before delivery.
    pub(crate) fn finalize_dropped(&self, mut trace: RequestTrace) {
        trace.outcome = TraceOutcome::Dropped;
        self.finalize(&trace);
    }

    /// Builds the `wfc-stats/v1` snapshot. Called inline on the IO
    /// thread; reads the registry non-destructively (unlike
    /// `RunReport::collect`, which resets it) and the ring wait-free.
    pub(crate) fn build_stats(&self, queue: &JobQueue, open_entries: usize) -> Json {
        let snapshot = Registry::global().snapshot();
        let server = Json::obj(vec![
            ("workers", Json::U64(self.workers as u64)),
            (
                "connections",
                Json::U64(self.conn_count.load(Ordering::Relaxed) as u64),
            ),
            ("max_connections", Json::U64(self.max_connections as u64)),
            ("queue_depth", Json::U64(queue.depth() as u64)),
            ("queue_capacity", Json::U64(queue.capacity() as u64)),
            ("batch_open_entries", Json::U64(open_entries as u64)),
            (
                "inflight",
                Json::U64(self.inflight.load(Ordering::Relaxed) as u64),
            ),
            (
                "requests_accepted",
                Json::U64(self.accepted_total.load(Ordering::Relaxed)),
            ),
            ("obs_enabled", Json::Bool(wfc_obs::enabled())),
        ]);
        let counters = snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.as_str(), Json::U64(*value)))
            .collect();
        let gauges = snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.as_str(), Json::I64(*value)))
            .collect();
        let histograms = snapshot
            .histograms
            .iter()
            .map(|(name, hist)| (name.as_str(), histogram_doc(hist, true)))
            .collect();
        let mut stages: Vec<(&str, Json)> = INTERVAL_HIST
            .iter()
            .zip(Interval::ALL)
            .filter_map(|(hist_name, interval)| {
                let (_, hist) = snapshot.histograms.iter().find(|(n, _)| n == hist_name)?;
                Some((interval.name, histogram_doc(hist, false)))
            })
            .collect();
        if let Some((_, hist)) = snapshot.histograms.iter().find(|(n, _)| n == TOTAL_HIST) {
            stages.push(("total", histogram_doc(hist, false)));
        }
        let (capacity, recorded, records) = match &self.recorder {
            Some(recorder) => {
                let all = recorder.snapshot();
                let tail = all.len().saturating_sub(SNAPSHOT_FLIGHT_TAIL);
                (
                    recorder.capacity() as u64,
                    recorder.recorded(),
                    all[tail..]
                        .iter()
                        .map(|r| unpack_record(r.ticket, &r.words))
                        .collect(),
                )
            }
            None => (0, 0, Vec::new()),
        };
        Json::obj(vec![
            ("schema", Json::Str(STATS_SCHEMA.to_owned())),
            (
                "uptime_us",
                Json::U64(self.started.elapsed().as_micros().min(u64::MAX as u128) as u64),
            ),
            ("server", server),
            ("counters", Json::obj(counters)),
            ("gauges", Json::obj(gauges)),
            ("histograms", Json::obj(histograms)),
            ("stages", Json::obj(stages)),
            (
                "flight",
                Json::obj(vec![
                    ("capacity", Json::U64(capacity)),
                    ("recorded", Json::U64(recorded)),
                    ("records", Json::Arr(records)),
                ]),
            ),
        ])
    }
}

impl std::fmt::Debug for IntroCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntroCtx")
            .field("recorder", &self.recorder)
            .finish_non_exhaustive()
    }
}

/// RAII in-flight marker from [`IntroCtx::enter_flight`].
pub(crate) struct FlightGuard(Arc<IntroCtx>);

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let n = self.0.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        wfc_obs::gauge_set!("service.inflight", n as i64);
    }
}

/// Summarizes one histogram snapshot: count, value sum, integer mean,
/// and quantile upper bounds; raw nonzero buckets when `with_buckets`.
fn histogram_doc(hist: &HistogramSnapshot, with_buckets: bool) -> Json {
    let mean = hist.total.checked_div(hist.count).unwrap_or(0);
    let mut fields = vec![
        ("count", Json::U64(hist.count)),
        ("total", Json::U64(hist.total)),
        ("mean", Json::U64(mean)),
    ];
    for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        if let Some(bound) = hist.quantile_upper_bound(q) {
            fields.push((name, Json::U64(bound)));
        }
    }
    if with_buckets {
        fields.push((
            "buckets",
            Json::Arr(
                hist.buckets
                    .iter()
                    .map(|&(bound, n)| Json::Arr(vec![Json::U64(bound), Json::U64(n)]))
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

fn field_u64(doc: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing u64 `{key}`"))
}

fn validate_histogram_doc(doc: &Json, ctx: &str) -> Result<(), String> {
    let count = field_u64(doc, ctx, "count")?;
    field_u64(doc, ctx, "total")?;
    field_u64(doc, ctx, "mean")?;
    for q in ["p50", "p95", "p99"] {
        match doc.get(q) {
            None if count == 0 => {}
            Some(v) if v.as_u64().is_some() => {}
            _ => {
                return Err(format!(
                    "{ctx}: `{q}` must be a u64 (present iff count > 0)"
                ))
            }
        }
    }
    if let Some(buckets) = doc.get("buckets") {
        let buckets = buckets
            .as_arr()
            .ok_or_else(|| format!("{ctx}: `buckets` must be an array"))?;
        let mut last_bound = None;
        let mut sum = 0u64;
        for bucket in buckets {
            let pair = bucket.as_arr().filter(|p| p.len() == 2);
            let (bound, n) = match pair {
                Some(p) => match (p[0].as_u64(), p[1].as_u64()) {
                    (Some(b), Some(n)) => (b, n),
                    _ => return Err(format!("{ctx}: bucket entries must be u64 pairs")),
                },
                None => return Err(format!("{ctx}: buckets must be `[bound, count]` pairs")),
            };
            if last_bound.is_some_and(|last| bound <= last) {
                return Err(format!("{ctx}: bucket bounds must strictly increase"));
            }
            last_bound = Some(bound);
            sum += n;
        }
        if sum != count {
            return Err(format!(
                "{ctx}: bucket counts sum to {sum}, count is {count}"
            ));
        }
    }
    Ok(())
}

/// Validates a `wfc-stats/v1` snapshot document's shape: the schema
/// tag, the server block, every metric summary, and per-record stage
/// monotonicity in the flight tail.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_stats_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == STATS_SCHEMA => {}
        other => return Err(format!("schema must be `{STATS_SCHEMA}`, got {other:?}")),
    }
    field_u64(doc, "stats", "uptime_us")?;
    let server = doc
        .get("server")
        .filter(|v| v.as_obj().is_some())
        .ok_or("missing `server` object")?;
    for key in [
        "workers",
        "connections",
        "max_connections",
        "queue_depth",
        "queue_capacity",
        "batch_open_entries",
        "inflight",
        "requests_accepted",
    ] {
        field_u64(server, "server", key)?;
    }
    if !matches!(server.get("obs_enabled"), Some(Json::Bool(_))) {
        return Err("server: missing bool `obs_enabled`".to_owned());
    }
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing `counters` object")?;
    for (name, value) in counters {
        if value.as_u64().is_none() {
            return Err(format!("counter `{name}` must be a u64"));
        }
    }
    let gauges = doc
        .get("gauges")
        .and_then(Json::as_obj)
        .ok_or("missing `gauges` object")?;
    for (name, value) in gauges {
        if !matches!(value, Json::U64(_) | Json::I64(_)) {
            return Err(format!("gauge `{name}` must be an integer"));
        }
    }
    let histograms = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("missing `histograms` object")?;
    for (name, hist) in histograms {
        validate_histogram_doc(hist, &format!("histogram `{name}`"))?;
    }
    let stages = doc
        .get("stages")
        .and_then(Json::as_obj)
        .ok_or("missing `stages` object")?;
    for (name, hist) in stages {
        if !Interval::ALL.iter().any(|i| i.name == name) && name != "total" {
            return Err(format!("unknown stage interval `{name}`"));
        }
        validate_histogram_doc(hist, &format!("stage `{name}`"))?;
    }
    let flight = doc
        .get("flight")
        .filter(|v| v.as_obj().is_some())
        .ok_or("missing `flight` object")?;
    field_u64(flight, "flight", "capacity")?;
    field_u64(flight, "flight", "recorded")?;
    let records = flight
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("flight: missing `records` array")?;
    let mut last_id = None;
    for record in records {
        let ctx = "flight record";
        let id = field_u64(record, ctx, "id")?;
        if last_id.is_some_and(|last| id <= last) {
            return Err("flight records must be in increasing id order".to_owned());
        }
        last_id = Some(id);
        field_u64(record, ctx, "request_id")?;
        field_u64(record, ctx, "total_us")?;
        for key in ["kind", "disposition", "outcome"] {
            if record.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("{ctx}: missing string `{key}`"));
            }
        }
        if record.get("anomaly").and_then(Json::as_arr).is_none() {
            return Err(format!("{ctx}: missing `anomaly` array"));
        }
        let stamps = record
            .get("stages")
            .filter(|v| v.as_obj().is_some())
            .ok_or_else(|| format!("{ctx}: missing `stages` object"))?;
        let mut last_stamp = None;
        for stage in Stage::ALL {
            let Some(value) = stamps.get(stage.as_str()) else {
                continue;
            };
            let us = value
                .as_u64()
                .ok_or_else(|| format!("{ctx}: stage `{}` must be a u64", stage.as_str()))?;
            if last_stamp.is_some_and(|last| us < last) {
                return Err(format!(
                    "{ctx}: stage `{}` stamp {us} regresses below {}",
                    stage.as_str(),
                    last_stamp.unwrap_or(0)
                ));
            }
            last_stamp = Some(us);
        }
    }
    // Clustered servers append a `repl` section; standalone ones omit
    // it. When present its core counters must be sane.
    if let Some(repl) = doc.get("repl") {
        if repl.as_obj().is_none() {
            return Err("`repl` must be an object".to_owned());
        }
        for key in [
            "node_id",
            "sequencer",
            "members",
            "last_index",
            "committed",
            "applied",
            "peers_connected",
        ] {
            field_u64(repl, "repl", key)?;
        }
        let committed = field_u64(repl, "repl", "committed")?;
        let applied = field_u64(repl, "repl", "applied")?;
        if applied > committed {
            return Err(format!(
                "repl: applied {applied} exceeds committed {committed}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Tests here toggle the global obs flag and reset the registry;
    /// they must not interleave with each other.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn test_ctx(flight_capacity: usize) -> Arc<IntroCtx> {
        IntroCtx::new(
            &ServeConfig {
                flight_capacity,
                ..ServeConfig::default()
            },
            Arc::new(AtomicUsize::new(0)),
        )
    }

    #[test]
    fn interval_histogram_names_match_the_stage_vocabulary() {
        for (name, interval) in INTERVAL_HIST.iter().zip(Interval::ALL) {
            assert_eq!(*name, format!("service.stage.{}_us", interval.name));
        }
    }

    #[test]
    fn traces_pack_and_unpack_without_loss() {
        let accepted = Instant::now() - Duration::from_micros(500);
        let mut trace = RequestTrace::new(7, 42, QueryKind::Witness, accepted);
        for stage in Stage::ALL.into_iter().skip(1) {
            trace.stamp(stage);
        }
        trace.disposition = Disposition::CacheHit;
        trace.outcome = TraceOutcome::Ok;
        let words = trace.pack(ANOMALY_SLOW | ANOMALY_DEADLINE);
        let doc = unpack_record(3, &words);
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("request_id").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("witness"));
        assert_eq!(
            doc.get("disposition").and_then(Json::as_str),
            Some("cache-hit")
        );
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            doc.get("anomaly").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let stages = doc.get("stages").unwrap();
        for stage in Stage::ALL {
            assert_eq!(
                stages.get(stage.as_str()).and_then(Json::as_u64),
                Some(trace.stamps[stage.index()] as u64),
                "stage {} must round-trip",
                stage.as_str()
            );
        }
        assert_eq!(
            doc.get("total_us").and_then(Json::as_u64),
            Some(trace.total_us())
        );
    }

    #[test]
    fn stamps_are_monotone_and_partial_traces_report_their_latest() {
        let accepted = Instant::now();
        let mut trace = RequestTrace::new(0, 1, QueryKind::Classify, accepted);
        trace.stamp(Stage::Decoded);
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp(Stage::Enqueued);
        let decoded = trace.get(Stage::Decoded).unwrap();
        let enqueued = trace.get(Stage::Enqueued).unwrap();
        assert!(enqueued >= decoded);
        assert!(enqueued >= 2000, "2ms sleep must register: {enqueued}");
        assert_eq!(trace.get(Stage::EngineStart), None);
        assert_eq!(trace.total_us(), enqueued as u64, "latest stamp wins");
    }

    #[test]
    fn snapshot_validates_and_reflects_finalized_traces() {
        let _l = obs_lock();
        let was = wfc_obs::enabled();
        wfc_obs::set_enabled(true);
        Registry::global().reset();
        let ctx = test_ctx(8);
        let queue = JobQueue::new(4);
        ctx.note_request();
        let mut trace = ctx
            .trace(9, QueryKind::Classify, Instant::now())
            .expect("tracing is on when obs is on");
        for stage in Stage::ALL.into_iter().skip(1) {
            trace.stamp(stage);
        }
        trace.disposition = Disposition::Fresh;
        trace.outcome = TraceOutcome::Ok;
        ctx.finalize(&trace);

        let doc = ctx.build_stats(&queue, 2);
        validate_stats_json(&doc).expect("snapshot must validate");
        let server = doc.get("server").unwrap();
        assert_eq!(
            server.get("requests_accepted").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            server.get("batch_open_entries").and_then(Json::as_u64),
            Some(2)
        );
        let flight = doc.get("flight").unwrap();
        assert_eq!(flight.get("recorded").and_then(Json::as_u64), Some(1));
        assert_eq!(
            flight
                .get("records")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        let stages = doc.get("stages").and_then(Json::as_obj).unwrap();
        assert!(
            !stages.is_empty(),
            "finalize must populate stage histograms"
        );
        Registry::global().reset();
        wfc_obs::set_enabled(was);
    }

    #[test]
    fn disabled_obs_means_no_ring_and_no_traces() {
        let _l = obs_lock();
        let was = wfc_obs::enabled();
        wfc_obs::set_enabled(false);
        let ctx = test_ctx(64);
        assert!(
            ctx.trace(1, QueryKind::Classify, Instant::now()).is_none(),
            "tracing must be off with obs off"
        );
        let queue = JobQueue::new(4);
        let doc = ctx.build_stats(&queue, 0);
        validate_stats_json(&doc).expect("disabled snapshot still validates");
        let flight = doc.get("flight").unwrap();
        assert_eq!(
            flight.get("capacity").and_then(Json::as_u64),
            Some(0),
            "no ring may be allocated with obs off"
        );
        wfc_obs::set_enabled(was);
    }

    #[test]
    fn validator_rejects_regressing_stage_stamps() {
        let record = Json::obj(vec![
            ("id", Json::U64(0)),
            ("request_id", Json::U64(1)),
            ("kind", Json::Str("classify".to_owned())),
            ("disposition", Json::Str("fresh".to_owned())),
            ("outcome", Json::Str("ok".to_owned())),
            ("anomaly", Json::Arr(Vec::new())),
            ("total_us", Json::U64(5)),
            (
                "stages",
                Json::obj(vec![("accepted", Json::U64(10)), ("decoded", Json::U64(4))]),
            ),
        ]);
        let doc = Json::obj(vec![
            ("schema", Json::Str(STATS_SCHEMA.to_owned())),
            ("uptime_us", Json::U64(1)),
            (
                "server",
                Json::obj(vec![
                    ("workers", Json::U64(1)),
                    ("connections", Json::U64(0)),
                    ("max_connections", Json::U64(1)),
                    ("queue_depth", Json::U64(0)),
                    ("queue_capacity", Json::U64(1)),
                    ("batch_open_entries", Json::U64(0)),
                    ("inflight", Json::U64(0)),
                    ("requests_accepted", Json::U64(0)),
                    ("obs_enabled", Json::Bool(true)),
                ]),
            ),
            ("counters", Json::obj(Vec::new())),
            ("gauges", Json::obj(Vec::new())),
            ("histograms", Json::obj(Vec::new())),
            ("stages", Json::obj(Vec::new())),
            (
                "flight",
                Json::obj(vec![
                    ("capacity", Json::U64(8)),
                    ("recorded", Json::U64(1)),
                    ("records", Json::Arr(vec![record])),
                ]),
            ),
        ]);
        let err = validate_stats_json(&doc).unwrap_err();
        assert!(err.contains("regresses"), "unexpected error: {err}");
    }
}
