//! Request batching and coalescing between the readiness frontend and
//! the worker pool.
//!
//! The IO loop never hands individual requests to the queue. It feeds
//! them to a [`Batcher`], which
//!
//! * **coalesces** syntactically identical queries — same kind, same
//!   raw type/spec text, same result-affecting budgets — onto one
//!   pending [`Entry`] while that entry has not yet started computing.
//!   Followers cost no queue capacity and are answered from the
//!   leader's single computation with `cached: true` (the semantic
//!   layer below, the cache's single-flight, still catches duplicates
//!   this syntactic check misses);
//! * **batches** distinct entries arriving close together into one
//!   queue push under [`BatchConfig`], amortizing queue wakeups at high
//!   arrival rates. The default `max_batch_delay` of zero never holds a
//!   request back: a batch is whatever accumulated within a single
//!   readiness iteration.
//!
//! Capacity accounting is per *entry* (not per batch, not per
//! request): the `busy` depth a rejected client sees is the number of
//! distinct computations ahead of it, preserving the backpressure
//! semantics of the old thread-per-connection queue.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use wfc_spec::hash::Hasher128;
use wfc_spec::stage::Stage;

use crate::conn::ConnShared;
use crate::stats::RequestTrace;
use crate::wire::{QueryKind, QueryOptions, Request, PROTO};

/// Knobs for the frontend's batching layer.
///
/// The defaults (`max_batch_size: 16`, `max_batch_delay: 0`,
/// `adaptive: true`) add no latency: entries are dispatched at the end
/// of the readiness iteration that produced them. A nonzero delay
/// trades a bounded wait for larger batches; with `adaptive` set the
/// delay is skipped whenever the queue is empty (workers are starving —
/// holding requests back buys nothing).
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// A batch is dispatched as soon as it holds this many entries.
    pub max_batch_size: usize,
    /// How long an open batch may wait for company before dispatch.
    pub max_batch_delay: Duration,
    /// Skip the delay while the queue is empty.
    pub adaptive: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch_size: 16,
            max_batch_delay: Duration::ZERO,
            adaptive: true,
        }
    }
}

/// One requester awaiting an entry's result: where to queue the
/// response, the request id to stamp on it, and the request's stage
/// trace (when observability is on).
pub(crate) struct Respondent {
    pub(crate) conn: Arc<ConnShared>,
    pub(crate) id: u64,
    pub(crate) trace: Option<Box<RequestTrace>>,
}

struct EntryState {
    respondents: Vec<Respondent>,
    dispatched: bool,
    started: bool,
}

/// One distinct computation: the query to run plus every requester
/// coalesced onto it. New respondents may attach until a worker calls
/// [`begin`](Entry::begin); the first respondent is the one whose
/// request created the entry.
pub(crate) struct Entry {
    pub(crate) kind: QueryKind,
    pub(crate) type_text: String,
    pub(crate) options: QueryOptions,
    state: Mutex<EntryState>,
}

impl Entry {
    fn new(
        request: Request,
        conn: Arc<ConnShared>,
        trace: Option<Box<RequestTrace>>,
    ) -> Arc<Entry> {
        let id = request.id;
        Arc::new(Entry {
            kind: request.kind,
            type_text: request.type_text,
            options: request.options,
            state: Mutex::new(EntryState {
                respondents: vec![Respondent { conn, id, trace }],
                dispatched: false,
                started: false,
            }),
        })
    }

    /// Attaches a follower; hands the respondent back once a worker
    /// has begun computing (the follower must then become its own
    /// entry). A follower joining an already-dispatched batch inherits
    /// its position: its `Dispatched` stamp is taken on attach.
    fn attach(&self, mut respondent: Respondent) -> Result<(), Respondent> {
        let mut state = self.state.lock().unwrap();
        if state.started {
            return Err(respondent);
        }
        if state.dispatched {
            if let Some(trace) = &mut respondent.trace {
                trace.stamp(Stage::Dispatched);
            }
        }
        state.respondents.push(respondent);
        Ok(())
    }

    /// Stamps `Dispatched` on every respondent as the entry's batch is
    /// pushed to the job queue.
    fn mark_dispatched(&self) {
        let mut state = self.state.lock().unwrap();
        state.dispatched = true;
        for respondent in &mut state.respondents {
            if let Some(trace) = &mut respondent.trace {
                trace.stamp(Stage::Dispatched);
            }
        }
    }

    /// Claims the entry for computation and takes its respondents; no
    /// further attaches can succeed.
    pub(crate) fn begin(&self) -> Vec<Respondent> {
        let mut state = self.state.lock().unwrap();
        state.started = true;
        std::mem::take(&mut state.respondents)
    }

    fn started(&self) -> bool {
        self.state.lock().unwrap().started
    }
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// A dispatched batch: distinct entries a worker processes in order.
pub(crate) type Batch = Vec<Arc<Entry>>;

/// The bounded batch queue between the IO loop and the worker pool.
/// Depth is counted in *entries* so `busy` responses report how many
/// computations are actually pending.
pub(crate) struct JobQueue {
    capacity: usize,
    state: Mutex<(VecDeque<Batch>, bool)>, // (batches, closed)
    entries: AtomicUsize,
    cv: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> JobQueue {
        JobQueue {
            capacity,
            state: Mutex::new((VecDeque::new(), false)),
            entries: AtomicUsize::new(0),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries queued and not yet claimed by a worker.
    pub(crate) fn depth(&self) -> usize {
        self.entries.load(Ordering::SeqCst)
    }

    /// Unconditional push — the [`Batcher`] enforces capacity *before*
    /// admitting an entry, so dispatch can never overflow.
    fn push(&self, batch: Batch) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let depth = self.entries.fetch_add(batch.len(), Ordering::SeqCst) + batch.len();
        wfc_obs::gauge_set!("service.queue.depth", depth as i64);
        state.0.push_back(batch);
        self.cv.notify_one();
    }

    /// Blocks for the next batch; `None` once closed and drained.
    pub(crate) fn pop(&self) -> Option<Batch> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(batch) = state.0.pop_front() {
                let depth = self.entries.fetch_sub(batch.len(), Ordering::SeqCst) - batch.len();
                wfc_obs::gauge_set!("service.queue.depth", depth as i64);
                return Some(batch);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    pub(crate) fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

/// The syntactic coalescing identity: kind, raw text, and the budgets
/// that shape the result. `threads` is excluded for the same reason
/// the cache excludes it — parallelism never changes the answer.
pub(crate) fn coalesce_key(kind: QueryKind, type_text: &str, options: &QueryOptions) -> u128 {
    let mut h = Hasher128::new();
    h.write_str(PROTO);
    h.write_str(kind.as_str());
    h.write_str(type_text);
    h.write_u64(options.max_configs as u64);
    h.write_u64(options.max_depth as u64);
    h.finish().0
}

/// What [`Batcher::submit`] did with a request.
#[derive(Debug)]
pub(crate) enum Submit {
    /// Joined an existing pending entry; answered by its computation.
    Coalesced,
    /// Became a new entry in the open batch.
    Accepted,
    /// Queue (plus open batch) at capacity; `used` is the observed
    /// entry depth for the `busy` response.
    Rejected {
        /// Pending distinct computations observed at rejection.
        used: usize,
    },
}

/// Owned by the IO thread; accumulates entries and dispatches batches.
/// Not `Sync` — all mutation happens on the one readiness loop, which
/// is what keeps admission (capacity check → push) race-free.
pub(crate) struct Batcher {
    config: BatchConfig,
    open: Vec<Arc<Entry>>,
    opened_at: Option<Instant>,
    /// Pending entries by coalescing key. `Weak` so a finished entry
    /// (worker done, `Arc` dropped) can never absorb a new request;
    /// pruned on every dispatch.
    pending: HashMap<u128, Weak<Entry>>,
}

impl Batcher {
    pub(crate) fn new(config: BatchConfig) -> Batcher {
        Batcher {
            config: BatchConfig {
                max_batch_size: config.max_batch_size.max(1),
                ..config
            },
            open: Vec::new(),
            opened_at: None,
            pending: HashMap::new(),
        }
    }

    /// Admits one decoded request. `now` is injected so tests can step
    /// time deterministically. The request's stage trace (if tracing is
    /// on) is taken out of `trace` on admission and travels with the
    /// respondent; on [`Submit::Rejected`] it is left in place so the
    /// caller can finalize the busy answer.
    pub(crate) fn submit(
        &mut self,
        request: Request,
        conn: &Arc<ConnShared>,
        queue: &JobQueue,
        now: Instant,
        trace: &mut Option<Box<RequestTrace>>,
    ) -> Submit {
        let key = coalesce_key(request.kind, &request.type_text, &request.options);
        if let Some(weak) = self.pending.get(&key) {
            if let Some(entry) = weak.upgrade() {
                let mut joined = trace.take();
                if let Some(t) = &mut joined {
                    t.stamp(Stage::Enqueued);
                }
                match entry.attach(Respondent {
                    conn: Arc::clone(conn),
                    id: request.id,
                    trace: joined,
                }) {
                    Ok(()) => return Submit::Coalesced,
                    // The entry started computing between lookup and
                    // attach; reclaim the trace and fall through to a
                    // fresh entry (a later Enqueued stamp overwrites).
                    Err(respondent) => *trace = respondent.trace,
                }
            }
            self.pending.remove(&key);
        }
        let used = queue.depth() + self.open.len();
        if used >= queue.capacity() {
            return Submit::Rejected { used };
        }
        let mut owned = trace.take();
        if let Some(t) = &mut owned {
            t.stamp(Stage::Enqueued);
        }
        let entry = Entry::new(request, Arc::clone(conn), owned);
        self.pending.insert(key, Arc::downgrade(&entry));
        self.open.push(entry);
        wfc_obs::gauge_set!("service.batch.open_entries", self.open.len() as i64);
        if self.opened_at.is_none() {
            self.opened_at = Some(now);
        }
        if self.open.len() >= self.config.max_batch_size {
            self.dispatch(queue);
        }
        Submit::Accepted
    }

    /// Entries accumulated in the open (not yet dispatched) batch.
    pub(crate) fn open_len(&self) -> usize {
        self.open.len()
    }

    /// When the open batch must be force-dispatched, for the IO loop's
    /// poll timeout. `None` when nothing is waiting on a delay.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let opened = self.opened_at?;
        Some(opened + self.config.max_batch_delay)
    }

    /// Dispatches the open batch if its delay has run out (or the
    /// adaptive rule short-circuits it). Called once per IO iteration.
    pub(crate) fn flush_due(&mut self, queue: &JobQueue, now: Instant) {
        let Some(opened) = self.opened_at else {
            return;
        };
        let wait = if self.config.adaptive && queue.depth() == 0 {
            Duration::ZERO
        } else {
            self.config.max_batch_delay
        };
        if now.duration_since(opened) >= wait {
            self.dispatch(queue);
        }
    }

    /// Dispatches whatever is open, delay or not (shutdown path).
    pub(crate) fn flush_all(&mut self, queue: &JobQueue) {
        self.dispatch(queue);
    }

    fn dispatch(&mut self, queue: &JobQueue) {
        self.opened_at = None;
        if self.open.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.open);
        wfc_obs::gauge_set!("service.batch.open_entries", 0);
        for entry in &batch {
            entry.mark_dispatched();
        }
        wfc_obs::histogram!("service.batch.entries", batch.len() as u64);
        wfc_obs::counter!("service.batch.dispatched");
        queue.push(batch);
        // Keys stay live while their entry is queued-but-unstarted (so
        // late duplicates still coalesce); everything else is garbage.
        self.pending
            .retain(|_, weak| weak.upgrade().is_some_and(|entry| !entry.started()));
    }
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("open", &self.open.len())
            .field("pending_keys", &self.pending.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, text: &str) -> Request {
        Request {
            id,
            kind: QueryKind::Classify,
            type_text: text.to_owned(),
            options: QueryOptions::default(),
        }
    }

    fn conn() -> Arc<ConnShared> {
        Arc::new(ConnShared::new(1))
    }

    #[test]
    fn identical_requests_coalesce_onto_one_entry() {
        let queue = JobQueue::new(8);
        let mut batcher = Batcher::new(BatchConfig::default());
        let c = conn();
        let now = Instant::now();
        assert!(matches!(
            batcher.submit(request(1, "t"), &c, &queue, now, &mut None),
            Submit::Accepted
        ));
        for id in 2..=5 {
            assert!(matches!(
                batcher.submit(request(id, "t"), &c, &queue, now, &mut None),
                Submit::Coalesced
            ));
        }
        batcher.flush_due(&queue, now);
        assert_eq!(queue.depth(), 1, "five requests, one computation");
        let batch = queue.pop().unwrap();
        assert_eq!(batch.len(), 1);
        let respondents = batch[0].begin();
        assert_eq!(
            respondents.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn coalescing_still_reaches_a_queued_batch_but_not_a_started_entry() {
        let queue = JobQueue::new(8);
        let mut batcher = Batcher::new(BatchConfig::default());
        let c = conn();
        let now = Instant::now();
        batcher.submit(request(1, "t"), &c, &queue, now, &mut None);
        batcher.flush_due(&queue, now);
        // Dispatched but unstarted: still joinable.
        assert!(matches!(
            batcher.submit(request(2, "t"), &c, &queue, now, &mut None),
            Submit::Coalesced
        ));
        let batch = queue.pop().unwrap();
        let respondents = batch[0].begin();
        assert_eq!(respondents.len(), 2);
        // Started: a repeat becomes a fresh entry.
        assert!(matches!(
            batcher.submit(request(3, "t"), &c, &queue, now, &mut None),
            Submit::Accepted
        ));
    }

    #[test]
    fn distinct_budgets_do_not_coalesce_but_threads_do() {
        let queue = JobQueue::new(8);
        let mut batcher = Batcher::new(BatchConfig::default());
        let c = conn();
        let now = Instant::now();
        let mut shallow = request(1, "t");
        shallow.options.max_depth = 3;
        let mut deep = request(2, "t");
        deep.options.max_depth = 9;
        let mut wide = request(3, "t");
        wide.options.max_depth = 3;
        wide.options.threads = 7;
        batcher.submit(shallow, &c, &queue, now, &mut None);
        assert!(matches!(
            batcher.submit(deep, &c, &queue, now, &mut None),
            Submit::Accepted
        ));
        assert!(matches!(
            batcher.submit(wide, &c, &queue, now, &mut None),
            Submit::Coalesced
        ));
    }

    #[test]
    fn capacity_counts_entries_and_reports_observed_depth() {
        let queue = JobQueue::new(2);
        let mut batcher = Batcher::new(BatchConfig::default());
        let c = conn();
        let now = Instant::now();
        batcher.submit(request(1, "a"), &c, &queue, now, &mut None);
        batcher.submit(request(2, "b"), &c, &queue, now, &mut None);
        match batcher.submit(request(3, "c"), &c, &queue, now, &mut None) {
            Submit::Rejected { used } => assert_eq!(used, 2),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Coalescing is free even at capacity: no new computation.
        assert!(matches!(
            batcher.submit(request(4, "a"), &c, &queue, now, &mut None),
            Submit::Coalesced
        ));
    }

    #[test]
    fn max_batch_size_dispatches_immediately() {
        let queue = JobQueue::new(16);
        let mut batcher = Batcher::new(BatchConfig {
            max_batch_size: 2,
            max_batch_delay: Duration::from_secs(3600),
            adaptive: false,
        });
        let c = conn();
        let now = Instant::now();
        batcher.submit(request(1, "a"), &c, &queue, now, &mut None);
        assert_eq!(queue.depth(), 0, "below max_batch_size, delay holds it");
        batcher.submit(request(2, "b"), &c, &queue, now, &mut None);
        assert_eq!(queue.depth(), 2, "full batch dispatches despite delay");
    }

    #[test]
    fn delay_holds_until_deadline_and_adaptive_skips_it_when_idle() {
        let queue = JobQueue::new(16);
        let delay = Duration::from_millis(50);
        let mut batcher = Batcher::new(BatchConfig {
            max_batch_size: 16,
            max_batch_delay: delay,
            adaptive: false,
        });
        let c = conn();
        let t0 = Instant::now();
        batcher.submit(request(1, "a"), &c, &queue, t0, &mut None);
        batcher.flush_due(&queue, t0);
        assert_eq!(queue.depth(), 0, "delay not yet elapsed");
        assert_eq!(batcher.next_deadline(), Some(t0 + delay));
        batcher.flush_due(&queue, t0 + delay);
        assert_eq!(queue.depth(), 1, "deadline reached, batch dispatched");

        // Adaptive: an empty queue short-circuits the same delay.
        let queue = JobQueue::new(16);
        let mut batcher = Batcher::new(BatchConfig {
            max_batch_size: 16,
            max_batch_delay: delay,
            adaptive: true,
        });
        batcher.submit(request(2, "b"), &c, &queue, t0, &mut None);
        batcher.flush_due(&queue, t0);
        assert_eq!(queue.depth(), 1, "idle workers: no reason to wait");
    }

    #[test]
    fn pending_keys_are_pruned_after_entries_complete() {
        let queue = JobQueue::new(64);
        let mut batcher = Batcher::new(BatchConfig::default());
        let c = conn();
        let now = Instant::now();
        for id in 0..32 {
            batcher.submit(request(id, &format!("t{id}")), &c, &queue, now, &mut None);
            batcher.flush_due(&queue, now);
            // Worker claims and finishes the entry.
            let batch = queue.pop().unwrap();
            batch[0].begin();
        }
        batcher.submit(request(99, "fresh"), &c, &queue, now, &mut None);
        batcher.flush_due(&queue, now);
        assert!(
            batcher.pending.len() <= 1,
            "stale keys must not accumulate: {}",
            batcher.pending.len()
        );
    }
}
