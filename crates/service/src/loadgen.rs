//! Load generation against a running `wfc serve` instance.
//!
//! Drives configurable traffic mixes over real sockets and reports
//! client-observed latency percentiles and throughput as a
//! `BENCH_service` run report (`wfc-obs/v1`), giving serving-layer PRs
//! the same measured trajectory the explorer benches already have.
//!
//! Two loop disciplines, per mix:
//!
//! * **closed-loop** — each connection keeps a fixed number of
//!   requests in flight (`pipeline`) and sends a replacement the
//!   moment a response lands. Measures the server's sustainable
//!   throughput at a fixed concurrency.
//! * **open-loop** — requests are injected on a fixed schedule
//!   (`rate` per second across the mix) regardless of completions, on
//!   the classic open-system argument: arrivals in the wild do not
//!   pause because the server is slow, so latency under a schedule is
//!   the honest number. A sender/receiver thread pair per connection
//!   keeps the schedule independent of response handling.
//!
//! Mixes default to cache-friendly query sets (each unique query is
//! warmed once before timing), so the numbers characterize the
//! frontend, batching, and cache layers rather than explorer search.
//!
//! The emitted document carries two sections: `service_loadgen` (the
//! full per-mix numbers: counts, throughput, p50/p95/p99/max) and a
//! harness-shaped `bench` section so `wfc-report`'s trajectory table
//! picks the latency medians up alongside the other bench groups.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfc_obs::json::Json;
use wfc_obs::report::RunReport;
use wfc_spec::text::format_type;

use crate::client::Client;
use crate::wire::{read_frame, write_frame, QueryKind, QueryOptions, Request, Response};

/// One weighted element of a traffic mix.
#[derive(Clone, Debug)]
pub struct MixEntry {
    /// Query kind to send.
    pub kind: QueryKind,
    /// Type text (or sched spec) to send.
    pub type_text: String,
    /// Options to send.
    pub options: QueryOptions,
    /// Relative frequency within the mix.
    pub weight: u32,
}

/// The loop discipline driving one mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Fixed in-flight count per connection; send-on-completion.
    Closed,
    /// Fixed injection schedule, `rate` requests/second mix-wide.
    Open {
        /// Target injection rate across all connections.
        rate_per_sec: u64,
    },
}

/// One named traffic mix: a loop discipline over weighted queries.
#[derive(Clone, Debug)]
pub struct Mix {
    /// Mix name; becomes the benchmark id in the report.
    pub name: String,
    /// Loop discipline.
    pub mode: Mode,
    /// Weighted queries.
    pub entries: Vec<MixEntry>,
}

/// Loadgen run parameters.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Concurrent connections per mix.
    pub connections: usize,
    /// In-flight requests per connection (closed-loop mixes).
    pub pipeline: usize,
    /// Measured duration per mix.
    pub duration: Duration,
    /// Mixes to run, in order.
    pub mixes: Vec<Mix>,
}

/// Measured results for one mix.
#[derive(Clone, Debug, Default)]
pub struct MixReport {
    /// Mix name.
    pub name: String,
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Open-loop target rate (0 for closed loop).
    pub target_rate: u64,
    /// Connections driven.
    pub connections: usize,
    /// Pipeline depth (closed loop; 0 for open).
    pub pipeline: usize,
    /// Measured window.
    pub duration: Duration,
    /// Requests sent inside the window.
    pub sent: u64,
    /// `ok` responses received.
    pub ok: u64,
    /// Of those, answered from cache/coalescing.
    pub cached: u64,
    /// `busy` rejections.
    pub busy: u64,
    /// Structured errors.
    pub errors: u64,
    /// Transport failures (connection died mid-run).
    pub transport_errors: u64,
    /// Completed responses per second over the window.
    pub throughput_rps: f64,
    /// Fastest observed response, microseconds.
    pub min_us: u64,
    /// Client-observed latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Slowest observed response, microseconds.
    pub max_us: u64,
    /// Arithmetic mean latency, microseconds.
    pub mean_us: u64,
    /// Server-side per-stage latency aggregates over this mix's window,
    /// scraped from the `stats` introspection query (empty when the
    /// server runs without observability).
    pub stages: Vec<StageBreakdown>,
}

/// Per-stage latency aggregate for one mix: the difference between the
/// server's stage histograms before and after the mix ran, so each mix
/// sees only its own window even on a long-lived server.
#[derive(Clone, Debug, Default)]
pub struct StageBreakdown {
    /// Interval name (`decode`, `admit`, …, `flush`) or `total`.
    pub stage: String,
    /// Requests that recorded this stage inside the window.
    pub count: u64,
    /// Summed stage time, microseconds.
    pub total_us: u64,
    /// Mean stage time, microseconds.
    pub mean_us: u64,
    /// Median (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 95th percentile (bucket upper bound), microseconds.
    pub p95_us: u64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_us: u64,
}

/// `stage histogram name → (count, total, buckets)` from one scrape.
type StageSnapshot = HashMap<String, (u64, u64, Vec<(u64, u64)>)>;

/// Scrapes the server's `service.stage.*_us` histograms (bucket level,
/// from the `histograms` section of a `stats` snapshot). `None` when
/// the server is unreachable or runs without observability.
fn scrape_stages(addr: &str) -> Option<StageSnapshot> {
    let mut client = Client::connect(addr).ok()?;
    let response = client
        .query(QueryKind::Stats, "", &QueryOptions::default())
        .ok()?;
    let Response::Ok { result, .. } = response else {
        return None;
    };
    let mut snapshot = StageSnapshot::new();
    for (name, hist) in result.get("histograms")?.as_obj()? {
        let Some(stage) = name
            .strip_prefix("service.stage.")
            .and_then(|s| s.strip_suffix("_us"))
        else {
            continue;
        };
        let count = hist.get("count").and_then(Json::as_u64)?;
        let total = hist.get("total").and_then(Json::as_u64)?;
        let buckets = hist
            .get("buckets")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|pair| {
                let pair = pair.as_arr()?;
                Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
            })
            .collect();
        snapshot.insert(stage.to_owned(), (count, total, buckets));
    }
    if snapshot.is_empty() {
        None
    } else {
        Some(snapshot)
    }
}

/// Reduces two scrapes to the per-stage aggregates of the window
/// between them, in pipeline order (`decode` … `flush`, then `total`).
fn diff_breakdown(before: &StageSnapshot, after: &StageSnapshot) -> Vec<StageBreakdown> {
    const ORDER: [&str; 8] = [
        "decode", "admit", "batch", "queue", "engine", "respond", "flush", "total",
    ];
    let mut out = Vec::new();
    for stage in ORDER {
        let Some((after_count, after_total, after_buckets)) = after.get(stage) else {
            continue;
        };
        let (before_count, before_total, before_buckets) =
            before.get(stage).cloned().unwrap_or_default();
        let count = after_count.saturating_sub(before_count);
        if count == 0 {
            continue;
        }
        let total_us = after_total.saturating_sub(before_total);
        let earlier: HashMap<u64, u64> = before_buckets.into_iter().collect();
        let buckets: Vec<(u64, u64)> = after_buckets
            .iter()
            .map(|&(bound, n)| {
                (
                    bound,
                    n.saturating_sub(earlier.get(&bound).copied().unwrap_or(0)),
                )
            })
            .collect();
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).max(1);
            let mut seen = 0;
            for &(bound, n) in &buckets {
                seen += n;
                if seen >= rank {
                    return bound;
                }
            }
            buckets.last().map_or(0, |&(bound, _)| bound)
        };
        out.push(StageBreakdown {
            stage: stage.to_owned(),
            count,
            total_us,
            mean_us: total_us / count,
            p50_us: quantile(0.50),
            p95_us: quantile(0.95),
            p99_us: quantile(0.99),
        });
    }
    out
}

#[derive(Default)]
struct MixStats {
    latencies_us: Vec<u64>,
    sent: u64,
    ok: u64,
    cached: u64,
    busy: u64,
    errors: u64,
    transport_errors: u64,
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The built-in mixes: a closed-loop cache-hot mix exercising the
/// frontend/cache fast path, and an open-loop mixed-kind mix that
/// also crosses the sched engine. Both are cache-friendly by design —
/// every unique query is warmed before measurement.
pub fn default_mixes(rate_per_sec: u64) -> Vec<Mix> {
    let tas = format_type(&wfc_spec::canonical::test_and_set(2));
    let bit = format_type(&wfc_spec::canonical::boolean_register(2));
    let options = QueryOptions::default();
    vec![
        Mix {
            name: "closed-hot".to_owned(),
            mode: Mode::Closed,
            entries: vec![
                MixEntry {
                    kind: QueryKind::Classify,
                    type_text: tas.clone(),
                    options,
                    weight: 3,
                },
                MixEntry {
                    kind: QueryKind::AccessBounds,
                    type_text: tas.clone(),
                    options,
                    weight: 1,
                },
                MixEntry {
                    kind: QueryKind::Witness,
                    type_text: bit.clone(),
                    options,
                    weight: 1,
                },
            ],
        },
        Mix {
            name: "open-mixed".to_owned(),
            mode: Mode::Open { rate_per_sec },
            entries: vec![
                MixEntry {
                    kind: QueryKind::Classify,
                    type_text: bit,
                    options,
                    weight: 2,
                },
                MixEntry {
                    kind: QueryKind::VerifyConsensus,
                    type_text: tas,
                    options,
                    weight: 1,
                },
                MixEntry {
                    kind: QueryKind::Sched,
                    type_text: "srsw sleep=off".to_owned(),
                    options,
                    weight: 1,
                },
            ],
        },
    ]
}

/// A deterministic request schedule honoring the entry weights:
/// entry indices repeated by weight, walked round-robin. Thread `t`
/// starts at offset `t` so connections interleave entries instead of
/// marching in lockstep.
fn weighted_schedule(entries: &[MixEntry]) -> Vec<usize> {
    let mut schedule = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        for _ in 0..entry.weight.max(1) {
            schedule.push(i);
        }
    }
    if schedule.is_empty() {
        schedule.push(0);
    }
    schedule
}

fn classify_response(stats: &mut MixStats, response: &Response, sent_at: Instant) {
    stats
        .latencies_us
        .push(sent_at.elapsed().as_micros() as u64);
    match response {
        Response::Ok { cached, .. } => {
            stats.ok += 1;
            if *cached {
                stats.cached += 1;
            }
        }
        Response::Busy { .. } => stats.busy += 1,
        Response::Error { .. } => stats.errors += 1,
    }
}

/// One closed-loop connection: prime `pipeline` requests, then replace
/// each completion until the deadline, then drain what is in flight.
fn closed_loop_conn(
    addr: &str,
    mix: &Mix,
    schedule: &[usize],
    offset: usize,
    pipeline: usize,
    deadline: Instant,
    stats: &Arc<Mutex<MixStats>>,
) {
    let Ok(mut client) = Client::connect_retry(addr, Duration::from_secs(5)) else {
        stats.lock().unwrap().transport_errors += 1;
        return;
    };
    let mut cursor = offset;
    let mut inflight: HashMap<u64, Instant> = HashMap::new();
    let mut send_next = |client: &mut Client, inflight: &mut HashMap<u64, Instant>| -> bool {
        let entry = &mix.entries[schedule[cursor % schedule.len()]];
        cursor += 1;
        match client.send(entry.kind, &entry.type_text, &entry.options) {
            Ok(id) => {
                inflight.insert(id, Instant::now());
                stats.lock().unwrap().sent += 1;
                true
            }
            Err(_) => false,
        }
    };
    for _ in 0..pipeline.max(1) {
        if !send_next(&mut client, &mut inflight) {
            stats.lock().unwrap().transport_errors += 1;
            return;
        }
    }
    while !inflight.is_empty() {
        let response = match client.recv() {
            Ok(response) => response,
            Err(_) => {
                stats.lock().unwrap().transport_errors += 1;
                return;
            }
        };
        if let Some(sent_at) = inflight.remove(&response.id()) {
            classify_response(&mut stats.lock().unwrap(), &response, sent_at);
        }
        if Instant::now() < deadline && !send_next(&mut client, &mut inflight) {
            stats.lock().unwrap().transport_errors += 1;
            return;
        }
    }
}

/// One open-loop connection: a sender thread injects on the fixed
/// schedule while this thread receives, so a slow response never
/// delays the next arrival.
fn open_loop_conn(
    addr: &str,
    mix: &Mix,
    schedule: &[usize],
    offset: usize,
    interval: Duration,
    deadline: Instant,
    stats: &Arc<Mutex<MixStats>>,
) {
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            stats.lock().unwrap().transport_errors += 1;
            return;
        }
    };
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        stats.lock().unwrap().transport_errors += 1;
        return;
    };
    let mut read_half = stream;
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(50)));

    let pending: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let sender = {
        let pending = Arc::clone(&pending);
        let stats = Arc::clone(stats);
        let mix = mix.clone();
        let schedule = schedule.to_vec();
        std::thread::spawn(move || {
            let start = Instant::now();
            for k in 0u64.. {
                let due = start + interval.mul_f64(k as f64);
                if due >= deadline {
                    break;
                }
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let entry = &mix.entries[schedule[(offset + k as usize) % schedule.len()]];
                let request = Request {
                    id: k + 1,
                    kind: entry.kind,
                    type_text: entry.type_text.clone(),
                    options: entry.options,
                };
                pending.lock().unwrap().insert(request.id, Instant::now());
                if write_frame(&mut write_half, &request.to_json()).is_err() {
                    stats.lock().unwrap().transport_errors += 1;
                    break;
                }
                stats.lock().unwrap().sent += 1;
            }
        })
    };

    // Receive until the sender is done and everything in flight came
    // back (or a grace period expires — the server may be saturated).
    let grace = deadline + Duration::from_secs(5);
    loop {
        let sender_done = sender.is_finished();
        if pending.lock().unwrap().is_empty() && sender_done {
            break;
        }
        if Instant::now() >= grace {
            break;
        }
        match read_frame(&mut read_half) {
            Ok(Some(doc)) => {
                if let Ok(response) = Response::from_json(&doc) {
                    let sent_at = pending.lock().unwrap().remove(&response.id());
                    if let Some(sent_at) = sent_at {
                        classify_response(&mut stats.lock().unwrap(), &response, sent_at);
                    }
                }
            }
            Ok(None) => break, // server closed
            Err(crate::wire::WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = sender.join();
}

/// Warms every unique query in `mixes` once through one connection so
/// measurement hits the cache tier, not first-time explorer search.
fn warm_caches(addr: &str, mixes: &[Mix]) -> Result<(), String> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("loadgen cannot connect to {addr}: {e}"))?;
    let mut seen = std::collections::HashSet::new();
    for mix in mixes {
        for entry in &mix.entries {
            if seen.insert((entry.kind, entry.type_text.clone())) {
                client
                    .query(entry.kind, &entry.type_text, &entry.options)
                    .map_err(|e| format!("warmup query failed: {e}"))?;
            }
        }
    }
    Ok(())
}

/// Runs one mix to completion and reduces its stats.
fn run_mix(opts: &LoadgenOptions, mix: &Mix) -> MixReport {
    let stats = Arc::new(Mutex::new(MixStats::default()));
    let schedule = weighted_schedule(&mix.entries);
    let connections = opts.connections.max(1);
    let started = Instant::now();
    let deadline = started + opts.duration;
    let mut threads = Vec::new();
    for t in 0..connections {
        let addr = opts.addr.clone();
        let mix = mix.clone();
        let schedule = schedule.clone();
        let stats = Arc::clone(&stats);
        let pipeline = opts.pipeline.max(1);
        threads.push(std::thread::spawn(move || match mix.mode {
            Mode::Closed => {
                closed_loop_conn(&addr, &mix, &schedule, t, pipeline, deadline, &stats);
            }
            Mode::Open { rate_per_sec } => {
                let per_conn = (rate_per_sec.max(1) as f64 / connections as f64).max(0.1);
                let interval = Duration::from_secs_f64(1.0 / per_conn);
                open_loop_conn(&addr, &mix, &schedule, t, interval, deadline, &stats);
            }
        }));
    }
    for thread in threads {
        let _ = thread.join();
    }
    let elapsed = started.elapsed();

    let mut stats = Arc::try_unwrap(stats)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    stats.latencies_us.sort_unstable();
    let lat = &stats.latencies_us;
    let completed = lat.len() as u64;
    let (mode, target_rate, pipeline) = match mix.mode {
        Mode::Closed => ("closed", 0, opts.pipeline.max(1)),
        Mode::Open { rate_per_sec } => ("open", rate_per_sec, 0),
    };
    MixReport {
        name: mix.name.clone(),
        mode: mode.to_owned(),
        target_rate,
        connections,
        pipeline,
        duration: elapsed,
        sent: stats.sent,
        ok: stats.ok,
        cached: stats.cached,
        busy: stats.busy,
        errors: stats.errors,
        transport_errors: stats.transport_errors,
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        min_us: lat.first().copied().unwrap_or(0),
        p50_us: percentile(lat, 50.0),
        p95_us: percentile(lat, 95.0),
        p99_us: percentile(lat, 99.0),
        max_us: lat.last().copied().unwrap_or(0),
        mean_us: lat.iter().sum::<u64>().checked_div(completed).unwrap_or(0),
        stages: Vec::new(), // filled by `run` from the stats scrapes
    }
}

/// Runs every mix in order and returns the per-mix reports.
///
/// # Errors
///
/// A string describing the failure when the server is unreachable or
/// cache warmup fails (individual connection drops mid-run are counted
/// in `transport_errors`, not fatal).
pub fn run(opts: &LoadgenOptions) -> Result<Vec<MixReport>, String> {
    if opts.mixes.is_empty() {
        return Err("loadgen needs at least one mix".to_owned());
    }
    warm_caches(&opts.addr, &opts.mixes)?;
    let mut reports = Vec::new();
    for mix in &opts.mixes {
        // Bracket each mix with a `stats` scrape so its stage
        // breakdown covers only its own window.
        let before = scrape_stages(&opts.addr);
        let mut report = run_mix(opts, mix);
        if let (Some(before), Some(after)) = (before, scrape_stages(&opts.addr)) {
            report.stages = diff_breakdown(&before, &after);
        }
        reports.push(report);
    }
    Ok(reports)
}

/// Assembles the `BENCH_service` run report: the `service_loadgen`
/// section carries the full per-mix numbers, and a harness-shaped
/// `bench` section mirrors the latency medians so the shared
/// trajectory table prints them.
pub fn to_report(reports: &[MixReport]) -> RunReport {
    let mut run_report = RunReport::collect("BENCH_service");
    let mixes = reports
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::Str(r.name.clone())),
                ("mode", Json::Str(r.mode.clone())),
                ("target_rate", Json::U64(r.target_rate)),
                ("connections", Json::U64(r.connections as u64)),
                ("pipeline", Json::U64(r.pipeline as u64)),
                ("duration_ms", Json::U64(r.duration.as_millis() as u64)),
                ("sent", Json::U64(r.sent)),
                ("ok", Json::U64(r.ok)),
                ("cached", Json::U64(r.cached)),
                ("busy", Json::U64(r.busy)),
                ("errors", Json::U64(r.errors)),
                ("transport_errors", Json::U64(r.transport_errors)),
                ("throughput_rps", Json::F64(r.throughput_rps)),
                ("min_us", Json::U64(r.min_us)),
                ("p50_us", Json::U64(r.p50_us)),
                ("p95_us", Json::U64(r.p95_us)),
                ("p99_us", Json::U64(r.p99_us)),
                ("max_us", Json::U64(r.max_us)),
                ("mean_us", Json::U64(r.mean_us)),
                (
                    "stages",
                    Json::Arr(
                        r.stages
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stage", Json::Str(s.stage.clone())),
                                    ("count", Json::U64(s.count)),
                                    ("total_us", Json::U64(s.total_us)),
                                    ("mean_us", Json::U64(s.mean_us)),
                                    ("p50_us", Json::U64(s.p50_us)),
                                    ("p95_us", Json::U64(s.p95_us)),
                                    ("p99_us", Json::U64(s.p99_us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    run_report.section("service_loadgen", Json::Arr(mixes));

    let results = reports
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::Str(format!("{}/latency", r.name))),
                ("median_ns", Json::F64(r.p50_us as f64 * 1000.0)),
                ("lo_ns", Json::F64(r.min_us as f64 * 1000.0)),
                ("hi_ns", Json::F64(r.p99_us as f64 * 1000.0)),
                ("samples", Json::U64(r.ok + r.busy + r.errors)),
            ])
        })
        .collect();
    run_report.section(
        "bench",
        Json::obj(vec![
            ("group", Json::Str("service".to_owned())),
            ("sample_size", Json::U64(0)),
            ("fast_mode", Json::Bool(false)),
            ("results", Json::Arr(results)),
        ]),
    );
    run_report
}

/// Prints the human summary table for a finished run.
pub fn print_summary(reports: &[MixReport]) {
    println!(
        "{:<14} {:<7} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "mix",
        "mode",
        "conns",
        "pipe",
        "sent",
        "ok",
        "busy",
        "err",
        "rps",
        "p50_us",
        "p95_us",
        "p99_us"
    );
    for r in reports {
        println!(
            "{:<14} {:<7} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>10.1} {:>9} {:>9} {:>9}",
            r.name,
            r.mode,
            r.connections,
            r.pipeline,
            r.sent,
            r.ok,
            r.busy,
            r.errors + r.transport_errors,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
        );
    }
    for r in reports {
        if r.stages.is_empty() {
            continue;
        }
        println!("\n{} — server-side stage breakdown:", r.name);
        println!(
            "  {:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "mean_us", "p50_us", "p95_us", "p99_us"
        );
        for s in &r.stages {
            println!(
                "  {:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                s.stage, s.count, s.mean_us, s.p50_us, s.p95_us, s.p99_us
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 100);
        assert_eq!(percentile(&sorted, 99.0), 100);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn weighted_schedule_respects_weights() {
        let tas = "t".to_owned();
        let entries = vec![
            MixEntry {
                kind: QueryKind::Classify,
                type_text: tas.clone(),
                options: QueryOptions::default(),
                weight: 3,
            },
            MixEntry {
                kind: QueryKind::Witness,
                type_text: tas,
                options: QueryOptions::default(),
                weight: 1,
            },
        ];
        let schedule = weighted_schedule(&entries);
        assert_eq!(schedule, vec![0, 0, 0, 1]);
    }

    #[test]
    fn report_document_is_schema_valid_with_two_mixes() {
        let mix = MixReport {
            name: "closed-hot".to_owned(),
            mode: "closed".to_owned(),
            connections: 2,
            pipeline: 4,
            duration: Duration::from_millis(1500),
            sent: 100,
            ok: 98,
            cached: 95,
            busy: 2,
            throughput_rps: 65.3,
            p50_us: 800,
            p95_us: 2000,
            p99_us: 4000,
            max_us: 9000,
            mean_us: 900,
            ..MixReport::default()
        };
        let mut open = mix.clone();
        open.name = "open-mixed".to_owned();
        open.mode = "open".to_owned();
        open.target_rate = 200;
        let report = to_report(&[mix, open]);
        let doc = wfc_obs::json::parse(&report.render()).unwrap();
        wfc_obs::report::validate(&doc).unwrap();
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("BENCH_service")
        );
        let section = doc
            .get("sections")
            .and_then(|s| s.get("service_loadgen"))
            .and_then(Json::as_arr)
            .expect("service_loadgen section");
        assert_eq!(section.len(), 2);
        for mix in section {
            for field in ["p50_us", "p95_us", "p99_us", "throughput_rps"] {
                assert!(mix.get(field).is_some(), "missing {field}");
            }
        }
        let bench = doc
            .get("sections")
            .and_then(|s| s.get("bench"))
            .expect("bench section");
        assert_eq!(bench.get("group").and_then(Json::as_str), Some("service"));
        assert_eq!(
            bench.get("results").and_then(Json::as_arr).map(|r| r.len()),
            Some(2)
        );
    }

    #[test]
    fn diff_breakdown_subtracts_the_earlier_scrape() {
        let mut before = StageSnapshot::new();
        let mut after = StageSnapshot::new();
        // engine: 2 old requests in [0,63], 2 new in (63,127].
        before.insert("engine".to_owned(), (2, 40, vec![(63, 2)]));
        after.insert("engine".to_owned(), (4, 240, vec![(63, 2), (127, 2)]));
        // decode appears only after the window started.
        after.insert("decode".to_owned(), (1, 10, vec![(15, 1)]));
        // queue did not move: dropped from the breakdown.
        before.insert("queue".to_owned(), (3, 30, vec![(15, 3)]));
        after.insert("queue".to_owned(), (3, 30, vec![(15, 3)]));

        let stages = diff_breakdown(&before, &after);
        let names: Vec<&str> = stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            ["decode", "engine"],
            "pipeline order, no idle stages"
        );
        let engine = &stages[1];
        assert_eq!(engine.count, 2);
        assert_eq!(engine.total_us, 200);
        assert_eq!(engine.mean_us, 100);
        // Both window requests landed in the (63,127] bucket.
        assert_eq!(engine.p50_us, 127);
        assert_eq!(engine.p99_us, 127);
    }

    #[test]
    fn default_mixes_cover_both_disciplines() {
        let mixes = default_mixes(200);
        assert_eq!(mixes.len(), 2);
        assert_eq!(mixes[0].mode, Mode::Closed);
        assert_eq!(mixes[1].mode, Mode::Open { rate_per_sec: 200 });
        for mix in &mixes {
            assert!(!mix.entries.is_empty());
        }
    }
}
