//! The two-tier result cache in front of the query engine.
//!
//! **Key.** [`cache_key`] hashes `(protocol version, query kind,
//! canonical type text, max_configs, max_depth)` with the FNV-1a-128
//! hasher from `wfc_spec::hash`. The type is rendered with
//! `format_type` first, so whitespace and comments in the submitted
//! text do not fragment the cache. `threads` is deliberately excluded:
//! every analysis is bit-identical across thread counts (the
//! parallel-differential tests enforce this), so a result computed at
//! one parallelism must be served to clients asking at another.
//! `obs` settings never enter the key either — they are write-only
//! telemetry.
//!
//! **Tiers.** An in-memory sharded LRU of `Arc<Json>` results, then an
//! optional append-only disk tier (one `entry-<key>.json` file per
//! result, written atomically via temp-file + rename, plus a
//! `cache-meta.json` the `report --check` validator understands).
//!
//! **Single-flight.** Concurrent requests for the same key coalesce:
//! one leader computes, followers block on a condvar and receive the
//! leader's `Arc`. Errors are delivered to every waiter but **never
//! cached** — a budget failure must not poison the key for a later,
//! larger budget... which would be a different key anyway; more to the
//! point, a transient failure must not become permanent.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use wfc_obs::json::Json;
use wfc_repl::durable::write_durably;
use wfc_spec::hash::{Hash128, Hasher128};
use wfc_spec::text::format_type;
use wfc_spec::FiniteType;

use crate::analysis::QueryError;
use crate::wire::{QueryKind, QueryOptions, PROTO};

/// Schema identifier written into every disk-cache file.
pub const CACHE_SCHEMA: &str = "wfc-svc-cache/v1";

const SHARDS: usize = 8;

/// The cache identity of a query. See the module docs for what is —
/// and is not — part of the key.
pub fn cache_key(kind: QueryKind, ty: &FiniteType, options: &QueryOptions) -> Hash128 {
    let mut h = Hasher128::new();
    h.write_str(PROTO);
    h.write_str(kind.as_str());
    h.write_str(&format_type(ty));
    h.write_u64(options.max_configs as u64);
    h.write_u64(options.max_depth as u64);
    // options.threads intentionally NOT hashed.
    h.finish()
}

/// The cache identity of a `sched` query: the protocol version, the
/// kind, and the spec's canonical text. The canonical rendering already
/// resolves every default (mode, seed, budgets, replay), so equal keys
/// mean equal configurations — and the explorer's verdicts are
/// deterministic, so equal configurations mean equal result bytes.
/// `QueryOptions` does not participate: the checker's budgets travel
/// inside the spec.
pub fn sched_cache_key(canonical_spec: &str) -> Hash128 {
    let mut h = Hasher128::new();
    h.write_str(PROTO);
    h.write_str(QueryKind::Sched.as_str());
    h.write_str(canonical_spec);
    h.finish()
}

/// The cache identity of a `scenario` query: the protocol version, the
/// kind, and the scenario's canonical text. Like `sched`, budgets travel
/// inside the text (the `budget` directive participates in
/// canonicalization), so `QueryOptions` does not contribute; respelled
/// but canonically equal files land on the same line.
pub fn scenario_cache_key(canonical_scenario: &str) -> Hash128 {
    let mut h = Hasher128::new();
    h.write_str(PROTO);
    h.write_str(QueryKind::Scenario.as_str());
    h.write_str(canonical_scenario);
    h.finish()
}

struct Shard {
    map: HashMap<u128, (Arc<Json>, u64)>,
    tick: u64,
}

struct Flight {
    done: Mutex<Option<Result<Arc<Json>, QueryError>>>,
    cv: Condvar,
}

/// How a cache lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory tier.
    Memory,
    /// Served from the disk tier (and promoted to memory).
    Disk,
    /// Coalesced onto another request's in-flight computation.
    Coalesced,
    /// Computed fresh by this request.
    Computed,
}

impl CacheOutcome {
    /// `true` for every outcome that did not run the analysis itself.
    pub fn is_cached(self) -> bool {
        !matches!(self, CacheOutcome::Computed)
    }
}

/// The two-tier, single-flight result cache.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    disk_dir: Option<PathBuf>,
    mem_entries: AtomicU64,
    disk_entries: AtomicU64,
    disk_writes: AtomicU64,
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("disk_dir", &self.disk_dir)
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` results in memory, optionally
    /// persisting to `disk_dir` (created if missing).
    ///
    /// # Errors
    ///
    /// An I/O error message if `disk_dir` cannot be created or scanned.
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Result<ResultCache, String> {
        let per_shard_capacity = capacity.div_ceil(SHARDS).max(1);
        let mut existing = 0u64;
        if let Some(dir) = &disk_dir {
            fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
            let entries = fs::read_dir(dir)
                .map_err(|e| format!("cannot read cache dir `{}`: {e}", dir.display()))?;
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("entry-") && name.ends_with(".json") {
                    existing += 1;
                }
            }
        }
        Ok(ResultCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            disk_dir,
            mem_entries: AtomicU64::new(0),
            disk_entries: AtomicU64::new(existing),
            disk_writes: AtomicU64::new(0),
            flights: Mutex::new(HashMap::new()),
        })
    }

    fn shard(&self, key: Hash128) -> &Mutex<Shard> {
        // The low bits of an FNV hash are well mixed.
        &self.shards[(key.0 as usize) % SHARDS]
    }

    fn memory_get(&self, key: Hash128) -> Option<Arc<Json>> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&key.0)?;
        entry.1 = tick;
        Some(Arc::clone(&entry.0))
    }

    fn memory_put(&self, key: Hash128, value: Arc<Json>) {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key.0) {
            // Evict the least recently used entry of this shard. A linear
            // scan is fine at the capacities a server runs with
            // (hundreds per shard), and keeps the structure simple.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.mem_entries.fetch_sub(1, Ordering::Relaxed);
                wfc_obs::counter!("service.cache.evictions");
            }
        }
        if shard.map.insert(key.0, (value, tick)).is_none() {
            self.mem_entries.fetch_add(1, Ordering::Relaxed);
        }
        wfc_obs::gauge_set!(
            "service.cache.mem.entries",
            self.mem_entries.load(Ordering::Relaxed)
        );
    }

    fn entry_path(dir: &Path, key: Hash128) -> PathBuf {
        dir.join(format!("entry-{}.json", key.to_hex()))
    }

    fn disk_get(&self, key: Hash128) -> Option<Json> {
        let dir = self.disk_dir.as_ref()?;
        let text = match fs::read_to_string(Self::entry_path(dir, key)) {
            Ok(text) => text,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    // Present but unreadable is corruption-shaped, not
                    // a plain miss.
                    wfc_obs::counter!("service.cache.disk.corrupt");
                }
                return None;
            }
        };
        // A file that exists but does not parse/validate is a truncated
        // or garbled write from a past crash: count it as corruption and
        // serve a miss — the entry recomputes and overwrites it.
        let corrupt = || {
            wfc_obs::counter!("service.cache.disk.corrupt");
            None
        };
        let Ok(doc) = wfc_obs::json::parse(&text) else {
            return corrupt();
        };
        // Only trust well-formed entries whose embedded key matches the
        // file we asked for.
        if validate_cache_json(&doc).is_err() {
            return corrupt();
        }
        if doc.get("key").and_then(Json::as_str) != Some(key.to_hex().as_str()) {
            return corrupt();
        }
        doc.get("result").cloned()
    }

    fn disk_put(&self, key: Hash128, kind: QueryKind, type_name: &str, result: &Json) {
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        let doc = Json::obj(vec![
            ("schema", Json::Str(CACHE_SCHEMA.to_owned())),
            ("key", Json::Str(key.to_hex())),
            ("kind", Json::Str(kind.as_str().to_owned())),
            ("type", Json::Str(type_name.to_owned())),
            ("result", result.clone()),
        ]);
        let path = Self::entry_path(dir, key);
        let fresh = !path.exists();
        // Durable, not merely atomic: the file is fsynced before the
        // rename and the directory after it, so a crash cannot leave
        // the entry name pointing at missing bytes. Replication counts
        // on this — an applied entry must actually survive.
        if write_durably(dir, &path, &doc.render()).is_err() {
            return; // disk tier is best-effort; memory still serves
        }
        if fresh {
            self.disk_entries.fetch_add(1, Ordering::Relaxed);
        }
        wfc_obs::gauge_set!(
            "service.cache.disk.entries",
            self.disk_entries.load(Ordering::Relaxed)
        );
        let writes = self.disk_writes.fetch_add(1, Ordering::Relaxed) + 1;
        let meta = Json::obj(vec![
            ("schema", Json::Str(CACHE_SCHEMA.to_owned())),
            (
                "entries",
                Json::U64(self.disk_entries.load(Ordering::Relaxed)),
            ),
            ("writes", Json::U64(writes)),
        ]);
        let _ = write_durably(dir, &dir.join("cache-meta.json"), &meta.render());
    }

    /// Applies a replication-committed entry to both tiers. Idempotent:
    /// re-applying the same `(key, result)` is a plain overwrite with
    /// identical bytes, which is what makes out-of-order and replayed
    /// commits safe.
    pub fn apply_replicated(&self, key: Hash128, kind: QueryKind, type_name: &str, result: &Json) {
        let value = Arc::new(result.clone());
        self.memory_put(key, value);
        self.disk_put(key, kind, type_name, result);
        wfc_obs::counter!("service.cache.replicated");
    }

    /// Reads an entry's result straight from the tiers (memory, then
    /// disk) without computing — the differential tests use this to
    /// prove a replicated insert landed byte-identically.
    pub fn peek(&self, key: Hash128) -> Option<Arc<Json>> {
        if let Some(hit) = self.memory_get(key) {
            return Some(hit);
        }
        self.disk_get(key).map(Arc::new)
    }

    /// Looks up `key`, or computes it via `compute`, with single-flight
    /// coalescing. Returns the result and how it was obtained.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (to the leader **and** every
    /// coalesced waiter); errors are never stored in either tier.
    pub fn get_or_compute(
        &self,
        key: Hash128,
        kind: QueryKind,
        type_name: &str,
        compute: impl FnOnce() -> Result<Json, QueryError>,
    ) -> Result<(Arc<Json>, CacheOutcome), QueryError> {
        if let Some(hit) = self.memory_get(key) {
            wfc_obs::counter!("service.cache.mem.hits");
            return Ok((hit, CacheOutcome::Memory));
        }
        wfc_obs::counter!("service.cache.mem.misses");
        if self.disk_dir.is_some() {
            if let Some(doc) = self.disk_get(key) {
                wfc_obs::counter!("service.cache.disk.hits");
                let value = Arc::new(doc);
                self.memory_put(key, Arc::clone(&value));
                return Ok((value, CacheOutcome::Disk));
            }
            wfc_obs::counter!("service.cache.disk.misses");
        }

        // Single-flight: join an in-flight computation if one exists,
        // otherwise become the leader.
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&key.0) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    flights.insert(key.0, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            wfc_obs::counter!("service.cache.coalesced");
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            return match done.as_ref().unwrap() {
                Ok(value) => Ok((Arc::clone(value), CacheOutcome::Coalesced)),
                Err(e) => Err(e.clone()),
            };
        }

        let outcome = compute();
        let stored = match &outcome {
            Ok(doc) => {
                let value = Arc::new(doc.clone());
                self.memory_put(key, Arc::clone(&value));
                self.disk_put(key, kind, type_name, doc);
                Ok(value)
            }
            Err(e) => Err(e.clone()),
        };
        {
            let mut done = flight.done.lock().unwrap();
            *done = Some(stored.clone());
            flight.cv.notify_all();
        }
        self.flights.lock().unwrap().remove(&key.0);
        stored.map(|value| (value, CacheOutcome::Computed))
    }
}

/// Validates a `wfc-svc-cache/v1` document — either an
/// `entry-<key>.json` result file or the `cache-meta.json` summary.
/// This is what `report --check` dispatches to for cache directories.
///
/// # Errors
///
/// A description of the first structural violation found.
pub fn validate_cache_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == CACHE_SCHEMA => {}
        Some(s) => return Err(format!("schema is `{s}`, expected `{CACHE_SCHEMA}`")),
        None => return Err("missing string field `schema`".to_owned()),
    }
    if let Some(key) = doc.get("key") {
        // An entry file: key + kind + type + result.
        let key = key.as_str().ok_or("field `key` is not a string")?;
        if Hash128::from_hex(key).is_none() {
            return Err(format!("field `key` is not a 128-bit hex hash: `{key}`"));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("entry missing string field `kind`")?;
        if QueryKind::parse(kind).is_none() {
            return Err(format!("entry has unknown query kind `{kind}`"));
        }
        doc.get("type")
            .and_then(Json::as_str)
            .ok_or("entry missing string field `type`")?;
        match doc.get("result") {
            Some(Json::Obj(_)) => Ok(()),
            Some(_) => Err("entry field `result` is not an object".to_owned()),
            None => Err("entry missing field `result`".to_owned()),
        }
    } else {
        // The meta file: entries + writes.
        let entries = doc
            .get("entries")
            .and_then(Json::as_u64)
            .ok_or("meta missing integer field `entries`")?;
        let writes = doc
            .get("writes")
            .and_then(Json::as_u64)
            .ok_or("meta missing integer field `writes`")?;
        if entries > writes {
            return Err(format!(
                "meta claims {entries} entries from only {writes} writes"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_spec::canonical;

    fn opts() -> QueryOptions {
        QueryOptions::default()
    }

    #[test]
    fn key_ignores_threads_and_formatting_but_not_budgets() {
        let ty = canonical::test_and_set(2);
        let base = cache_key(QueryKind::AccessBounds, &ty, &opts());
        assert_eq!(
            base,
            cache_key(QueryKind::AccessBounds, &ty, &opts().with_threads(4)),
            "thread count must not fragment the cache"
        );
        // Reparsing the canonical rendering (or a comment-laden copy)
        // yields the same key because the key hashes format_type output.
        let text = format_type(&ty);
        let noisy = format!("# a comment\n{}", text.replace('\n', "\n\n"));
        let reparsed = wfc_spec::text::parse_type(&noisy).unwrap();
        assert_eq!(base, cache_key(QueryKind::AccessBounds, &reparsed, &opts()));
        // But kind and budgets are identity.
        assert_ne!(base, cache_key(QueryKind::Theorem5, &ty, &opts()));
        assert_ne!(
            base,
            cache_key(QueryKind::AccessBounds, &ty, &opts().with_max_configs(10))
        );
        assert_ne!(
            base,
            cache_key(QueryKind::AccessBounds, &ty, &opts().with_max_depth(10))
        );
        // And distinct types collide with nothing in the zoo.
        let other = canonical::sticky_bit(2);
        assert_ne!(base, cache_key(QueryKind::AccessBounds, &other, &opts()));
    }

    #[test]
    fn memory_tier_hits_and_evicts() {
        let cache = ResultCache::new(SHARDS, None).unwrap(); // 1 slot per shard
        let ty = canonical::test_and_set(2);
        let key = cache_key(QueryKind::Classify, &ty, &opts());
        let doc = Json::obj(vec![("x", Json::U64(1))]);
        let (v1, how) = cache
            .get_or_compute(key, QueryKind::Classify, "t", || Ok(doc.clone()))
            .unwrap();
        assert_eq!(how, CacheOutcome::Computed);
        let (v2, how) = cache
            .get_or_compute(key, QueryKind::Classify, "t", || {
                panic!("must not recompute")
            })
            .unwrap();
        assert_eq!(how, CacheOutcome::Memory);
        assert!(Arc::ptr_eq(&v1, &v2));

        // Overflow the key's shard (capacity 1): a second key in the
        // same shard must evict the original.
        let probe = Hash128(key.0.wrapping_add(SHARDS as u128)); // same shard by construction
        cache
            .get_or_compute(probe, QueryKind::Classify, "t", || Ok(Json::Null))
            .unwrap();
        let (_, how) = cache
            .get_or_compute(key, QueryKind::Classify, "t", || Ok(doc.clone()))
            .unwrap();
        assert_eq!(how, CacheOutcome::Computed, "LRU should have evicted");
    }

    #[test]
    fn errors_are_delivered_but_never_cached() {
        let cache = ResultCache::new(16, None).unwrap();
        let key = Hash128(42);
        let err = cache
            .get_or_compute(key, QueryKind::Classify, "t", || {
                Err(QueryError::Analysis("boom".into()))
            })
            .unwrap_err();
        assert_eq!(err.code(), "analysis-error");
        // The failure did not poison the key.
        let (_, how) = cache
            .get_or_compute(key, QueryKind::Classify, "t", || Ok(Json::Null))
            .unwrap();
        assert_eq!(how, CacheOutcome::Computed);
    }

    #[test]
    fn single_flight_coalesces_concurrent_lookups() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ResultCache::new(16, None).unwrap());
        let computations = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let key = Hash128(7);

        // Leader: computes, but blocks inside compute() until released.
        let leader = {
            let cache = Arc::clone(&cache);
            let computations = Arc::clone(&computations);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache
                    .get_or_compute(key, QueryKind::Classify, "t", || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                        Ok(Json::U64(99))
                    })
                    .unwrap()
            })
        };
        // Wait until the leader is inside compute().
        while computations.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // Follower: must coalesce, not recompute.
        let follower = {
            let cache = Arc::clone(&cache);
            let computations = Arc::clone(&computations);
            std::thread::spawn(move || {
                cache
                    .get_or_compute(key, QueryKind::Classify, "t", || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        Ok(Json::U64(99))
                    })
                    .unwrap()
            })
        };
        // Give the follower a moment to join the flight, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let (lv, lhow) = leader.join().unwrap();
        let (fv, fhow) = follower.join().unwrap();
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one compute"
        );
        assert_eq!(lhow, CacheOutcome::Computed);
        assert!(
            fhow == CacheOutcome::Coalesced || fhow == CacheOutcome::Memory,
            "follower served without computing (got {fhow:?})"
        );
        assert_eq!(*lv, *fv);
    }

    #[test]
    fn disk_tier_persists_across_instances_and_validates() {
        let dir = std::env::temp_dir().join(format!("wfc-svc-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ty = canonical::test_and_set(2);
        let key = cache_key(QueryKind::Witness, &ty, &opts());
        let doc = Json::obj(vec![("witness", Json::Null)]);
        {
            let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
            let (_, how) = cache
                .get_or_compute(key, QueryKind::Witness, ty.name(), || Ok(doc.clone()))
                .unwrap();
            assert_eq!(how, CacheOutcome::Computed);
        }
        // A fresh instance (empty memory) finds the entry on disk.
        let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
        let (v, how) = cache
            .get_or_compute(key, QueryKind::Witness, ty.name(), || {
                panic!("disk should have served this")
            })
            .unwrap();
        assert_eq!(how, CacheOutcome::Disk);
        assert_eq!(*v, doc);
        // Every file the cache wrote validates.
        let mut checked = 0;
        for entry in fs::read_dir(&dir).unwrap().flatten() {
            let text = fs::read_to_string(entry.path()).unwrap();
            let parsed = wfc_obs::json::parse(&text).unwrap();
            validate_cache_json(&parsed)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.path().display()));
            checked += 1;
        }
        assert_eq!(checked, 2, "one entry file plus cache-meta.json");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The corruption-tolerance satellite: a disk entry truncated at
    /// *every* byte offset (and a bit-flipped one) must read as a miss
    /// — recompute and overwrite — never as an error, and never serve
    /// mangled bytes.
    #[test]
    fn corrupt_disk_entries_read_as_misses_at_every_truncation() {
        let dir = std::env::temp_dir().join(format!("wfc-svc-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ty = canonical::test_and_set(2);
        let key = cache_key(QueryKind::Classify, &ty, &opts());
        let doc = Json::obj(vec![("verdict", Json::Str("case2".to_owned()))]);
        {
            let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
            cache
                .get_or_compute(key, QueryKind::Classify, ty.name(), || Ok(doc.clone()))
                .unwrap();
        }
        let path = ResultCache::entry_path(&dir, key);
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            // A cut can leave a still-valid document (dropping only the
            // trailing newline does); serving it is correct. Every
            // other cut must read as a miss.
            let prefix_valid = std::str::from_utf8(&full[..cut])
                .ok()
                .and_then(|text| wfc_obs::json::parse(text).ok())
                .is_some_and(|d| validate_cache_json(&d).is_ok());
            let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
            let (v, how) = cache
                .get_or_compute(key, QueryKind::Classify, ty.name(), || Ok(doc.clone()))
                .unwrap();
            assert_eq!(*v, doc, "cut at {cut}: result must be intact either way");
            if prefix_valid {
                assert_eq!(how, CacheOutcome::Disk, "cut at {cut}: still a valid doc");
                fs::write(&path, &full).unwrap();
                continue;
            }
            assert_eq!(how, CacheOutcome::Computed, "cut at {cut}: must be a miss");
            // The recompute repaired the file in place.
            let restored = ResultCache::new(16, Some(dir.clone())).unwrap();
            assert_eq!(restored.peek(key).as_deref(), Some(&doc));
            let repaired = fs::read(&path).unwrap();
            assert_eq!(repaired, full, "cut at {cut}: rewrite must restore bytes");
        }
        // Garbage rather than truncation: flip a byte inside `result`.
        let mut garbled = full.clone();
        let last = garbled.len() - 2;
        garbled[last] = b'!';
        fs::write(&path, &garbled).unwrap();
        let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
        let (_, how) = cache
            .get_or_compute(key, QueryKind::Classify, ty.name(), || Ok(doc.clone()))
            .unwrap();
        assert_eq!(how, CacheOutcome::Computed);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_replicated_lands_in_both_tiers_idempotently() {
        let dir = std::env::temp_dir().join(format!("wfc-svc-apply-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let key = Hash128(0xfeed);
        let doc = Json::obj(vec![("replicated", Json::Bool(true))]);
        let cache = ResultCache::new(16, Some(dir.clone())).unwrap();
        cache.apply_replicated(key, QueryKind::Classify, "t", &doc);
        cache.apply_replicated(key, QueryKind::Classify, "t", &doc);
        let (v, how) = cache
            .get_or_compute(key, QueryKind::Classify, "t", || {
                panic!("replicated insert must serve this")
            })
            .unwrap();
        assert_eq!(how, CacheOutcome::Memory);
        assert_eq!(*v, doc);
        // And it survives a restart via the disk tier.
        let fresh = ResultCache::new(16, Some(dir.clone())).unwrap();
        assert_eq!(fresh.peek(key).as_deref(), Some(&doc));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let bad = Json::obj(vec![("schema", Json::Str("wfc-obs/v1".to_owned()))]);
        assert!(validate_cache_json(&bad).is_err());
        let bad = Json::obj(vec![
            ("schema", Json::Str(CACHE_SCHEMA.to_owned())),
            ("key", Json::Str("zz".to_owned())),
        ]);
        assert!(validate_cache_json(&bad).is_err());
        let bad = Json::obj(vec![
            ("schema", Json::Str(CACHE_SCHEMA.to_owned())),
            ("entries", Json::U64(5)),
            ("writes", Json::U64(3)),
        ]);
        assert!(validate_cache_json(&bad).is_err());
        let good = Json::obj(vec![
            ("schema", Json::Str(CACHE_SCHEMA.to_owned())),
            ("entries", Json::U64(3)),
            ("writes", Json::U64(5)),
        ]);
        assert!(validate_cache_json(&good).is_ok());
    }
}
