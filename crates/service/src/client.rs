//! A blocking client for the `wfc-svc/v1` protocol.
//!
//! [`Client::query`] is the simple request/response call; [`send`] and
//! [`recv`] are split out so callers (and tests) can pipeline several
//! requests over one connection and match the out-of-order responses by
//! id.
//!
//! [`send`]: Client::send
//! [`recv`]: Client::recv

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use wfc_obs::json::Json;

use crate::server::accept_backoff;
use crate::wire::{read_frame, write_frame, QueryKind, QueryOptions, Request, Response, WireError};

/// A connection to a `wfc serve` instance.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects once.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    /// Connects, retrying until `timeout` elapses — for scripts that
    /// race a freshly spawned server's bind (the CI smoke test does).
    ///
    /// # Errors
    ///
    /// The last connection failure once the deadline passes.
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Connects to the first reachable address, rotating through
    /// `addrs` with up to `retries` extra passes and the same capped
    /// exponential backoff the server's accept loop uses
    /// ([`accept_backoff`]). One pass over every address counts as one
    /// attempt, so `retries: 0` still tries each address once — that is
    /// the failover half of the contract; the backoff is the retry
    /// half.
    ///
    /// # Errors
    ///
    /// The last connection failure once every address has been tried
    /// `retries + 1` times, or `InvalidInput` for an empty list.
    pub fn connect_failover(addrs: &[String], retries: u32) -> io::Result<Client> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no addresses to connect to",
            ));
        }
        let mut last_err = None;
        for attempt in 0..=retries {
            for addr in addrs {
                match Client::connect(addr.as_str()) {
                    Ok(client) => return Ok(client),
                    Err(e) => last_err = Some(e),
                }
            }
            if attempt < retries {
                std::thread::sleep(accept_backoff(attempt + 1));
            }
        }
        Err(last_err.unwrap())
    }

    /// Sends one request without waiting; returns the id to match the
    /// eventual response against.
    ///
    /// # Errors
    ///
    /// [`WireError`] on socket or encoding failures.
    pub fn send(
        &mut self,
        kind: QueryKind,
        type_text: &str,
        options: &QueryOptions,
    ) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            kind,
            type_text: type_text.to_owned(),
            options: *options,
        };
        write_frame(&mut self.stream, &request.to_json())?;
        Ok(id)
    }

    /// Receives the next response (any id).
    ///
    /// # Errors
    ///
    /// [`WireError`] on socket or decoding failures, including the
    /// server closing the connection.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        match read_frame(&mut self.stream)? {
            Some(doc) => Response::from_json(&doc),
            None => Err(WireError::Protocol(
                "server closed the connection".to_owned(),
            )),
        }
    }

    /// Sends one raw JSON frame — for protocols that share the socket
    /// with `wfc-svc/v1` but speak their own schema, like the
    /// `wfc-repl/v1` status exchange behind `wfc cluster-status`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on socket or encoding failures.
    pub fn send_doc(&mut self, doc: &Json) -> Result<(), WireError> {
        write_frame(&mut self.stream, doc)
    }

    /// Receives one raw JSON frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on socket or decoding failures, including the
    /// server closing the connection.
    pub fn recv_doc(&mut self) -> Result<Json, WireError> {
        match read_frame(&mut self.stream)? {
            Some(doc) => Ok(doc),
            None => Err(WireError::Protocol(
                "server closed the connection".to_owned(),
            )),
        }
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failures, or if the server answers
    /// with a mismatched id on this single-in-flight connection.
    pub fn query(
        &mut self,
        kind: QueryKind,
        type_text: &str,
        options: &QueryOptions,
    ) -> Result<Response, WireError> {
        let id = self.send(kind, type_text, options)?;
        let response = self.recv()?;
        if response.id() != id {
            return Err(WireError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id()
            )));
        }
        Ok(response)
    }
}
