//! Scenario execution: lowering `wfc-scenario` files onto the shared
//! query path.
//!
//! The scenario crate owns the language — parsing, canonicalization,
//! lowering, result-document assembly. This module owns nothing but the
//! glue: each [`LoweredQuery`] is dispatched onto the **same**
//! [`run_query_with_protocol`]/[`run_sched_with`] functions the direct
//! CLI subcommands and the server workers use, which is what makes a
//! scenario's per-query `result` objects byte-identical to standalone
//! `wfc classify`/`wfc sched`/`wfc query` runs of the same inputs.

use std::time::Duration;

use wfc_obs::json::Json;
use wfc_scenario::{LoweredQuery, Scenario};
use wfc_spec::control::{CancelToken, Wall};

use crate::analysis::{
    explore_options, parse_query_type, parse_sched_spec, protocol_by_name, run_query_with_protocol,
    run_sched_with, QueryError,
};
use crate::wire::{QueryKind, QueryOptions};

/// The sooner-expiring of two optional deadlines: a scenario's
/// `wall-ms` budget tightens the request deadline, never loosens it.
fn tighter(a: Option<Wall>, b: Option<Wall>) -> Option<Wall> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.deadline <= y.deadline { x } else { y }),
        (x, y) => x.or(y),
    }
}

/// Parses and runs a scenario file — the code path behind
/// `wfc scenario run` and `wfc query scenario`.
///
/// # Errors
///
/// [`QueryError::Parse`] with the scenario parser's `line, column`
/// diagnostic embedded in the message, or whatever the lowered queries
/// report. An **expectation** failure is not an error: it lands in the
/// result document as `pass: false`.
pub fn run_scenario_text(text: &str, options: &QueryOptions) -> Result<Json, QueryError> {
    run_scenario_text_with(text, options, CancelToken::NONE, None)
}

/// [`run_scenario_text`] under external control (the serving layer's
/// cancellation token and wall-clock deadline).
///
/// # Errors
///
/// As [`run_scenario_text`].
pub fn run_scenario_text_with(
    text: &str,
    options: &QueryOptions,
    cancel: CancelToken,
    wall: Option<Wall>,
) -> Result<Json, QueryError> {
    let sc = wfc_scenario::parse_scenario(text).map_err(|e| QueryError::Parse(e.to_string()))?;
    run_scenario_with(&sc, options, cancel, wall)
}

/// Runs a parsed scenario to its `wfc-scenario/v1` result document.
///
/// The scenario's `budget` directive overrides the request-level
/// exploration budgets (`configs=` → `max_configs`, `depth=` →
/// `max_depth`; `schedules=`/`steps=` were already merged into sched
/// specs by [`Scenario::lower`]) and `wall-ms=` imposes a whole-run
/// deadline, tightened against the request's own.
///
/// # Errors
///
/// The first lowered query to fail aborts the run with its
/// [`QueryError`]; expectation failures are data, not errors.
pub fn run_scenario_with(
    sc: &Scenario,
    options: &QueryOptions,
    cancel: CancelToken,
    wall: Option<Wall>,
) -> Result<Json, QueryError> {
    let mut effective = *options;
    if let Some(c) = sc.budget.configs {
        effective = effective.with_max_configs(usize::try_from(c).unwrap_or(usize::MAX));
    }
    if let Some(d) = sc.budget.depth {
        effective = effective.with_max_depth(usize::try_from(d).unwrap_or(usize::MAX));
    }
    let wall = tighter(
        wall,
        sc.budget
            .wall_ms
            .map(|ms| Wall::expires_in(Duration::from_millis(ms))),
    );
    let protocol = match &sc.protocol {
        Some(name) => Some(protocol_by_name(name).ok_or_else(|| {
            QueryError::Unsupported(format!(
                "no consensus protocol is registered under the name `{name}` \
                 (known: cas_announce)"
            ))
        })?),
        None => None,
    };
    let mut results = Vec::with_capacity(sc.queries.len());
    for step in sc.lower() {
        let result = match step {
            LoweredQuery::Type { kind, type_text } => {
                let kind = QueryKind::parse(&kind)
                    .expect("the scenario parser only admits engine query kinds");
                let ty = parse_query_type(&type_text)?;
                let mut opts = explore_options(&effective).with_cancel(cancel);
                opts.budget.wall = wall;
                run_query_with_protocol(kind, &ty, &opts, protocol)?
            }
            LoweredQuery::Sched { spec_text } => {
                run_sched_with(&parse_sched_spec(&spec_text)?, cancel, wall)?
            }
        };
        results.push(result);
    }
    Ok(sc.result_doc(&results))
}
