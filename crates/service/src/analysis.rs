//! The shared query engine behind both `wfc query`/`wfc serve` and the
//! direct CLI subcommands.
//!
//! Everything funnels through [`run_query`], so a direct library call, a
//! `wfc access-bounds` invocation and a served request produce
//! **byte-identical** result documents — the property the differential
//! tests pin down. Result documents are [`Json`] values; `Json::render`
//! is deterministic (ordered keys, canonical number formatting), so
//! byte-level equality of rendered results is meaningful.

use std::fmt;
use std::sync::Arc;

use wfc_consensus::ConsensusSystem;
use wfc_core::{DeriveError, TransformError};
use wfc_explorer::{ExploreOptions, ExplorerError};
use wfc_obs::json::Json;
use wfc_sched::{SchedError, SchedSpec};
use wfc_spec::control::{CancelToken, Exhausted, Progress, Resource, Wall};
use wfc_spec::FiniteType;

use crate::wire::{QueryKind, QueryOptions};

/// A query failure, structured so the wire layer can preserve the
/// control-plane quantities of
/// [`Exhausted`](wfc_spec::control::Exhausted) — resource, budget, used
/// and the partial [`Progress`] snapshot — instead of flattening them
/// into a message string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The type text did not parse.
    Parse(String),
    /// The query is not defined for this type (nondeterministic type
    /// under `classify`, no registered protocol for the exploration
    /// queries, trivial type under `theorem5`, …).
    Unsupported(String),
    /// The analysis itself failed (not wait-free, SRSW violation, …).
    Analysis(String),
    /// A control-plane budget axis fired — a work budget
    /// (`budget-exceeded` on the wire) or the wall-clock deadline
    /// (`deadline-exceeded`). Carries the engine's
    /// [`Exhausted`](wfc_spec::control::Exhausted) unchanged.
    Exhausted(Exhausted),
    /// The request's cancellation token fired (server shutdown), with
    /// the partial progress at the abort.
    Cancelled {
        /// Work completed when the token was observed.
        progress: Progress,
    },
}

impl QueryError {
    /// The stable machine-readable code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Parse(_) => "parse-error",
            QueryError::Unsupported(_) => "unsupported",
            QueryError::Analysis(_) => "analysis-error",
            QueryError::Exhausted(e) if e.resource == Resource::WallMs => "deadline-exceeded",
            QueryError::Exhausted(_) => "budget-exceeded",
            QueryError::Cancelled { .. } => "cancelled",
        }
    }

    /// For `budget-exceeded`/`deadline-exceeded`: the `(budget, used)`
    /// pair.
    pub fn budget_used(&self) -> Option<(u64, u64)> {
        match self {
            QueryError::Exhausted(e) => Some((e.budget, e.used)),
            _ => None,
        }
    }

    /// The wire slug of the exhausted resource, if any.
    pub fn resource(&self) -> Option<&'static str> {
        match self {
            QueryError::Exhausted(e) => Some(e.resource.as_str()),
            _ => None,
        }
    }

    /// The partial [`Progress`] snapshot a preempted query reports, if
    /// this error carries one.
    pub fn partial(&self) -> Option<Progress> {
        match self {
            QueryError::Exhausted(e) => Some(e.progress),
            QueryError::Cancelled { progress } => Some(*progress),
            _ => None,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "cannot parse type: {m}"),
            QueryError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            QueryError::Analysis(m) => write!(f, "analysis failed: {m}"),
            QueryError::Exhausted(e) => write!(f, "{e}"),
            QueryError::Cancelled { .. } => write!(f, "query cancelled before completion"),
        }
    }
}

impl std::error::Error for QueryError {}

fn from_explorer(e: ExplorerError) -> QueryError {
    match e {
        ExplorerError::Exhausted(e) => QueryError::Exhausted(e),
        ExplorerError::Cancelled { progress } => QueryError::Cancelled { progress },
        other => QueryError::Analysis(other.to_string()),
    }
}

fn from_transform(e: TransformError) -> QueryError {
    match e {
        TransformError::Explore(inner) => from_explorer(inner),
        other => QueryError::Analysis(other.to_string()),
    }
}

fn from_sched(e: SchedError) -> QueryError {
    match e {
        SchedError::Exhausted(e) => QueryError::Exhausted(e),
        SchedError::Cancelled { progress } => QueryError::Cancelled { progress },
        SchedError::Parse(m) => QueryError::Parse(m),
        other => QueryError::Analysis(other.to_string()),
    }
}

/// Parses a sched query line (`<target> [key=value…]`) into its fully
/// resolved spec. The spec's [`canonical_text`](SchedSpec::canonical_text)
/// is the string the cache hashes.
///
/// # Errors
///
/// [`QueryError::Parse`] on an unknown target, key, or malformed value.
pub fn parse_sched_spec(text: &str) -> Result<SchedSpec, QueryError> {
    text.parse().map_err(from_sched)
}

/// Runs a sched spec to its canonical result document — the single code
/// path shared by `wfc sched`, the server workers, and the differential
/// tests, so served and direct results are byte-identical.
///
/// # Errors
///
/// [`QueryError::Exhausted`] when exploration outgrows the spec's
/// schedule budget (resource `schedules`) or an imposed deadline,
/// [`QueryError::Analysis`] on replay mismatches or step-limit
/// overruns.
pub fn run_sched(spec: &SchedSpec) -> Result<Json, QueryError> {
    run_sched_with(spec, CancelToken::NONE, None)
}

/// [`run_sched`] under external control: a serving layer's cancellation
/// token and wall-clock deadline, polled at schedule boundaries. With
/// an inert token and no deadline this is exactly `run_sched` —
/// control signals never change a completed query's document.
pub fn run_sched_with(
    spec: &SchedSpec,
    cancel: CancelToken,
    wall: Option<Wall>,
) -> Result<Json, QueryError> {
    spec.run_with(cancel, wall).map_err(from_sched)
}

fn from_derive(e: DeriveError) -> QueryError {
    match e {
        DeriveError::Trivial { type_name } => QueryError::Unsupported(format!(
            "type `{type_name}` is trivial; no one-use bit or register elimination exists"
        )),
        DeriveError::Analysis(inner) => QueryError::Unsupported(inner.to_string()),
    }
}

/// Parses a type in the `wfc-spec` text format into the form the query
/// engine wants.
pub fn parse_query_type(text: &str) -> Result<Arc<FiniteType>, QueryError> {
    wfc_spec::text::parse_type(text)
        .map(Arc::new)
        .map_err(|e| QueryError::Parse(e.to_string()))
}

/// Converts wire-level budgets into explorer options. Observability
/// stays at its global default so served queries record metrics exactly
/// when the process has `wfc-obs` enabled.
pub fn explore_options(q: &QueryOptions) -> ExploreOptions {
    ExploreOptions::default()
        .with_max_configs(q.max_configs)
        .with_max_depth(q.max_depth)
        .with_threads(q.threads)
}

/// A consensus protocol registered for a canonical type, used by the
/// exploration queries (`access-bounds`, `theorem5`,
/// `verify-consensus`).
#[derive(Clone, Copy)]
pub struct ProtocolEntry {
    /// Human-readable implementation label (e.g. `tas+registers`).
    pub label: &'static str,
    /// The process count the protocol is built for.
    pub n: usize,
    /// Builds the model-checkable system for one input vector.
    pub build: fn(&[bool]) -> ConsensusSystem,
}

impl fmt::Debug for ProtocolEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolEntry")
            .field("label", &self.label)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

fn tas2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::tas_consensus_system([i[0], i[1]])
}
fn queue2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::queue_consensus_system([i[0], i[1]])
}
fn stack2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::stack_consensus_system([i[0], i[1]])
}
fn swap2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::swap_consensus_system([i[0], i[1]])
}
fn fetch_add2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::fetch_add_consensus_system([i[0], i[1]])
}
fn cas2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::cas_consensus_system(i)
}
fn sticky2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::sticky_consensus_system(i)
}
fn shift2_2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::shift2_consensus_system([i[0], i[1]])
}
fn mpr2_2(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::mpr2_consensus_system([i[0], i[1]])
}
fn cas_announce3(i: &[bool]) -> ConsensusSystem {
    wfc_consensus::cas_announce_consensus_system(i)
}

/// Looks up the consensus implementation registered for a type, by the
/// canonical naming convention of `wfc_spec::canonical` (`queue1x2`,
/// `fetch_and_add2`, …). Returns `None` for types without a registered
/// protocol — the exploration queries report those as unsupported.
pub fn protocol_for_type(ty: &FiniteType) -> Option<ProtocolEntry> {
    let name = ty.name();
    let entry = |label, build| Some(ProtocolEntry { label, n: 2, build });
    if name == "test_and_set" {
        entry("tas+registers", tas2)
    } else if name.starts_with("queue") {
        entry("queue+registers", queue2)
    } else if name.starts_with("stack") {
        entry("stack+registers", stack2)
    } else if name.starts_with("swap") {
        entry("swap+registers", swap2)
    } else if name.starts_with("fetch_and_add") {
        entry("fetch&add+registers", fetch_add2)
    } else if name.starts_with("compare_and_swap") {
        entry("cas (register-free)", cas2)
    } else if name == "sticky_bit" {
        entry("sticky+registers", sticky2)
    } else if name == "shift2" {
        entry("shift2+registers", shift2_2)
    } else if name == "mpr2" {
        entry("mpr2+registers", mpr2_2)
    } else {
        None
    }
}

/// Looks up a consensus implementation by **protocol name** rather than
/// by type — the override a scenario's `protocol NAME` directive selects
/// when the default type-keyed registry entry is not the implementation
/// under study (e.g. the 3-process `cas_announce` stress protocol for
/// the `compare_and_swap` type).
pub fn protocol_by_name(name: &str) -> Option<ProtocolEntry> {
    match name {
        "cas_announce" => Some(ProtocolEntry {
            label: "cas+announce registers",
            n: 3,
            build: cas_announce3,
        }),
        _ => None,
    }
}

fn require_protocol(ty: &FiniteType) -> Result<ProtocolEntry, QueryError> {
    protocol_for_type(ty).ok_or_else(|| {
        QueryError::Unsupported(format!(
            "no consensus protocol is registered for type `{}`; exploration \
             queries support the canonical zoo protocols (test_and_set, \
             queue*, stack*, swap*, fetch_and_add*, compare_and_swap*, \
             sticky_bit, shift2, mpr2)",
            ty.name()
        ))
    })
}

fn resolve_protocol(
    ty: &FiniteType,
    over: Option<ProtocolEntry>,
) -> Result<ProtocolEntry, QueryError> {
    match over {
        Some(p) => Ok(p),
        None => require_protocol(ty),
    }
}

fn depths_json(depths: &[usize]) -> Json {
    Json::Arr(depths.iter().map(|&d| Json::U64(d as u64)).collect())
}

fn verdict_json(v: &wfc_consensus::ProtocolVerdict) -> Json {
    Json::obj(vec![
        ("D", Json::U64(v.d_max as u64)),
        ("depth_per_tree", depths_json(&v.depth_per_tree)),
        ("total_configs", Json::U64(v.total_configs as u64)),
        ("agreement", Json::Bool(v.agreement)),
        ("validity", Json::Bool(v.validity)),
        ("holds", Json::Bool(v.holds())),
    ])
}

fn bounds_json(ty: &FiniteType, label: &str, n: usize, b: &wfc_core::AccessBounds) -> Json {
    let registers = b
        .registers
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("obj", Json::U64(r.obj as u64)),
                ("r_b", Json::U64(r.reads as u64)),
                ("w_b", Json::U64(r.writes as u64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("type", Json::Str(ty.name().to_owned())),
        ("protocol", Json::Str(label.to_owned())),
        ("n", Json::U64(n as u64)),
        ("D", Json::U64(b.d_max as u64)),
        ("depth_per_tree", depths_json(&b.depth_per_tree)),
        ("total_configs", Json::U64(b.total_configs as u64)),
        ("registers", Json::Arr(registers)),
        (
            "one_use_bits_required",
            Json::U64(b.one_use_bits_required() as u64),
        ),
    ])
}

fn recipe_json(ty: &FiniteType, recipe: &wfc_core::OneUseRecipe) -> Json {
    let probes = recipe
        .reader_seq()
        .iter()
        .map(|&i| Json::Str(ty.invocation_name(i).to_owned()))
        .collect();
    Json::obj(vec![
        ("init", Json::Str(ty.state_name(recipe.init()).to_owned())),
        (
            "writer_port",
            Json::U64(recipe.writer_port().index() as u64),
        ),
        (
            "writer_inv",
            Json::Str(ty.invocation_name(recipe.writer_inv()).to_owned()),
        ),
        (
            "reader_port",
            Json::U64(recipe.reader_port().index() as u64),
        ),
        ("reader_seq", Json::Arr(probes)),
        (
            "unwritten_last",
            Json::Str(ty.response_name(recipe.unwritten_last()).to_owned()),
        ),
        ("read_cost", Json::U64(recipe.read_cost() as u64)),
    ])
}

fn classify(ty: &Arc<FiniteType>) -> Result<Json, QueryError> {
    if !ty.is_deterministic() {
        return Err(QueryError::Unsupported(format!(
            "type `{}` is nondeterministic: Theorem 5 case 3 needs a \
             2-consensus implementation, not a classification",
            ty.name()
        )));
    }
    let doc = match wfc_core::classify_deterministic(ty).map_err(from_derive)? {
        wfc_core::Theorem5Classification::Trivial => vec![
            ("type", Json::Str(ty.name().to_owned())),
            ("case", Json::U64(1)),
            ("classification", Json::Str("trivial".to_owned())),
            ("recipe", Json::Null),
        ],
        wfc_core::Theorem5Classification::NonTrivial(recipe) => vec![
            ("type", Json::Str(ty.name().to_owned())),
            ("case", Json::U64(2)),
            ("classification", Json::Str("non-trivial".to_owned())),
            ("recipe", recipe_json(ty, &recipe)),
        ],
    };
    Ok(Json::obj(doc))
}

fn witness(ty: &Arc<FiniteType>, opts: &ExploreOptions) -> Result<Json, QueryError> {
    let found = wfc_spec::witness::find_witness_with(ty, opts.cancel, &opts.budget).map_err(
        |e| match e {
            wfc_spec::AnalysisError::Exhausted(e) => QueryError::Exhausted(e),
            wfc_spec::AnalysisError::Cancelled { progress } => QueryError::Cancelled { progress },
            other => QueryError::Unsupported(other.to_string()),
        },
    )?;
    let witness = match found {
        None => Json::Null,
        Some(w) => {
            let invs = |seq: &[wfc_spec::InvId]| {
                Json::Arr(
                    seq.iter()
                        .map(|&i| Json::Str(ty.invocation_name(i).to_owned()))
                        .collect(),
                )
            };
            let resps = |seq: &[wfc_spec::RespId]| {
                Json::Arr(
                    seq.iter()
                        .map(|&r| Json::Str(ty.response_name(r).to_owned()))
                        .collect(),
                )
            };
            Json::obj(vec![
                ("start", Json::Str(ty.state_name(w.start).to_owned())),
                ("reader_port", Json::U64(w.reader_port.index() as u64)),
                ("writer_port", Json::U64(w.writer_port.index() as u64)),
                (
                    "writer_inv",
                    Json::Str(ty.invocation_name(w.writer_inv).to_owned()),
                ),
                ("reader_seq", invs(&w.reader_seq)),
                ("unwritten_resps", resps(&w.unwritten_resps)),
                ("written_resps", resps(&w.written_resps)),
                ("k", Json::U64(w.k() as u64)),
                ("total_len", Json::U64(w.total_len() as u64)),
            ])
        }
    };
    Ok(Json::obj(vec![
        ("type", Json::Str(ty.name().to_owned())),
        ("witness", witness),
    ]))
}

fn access_bounds(
    ty: &Arc<FiniteType>,
    opts: &ExploreOptions,
    over: Option<ProtocolEntry>,
) -> Result<Json, QueryError> {
    let p = resolve_protocol(ty, over)?;
    let bounds = wfc_core::access_bounds(p.n, p.build, opts).map_err(from_explorer)?;
    Ok(bounds_json(ty, p.label, p.n, &bounds))
}

fn theorem5(
    ty: &Arc<FiniteType>,
    opts: &ExploreOptions,
    over: Option<ProtocolEntry>,
) -> Result<Json, QueryError> {
    let p = resolve_protocol(ty, over)?;
    if !ty.is_deterministic() {
        return Err(QueryError::Unsupported(format!(
            "type `{}` is nondeterministic; derive its one-use bits from a \
             consensus implementation instead (wfc_core::one_use_from_consensus)",
            ty.name()
        )));
    }
    let recipe = wfc_core::OneUseRecipe::from_type(ty).map_err(from_derive)?;
    let cert =
        wfc_core::check_theorem5(p.n, p.build, &wfc_core::OneUseSource::Recipe(recipe), opts)
            .map_err(from_transform)?;
    Ok(Json::obj(vec![
        ("type", Json::Str(ty.name().to_owned())),
        ("protocol", Json::Str(p.label.to_owned())),
        ("n", Json::U64(p.n as u64)),
        ("bounds", bounds_json(ty, p.label, p.n, &cert.bounds)),
        ("one_use_bits", Json::U64(cert.one_use_bits as u64)),
        ("before", verdict_json(&cert.before)),
        ("after", verdict_json(&cert.after)),
        ("holds", Json::Bool(cert.holds())),
    ]))
}

fn verify_consensus(
    ty: &Arc<FiniteType>,
    opts: &ExploreOptions,
    over: Option<ProtocolEntry>,
) -> Result<Json, QueryError> {
    let p = resolve_protocol(ty, over)?;
    let verdict =
        wfc_consensus::verify_consensus_protocol(p.n, p.build, opts).map_err(from_explorer)?;
    let mut fields = vec![
        ("type", Json::Str(ty.name().to_owned())),
        ("protocol", Json::Str(p.label.to_owned())),
        ("n", Json::U64(p.n as u64)),
    ];
    if let Json::Obj(pairs) = verdict_json(&verdict) {
        for (k, v) in pairs {
            match k.as_str() {
                "D" => fields.push(("D", v)),
                "depth_per_tree" => fields.push(("depth_per_tree", v)),
                "total_configs" => fields.push(("total_configs", v)),
                "agreement" => fields.push(("agreement", v)),
                "validity" => fields.push(("validity", v)),
                "holds" => fields.push(("holds", v)),
                _ => {}
            }
        }
    }
    Ok(Json::obj(fields))
}

/// Runs one analysis query and produces its canonical result document.
///
/// This is **the** code path: the CLI's direct subcommands, the server's
/// workers and the differential tests all call it, which is what makes
/// served results bit-identical to direct library calls.
///
/// # Errors
///
/// [`QueryError`] — parse failures, unsupported types, analysis
/// failures, exhausted budgets, or cancellation.
pub fn run_query(
    kind: QueryKind,
    ty: &Arc<FiniteType>,
    opts: &ExploreOptions,
) -> Result<Json, QueryError> {
    run_query_with_protocol(kind, ty, opts, None)
}

/// [`run_query`] with an optional protocol override for the exploration
/// queries (`access-bounds`, `theorem5`, `verify-consensus`) — the hook
/// a scenario's `protocol NAME` directive uses. With `None` this **is**
/// `run_query`: both paths run the same code, so overridden and default
/// runs stay byte-identical per protocol choice.
///
/// # Errors
///
/// As [`run_query`].
pub fn run_query_with_protocol(
    kind: QueryKind,
    ty: &Arc<FiniteType>,
    opts: &ExploreOptions,
    protocol: Option<ProtocolEntry>,
) -> Result<Json, QueryError> {
    match kind {
        QueryKind::Classify => classify(ty),
        QueryKind::Witness => witness(ty, opts),
        QueryKind::AccessBounds => access_bounds(ty, opts, protocol),
        QueryKind::Theorem5 => theorem5(ty, opts, protocol),
        QueryKind::VerifyConsensus => verify_consensus(ty, opts, protocol),
        QueryKind::Sched => Err(QueryError::Unsupported(
            "sched queries take a fixture spec, not a type; use run_sched \
             (or run_query_text, which dispatches on the kind)"
                .to_owned(),
        )),
        QueryKind::Scenario => Err(QueryError::Unsupported(
            "scenario queries take a scenario file, not a type; use \
             run_scenario (or run_query_text, which dispatches on the kind)"
                .to_owned(),
        )),
        QueryKind::Stats => Err(QueryError::Unsupported(
            "stats is a live-server introspection query; it is answered \
             inline by `wfc serve` and has no direct analysis"
                .to_owned(),
        )),
    }
}

/// Parses the query text and runs the query — the convenience used by
/// both the CLI subcommands and the server worker.
///
/// For [`QueryKind::Sched`] the text is a sched spec line, not a type,
/// and `options` is ignored: the checker's budgets travel inside the
/// spec itself (`budget=`, `steps=`), where they are part of the cache
/// identity.
pub fn run_query_text(
    kind: QueryKind,
    type_text: &str,
    options: &QueryOptions,
) -> Result<Json, QueryError> {
    run_query_text_with(kind, type_text, options, CancelToken::NONE, None)
}

/// [`run_query_text`] under external control: the serving layer's
/// cancellation token and per-request wall-clock deadline are threaded
/// into whichever engine the query kind dispatches to — the explorer,
/// the sched checker, or the witness search — and polled at that
/// engine's sync points. With an inert token and no deadline this is
/// exactly `run_query_text`.
pub fn run_query_text_with(
    kind: QueryKind,
    type_text: &str,
    options: &QueryOptions,
    cancel: CancelToken,
    wall: Option<Wall>,
) -> Result<Json, QueryError> {
    if kind == QueryKind::Sched {
        return run_sched_with(&parse_sched_spec(type_text)?, cancel, wall);
    }
    if kind == QueryKind::Scenario {
        return crate::scenario::run_scenario_text_with(type_text, options, cancel, wall);
    }
    if kind == QueryKind::Stats {
        return Err(QueryError::Unsupported(
            "stats is a live-server introspection query; it is answered \
             inline by `wfc serve` and has no direct analysis"
                .to_owned(),
        ));
    }
    let ty = parse_query_type(type_text)?;
    let mut opts = explore_options(options).with_cancel(cancel);
    opts.budget.wall = wall;
    run_query(kind, &ty, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_spec::canonical;
    use wfc_spec::text::format_type;

    #[test]
    fn classify_reports_both_cases() {
        let tas = format_type(&canonical::test_and_set(2));
        let doc = run_query_text(QueryKind::Classify, &tas, &QueryOptions::default()).unwrap();
        assert_eq!(doc.get("case").and_then(Json::as_u64), Some(2));
        assert!(doc.get("recipe").unwrap().get("read_cost").is_some());

        let mute = canonical::deterministic_zoo(2)
            .into_iter()
            .find(|t| t.name() == "mute")
            .expect("zoo has `mute`");
        let doc = run_query_text(
            QueryKind::Classify,
            &format_type(&mute),
            &QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(doc.get("case").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("recipe"), Some(&Json::Null));
    }

    #[test]
    fn witness_distinguishes_trivial_from_non_trivial() {
        let tas = format_type(&canonical::test_and_set(2));
        let doc = run_query_text(QueryKind::Witness, &tas, &QueryOptions::default()).unwrap();
        assert!(doc.get("witness").unwrap().get("k").is_some());

        let mute = canonical::deterministic_zoo(2)
            .into_iter()
            .find(|t| t.name() == "mute")
            .unwrap();
        let doc = run_query_text(
            QueryKind::Witness,
            &format_type(&mute),
            &QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(doc.get("witness"), Some(&Json::Null));
    }

    #[test]
    fn access_bounds_matches_direct_library_call() {
        let tas = format_type(&canonical::test_and_set(2));
        let doc = run_query_text(QueryKind::AccessBounds, &tas, &QueryOptions::default()).unwrap();
        let direct = wfc_core::access_bounds(
            2,
            |i| wfc_consensus::tas_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert_eq!(
            doc.get("D").and_then(Json::as_u64),
            Some(direct.d_max as u64)
        );
        assert_eq!(
            doc.get("one_use_bits_required").and_then(Json::as_u64),
            Some(direct.one_use_bits_required() as u64)
        );
        assert_eq!(
            doc.get("registers").and_then(Json::as_arr).map(<[_]>::len),
            Some(direct.registers.len())
        );
    }

    #[test]
    fn unsupported_types_are_rejected_not_mangled() {
        let one_use = format_type(&canonical::one_use_bit());
        let err = run_query_text(QueryKind::AccessBounds, &one_use, &QueryOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), "unsupported");
        let err = run_query_text(QueryKind::Classify, "not a type", &QueryOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), "parse-error");
    }

    #[test]
    fn budget_errors_surface_budget_and_used() {
        let tas = format_type(&canonical::test_and_set(2));
        let err = run_query_text(
            QueryKind::VerifyConsensus,
            &tas,
            &QueryOptions::default().with_max_configs(3),
        )
        .unwrap_err();
        let (budget, used) = err.budget_used().expect("budget error carries quantities");
        assert_eq!(budget, 3);
        assert!(used > 3);
        assert_eq!(err.code(), "budget-exceeded");
    }
}
