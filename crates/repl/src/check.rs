//! Exhaustive minority-crash checking for the replication protocol.
//!
//! The explorer in `wfc-explorer` enumerates schedules of an in-memory
//! register program; what replication adds is a *disk*, so its checker
//! enumerates crashes instead: run an N-node cluster deterministically
//! through two concurrent proposals, crash one node (a minority at
//! N = 3) at **every** message-delivery step, restart it from whatever
//! its WAL and snapshot actually hold, let catch-up run, and assert the
//! protocol's two safety claims plus its durability claim:
//!
//! - **Agreement** — no two nodes ever apply different entries at the
//!   same index (checked across every scenario's full history).
//! - **Validity** — every applied entry is one of the proposed ones.
//! - **Durability** — every entry applied anywhere *before* the crash
//!   is still applied on a **majority** of nodes after recovery and
//!   catch-up (all-nodes would be too strong once compaction can trim
//!   the sequencer's catch-up horizon).
//!
//! The simulation drives [`Node`] through the same `handle`/`propose`
//! entry points the service uses and the same WAL files a real node
//! writes — the only thing simulated is the network (a FIFO bus whose
//! deliveries to a crashed node are dropped, exactly what TCP gives a
//! dead process).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;

use wfc_obs::json::Json;

use crate::msg::Entry;
use crate::node::{Effect, Node, NodeConfig, NodeId};

/// The checker's verdict.
#[derive(Debug)]
pub struct CrashReport {
    /// Crash scenarios executed (steps × victims, plus the crash-free
    /// baseline).
    pub scenarios: u64,
    /// Human-readable violations; empty means the claims held.
    pub violations: Vec<String>,
}

impl CrashReport {
    /// Whether every scenario upheld agreement, validity, durability.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One simulated cluster over real on-disk node state.
struct Sim {
    nodes: Vec<Option<Node>>,
    /// Applied entries per node, by index — the history agreement and
    /// durability are judged on.
    applied: Vec<HashMap<u64, Entry>>,
    bus: VecDeque<(NodeId, Json)>,
    violations: Vec<String>,
}

fn entry(tag: u64) -> Entry {
    Entry {
        key: format!("{tag:032x}"),
        kind: "classify".to_owned(),
        type_name: format!("proposal-{tag}"),
        result: Json::obj(vec![("value", Json::U64(tag))]),
    }
}

impl Sim {
    fn open(n: u64, dir: &Path, compact_threshold: u64) -> io::Result<Sim> {
        let mut nodes = Vec::new();
        let mut applied = Vec::new();
        for id in 1..=n {
            let config = NodeConfig {
                node_id: id,
                members: (1..=n).collect(),
                compact_threshold,
            };
            let (node, recovery) = Node::open(config, &dir.join(format!("node-{id}")))?;
            let mut map = HashMap::new();
            record_applies(&recovery.effects, &mut map, &mut Vec::new(), id);
            nodes.push(Some(node));
            applied.push(map);
        }
        Ok(Sim {
            nodes,
            applied,
            bus: VecDeque::new(),
            violations: Vec::new(),
        })
    }

    fn route(&mut self, from: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.bus.push_back((to, msg)),
                Effect::Apply { index, entry } => {
                    record_apply(
                        from,
                        index,
                        entry,
                        &mut self.applied[from as usize - 1],
                        &mut self.violations,
                    );
                }
            }
        }
    }

    /// Delivers one message; returns false when the bus is empty.
    fn step(&mut self) -> io::Result<bool> {
        let Some((to, msg)) = self.bus.pop_front() else {
            return Ok(false);
        };
        // A message to a crashed node is what the network does with a
        // packet to a dead process: nothing.
        if let Some(node) = self.nodes[to as usize - 1].as_mut() {
            let effects = node.handle(&msg)?;
            self.route(to, effects);
        }
        Ok(true)
    }

    fn run_to_quiescence(&mut self) -> io::Result<()> {
        while self.step()? {}
        Ok(())
    }

    fn propose(&mut self, proposer: NodeId, e: Entry) -> io::Result<()> {
        if let Some(node) = self.nodes[proposer as usize - 1].as_mut() {
            let effects = node.propose(e)?;
            self.route(proposer, effects);
        }
        Ok(())
    }

    fn crash(&mut self, victim: NodeId) {
        // Drop the in-memory node (files stay) and everything in flight
        // to it — a SIGKILL plus connection resets.
        self.nodes[victim as usize - 1] = None;
        self.bus.retain(|(to, _)| *to != victim);
    }

    fn restart(&mut self, victim: NodeId, dir: &Path, compact_threshold: u64) -> io::Result<()> {
        let n = self.nodes.len() as u64;
        let config = NodeConfig {
            node_id: victim,
            members: (1..=n).collect(),
            compact_threshold,
        };
        let (node, recovery) = Node::open(config, &dir.join(format!("node-{victim}")))?;
        // Recovery re-applies from disk; the map insert checks the
        // recovered entries against the pre-crash history.
        record_applies(
            &recovery.effects,
            &mut self.applied[victim as usize - 1],
            &mut self.violations,
            victim,
        );
        let hello = node.hello_msg();
        self.nodes[victim as usize - 1] = Some(node);
        // Reconnection: the victim hellos everyone, everyone hellos the
        // victim (links re-establish in both directions; only a
        // sequencer acts on a hello, the rest ignore it).
        for id in 1..=n {
            if id == victim {
                continue;
            }
            self.bus.push_back((id, hello.clone()));
            if let Some(peer) = self.nodes[id as usize - 1].as_ref() {
                self.bus.push_back((victim, peer.hello_msg()));
            }
        }
        Ok(())
    }
}

fn record_apply(
    node_id: NodeId,
    index: u64,
    entry: Entry,
    map: &mut HashMap<u64, Entry>,
    violations: &mut Vec<String>,
) {
    if let Some(existing) = map.get(&index) {
        if *existing != entry {
            violations.push(format!(
                "node {node_id} applied two different entries at index {index}"
            ));
        }
        return;
    }
    map.insert(index, entry);
}

fn record_applies(
    effects: &[Effect],
    map: &mut HashMap<u64, Entry>,
    violations: &mut Vec<String>,
    node_id: NodeId,
) {
    for effect in effects {
        if let Effect::Apply { index, entry } = effect {
            record_apply(node_id, *index, entry.clone(), map, violations);
        }
    }
}

/// Cross-node agreement and validity over the final histories.
fn check_histories(sim: &Sim, proposed: &[Entry], scenario: &str, violations: &mut Vec<String>) {
    let mut canonical: HashMap<u64, (NodeId, &Entry)> = HashMap::new();
    for (i, map) in sim.applied.iter().enumerate() {
        let node_id = i as NodeId + 1;
        for (&index, entry) in map {
            if !proposed.contains(entry) {
                violations.push(format!(
                    "{scenario}: node {node_id} applied an entry nobody proposed at index {index}"
                ));
            }
            match canonical.get(&index) {
                Some((other, existing)) if **existing != *entry => violations.push(format!(
                    "{scenario}: nodes {other} and {node_id} disagree at index {index}"
                )),
                Some(_) => {}
                None => {
                    canonical.insert(index, (node_id, entry));
                }
            }
        }
    }
    violations.extend(sim.violations.iter().map(|v| format!("{scenario}: {v}")));
}

/// Runs the full crash enumeration for an `n`-node cluster under
/// `base_dir` (fresh per-scenario subdirectories are created inside).
/// `n` should be odd so one crash is a strict minority; the fixture and
/// CI use N = 3.
///
/// # Errors
///
/// I/O failures of the simulation's real WAL/snapshot files. Protocol
/// violations are *not* errors — they land in the report.
pub fn check_crash_tolerance(n: u64, base_dir: &Path) -> io::Result<CrashReport> {
    let proposals = [entry(0xA), entry(0xB)];
    // Compact aggressively (threshold 2) so crash points also land
    // around snapshot writes and WAL rewrites, not just appends.
    let compact_threshold = 2;

    // Baseline run, crash-free: counts the delivery steps so the crash
    // enumeration knows every possible crash point, and checks the
    // happy path.
    let mut scenarios = 0u64;
    let mut violations = Vec::new();
    let total_steps = {
        let dir = base_dir.join("baseline");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sim = Sim::open(n, &dir, compact_threshold)?;
        sim.propose(2.min(n), proposals[0].clone())?;
        sim.propose(n, proposals[1].clone())?;
        let mut steps = 0u64;
        while sim.step()? {
            steps += 1;
        }
        scenarios += 1;
        check_histories(&sim, &proposals, "baseline", &mut violations);
        for (i, map) in sim.applied.iter().enumerate() {
            if map.len() != proposals.len() {
                violations.push(format!(
                    "baseline: node {} applied {} of {} entries",
                    i + 1,
                    map.len(),
                    proposals.len()
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        steps
    };

    for victim in 1..=n {
        for crash_step in 0..=total_steps {
            scenarios += 1;
            let scenario = format!("victim {victim} at step {crash_step}");
            let dir = base_dir.join(format!("v{victim}-s{crash_step}"));
            let _ = std::fs::remove_dir_all(&dir);
            let mut sim = Sim::open(n, &dir, compact_threshold)?;
            sim.propose(2.min(n), proposals[0].clone())?;
            sim.propose(n, proposals[1].clone())?;
            for _ in 0..crash_step {
                if !sim.step()? {
                    break;
                }
            }
            sim.crash(victim);
            // What was committed (applied anywhere) before the crash is
            // the durability obligation.
            let committed_before: Vec<(u64, Entry)> = sim
                .applied
                .iter()
                .flat_map(|m| m.iter().map(|(&i, e)| (i, e.clone())))
                .collect();
            // The survivors run on (the sequencer may be down — then
            // nothing new commits, which is the designed trade).
            sim.run_to_quiescence()?;
            // The victim restarts from disk and catches up.
            sim.restart(victim, &dir, compact_threshold)?;
            sim.run_to_quiescence()?;

            check_histories(&sim, &proposals, &scenario, &mut violations);
            // Durability: a committed entry must survive on a majority.
            // (All-nodes would be too strong: the sequencer may have
            // compacted its log past a straggler's catch-up horizon —
            // the straggler then recomputes on a cache miss, but the
            // *cluster* never lost the committed result.)
            let majority = (n / 2 + 1) as usize;
            for (index, e) in &committed_before {
                let holders = sim
                    .applied
                    .iter()
                    .filter(|map| map.get(index) == Some(e))
                    .count();
                if holders < majority {
                    violations.push(format!(
                        "{scenario}: entry committed at index {index} pre-crash survives \
                         on only {holders} of {n} nodes (majority is {majority})"
                    ));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
            if violations.len() > 32 {
                // Enough evidence; stop accumulating.
                return Ok(CrashReport {
                    scenarios,
                    violations,
                });
            }
        }
    }
    Ok(CrashReport {
        scenarios,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dogfood claim from the paper's wait-free playbook applied to
    /// crash faults: a minority of crash-stops cannot destroy committed
    /// state. Exhaustive over every (victim, step) pair at N = 3.
    #[test]
    fn minority_crashes_preserve_committed_state() {
        let dir = std::env::temp_dir().join(format!("wfc-repl-check-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = check_crash_tolerance(3, &dir).unwrap();
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(
            report.scenarios > 20,
            "enumeration looks too small: {} scenarios",
            report.scenarios
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single-node "cluster" is the degenerate case: no minority to
    /// crash, but the baseline run must still self-commit both entries.
    #[test]
    fn solo_baseline_commits_everything() {
        let dir = std::env::temp_dir().join(format!("wfc-repl-check1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = check_crash_tolerance(1, &dir).unwrap();
        assert!(report.passed(), "violations: {:#?}", report.violations);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
